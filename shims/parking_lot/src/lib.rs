//! Offline stand-in for `parking_lot`.
//!
//! The build environment cannot reach a crates.io mirror, so this crate
//! provides the subset of the `parking_lot` API the workspace uses, backed by
//! `std::sync` primitives. Like the real crate (and unlike raw `std`), locks
//! here do not poison: a panic while holding a guard leaves the lock usable.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
