//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}`.
//! The generator is splitmix64 feeding xoshiro256**, which is statistically
//! strong enough for workload generation and benchmarks. Streams are
//! deterministic per seed but do not match the real crate's ChaCha streams —
//! nothing in the workspace depends on the exact values.

use std::ops::Range;

/// Marker trait for seeding; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `Rng::gen_range` bounds.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight modulo
                // bias over a 64-bit space is irrelevant for workload gen.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

/// The user-facing trait; blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut below_half = 0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&below_half), "biased: {below_half}");
    }
}
