//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(..)]`, `var in strategy` and `var: Type`
//! argument forms), `Strategy`/`prop_map`/`prop_oneof!`, `any::<T>()`,
//! `collection::vec`, and the `prop_assert*` macros. Inputs are generated
//! from a deterministic per-test seed (override case count with
//! `PROPTEST_CASES`); there is no shrinking — a failing case panics with the
//! generated values visible via the assertion message.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Applies the `PROPTEST_CASES` env override.
    pub fn resolved_cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
            .max(1)
    }

    /// Deterministic splitmix64 stream, seeded from the test's path so every
    /// run of a given test sees the same inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test path.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased strategy (the result of [`Strategy::boxed`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[inline]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        #[inline]
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        #[inline]
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors whose length falls in `size`, elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::test_runner::resolved_cases(($cfg).cases);
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cases {
                let _ = __case;
                $crate::__proptest_bind! { __rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $var:ident : $ty:ty) => {
        let $var: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Both binding forms, plus ranges, tuples and vec generation.
        #[test]
        fn binding_forms_work(pairs in crate::collection::vec((0u64..10, any::<bool>()), 1..20),
                              raw: u64, flag: bool) {
            let _ = (raw, flag);
            prop_assert!(!pairs.is_empty() && pairs.len() < 20);
            for &(k, _) in &pairs {
                prop_assert!(k < 10);
            }
        }

        #[test]
        fn oneof_and_map_cover_all_arms(vals in crate::collection::vec(
            prop_oneof![
                (0u64..4).prop_map(|v| v * 2),
                (0u64..4).prop_map(|v| v * 2 + 1),
            ],
            64..65,
        )) {
            prop_assert!(vals.iter().any(|v| v % 2 == 0));
            prop_assert!(vals.iter().any(|v| v % 2 == 1));
            prop_assert!(vals.iter().all(|&v| v < 9));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
