//! Offline `libc` shim (Linux): exactly the POSIX surface the workspace
//! uses. The network front-end multiplexes socket readiness and completion
//! ring wake-ups in one `poll(2)` park, with a non-blocking self-pipe as
//! the wake-up channel — `std` exposes neither `poll` nor `pipe`, so these
//! go straight to the C library.
#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_short = i16;
pub type c_void = std::ffi::c_void;
pub type nfds_t = u64;
pub type size_t = usize;
pub type ssize_t = isize;

/// One descriptor's interest set and readiness, as `poll(2)` consumes it.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

pub const POLLIN: c_short = 0x001;
pub const POLLOUT: c_short = 0x004;
pub const POLLERR: c_short = 0x008;
pub const POLLHUP: c_short = 0x010;
pub const POLLNVAL: c_short = 0x020;

/// `pipe2` flag: both ends non-blocking from birth (Linux, O_NONBLOCK).
pub const O_NONBLOCK: c_int = 0o4000;

extern "C" {
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_wakes_poll() {
        let mut fds = [0 as c_int; 2];
        assert_eq!(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK) }, 0);
        let [rd, wr] = fds;

        // Nothing written yet: poll times out with no readiness.
        let mut pfd = pollfd { fd: rd, events: POLLIN, revents: 0 };
        let n = unsafe { poll(&mut pfd, 1, 0) };
        assert_eq!(n, 0, "empty pipe polled readable");

        // One byte in the pipe flips POLLIN.
        let byte = 1u8;
        let w = unsafe { write(wr, &byte as *const u8 as *const c_void, 1) };
        assert_eq!(w, 1);
        let n = unsafe { poll(&mut pfd, 1, 1000) };
        assert_eq!(n, 1);
        assert_ne!(pfd.revents & POLLIN, 0);

        // Drain; the pipe is non-blocking so the second read errors instead
        // of parking.
        let mut buf = [0u8; 8];
        let r = unsafe { read(rd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
        assert_eq!(r, 1);
        let r = unsafe { read(rd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
        assert_eq!(r, -1, "drained non-blocking pipe must not park");

        unsafe {
            close(rd);
            close(wr);
        }
    }
}
