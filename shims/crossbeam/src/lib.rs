//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` MPMC channels with
//! cloneable senders *and* receivers, built on `Mutex<VecDeque>` + `Condvar`.
//! Semantics match the real crate for the operations the workspace uses:
//! `send` blocks when a bounded channel is full, `recv` blocks until a
//! message arrives, and both error out once the other side is fully dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message is pushed or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when a message is popped or the last receiver leaves.
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Error returned by `send` when all receivers have been dropped.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by `recv` when the channel is empty and all senders
    /// have been dropped.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by `try_recv`.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.not_full.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").senders += 1;
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel lock");
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).expect("channel lock");
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn len(&self) -> usize {
            self.inner.state.lock().expect("channel lock").queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").receivers += 1;
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel lock");
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                // Wake senders blocked on a full bounded queue so they
                // observe the disconnect.
                self.inner.not_full.notify_all();
            }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel that holds at most `cap` messages; `send` blocks
    /// while the channel is full. `cap == 0` is treated as capacity 1 (the
    /// real crate rendezvous semantics are not needed by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_receivers_share_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let h = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(7u32).unwrap();
        assert_eq!(h.join().unwrap(), 7);
        drop(rx);
        assert!(tx.send(8).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv
            tx
        });
        assert_eq!(rx.recv(), Ok(1));
        let tx = t.join().unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
