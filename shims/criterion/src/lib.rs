//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace uses: `Criterion::default()` with
//! `warm_up_time`/`measurement_time`/`sample_size`, `bench_function` +
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark warms up, sizes an iteration batch from the warm-up rate,
//! takes `sample_size` timed batches, and prints the median ns/iter plus the
//! implied ops/sec on one line.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            median_ns: None,
        };
        f(&mut b);
        match b.median_ns {
            Some(ns) if ns > 0.0 => {
                println!("{name:<40} time: {:>12} ns/iter   {:>14.0} ops/sec", format_ns(ns), 1e9 / ns);
            }
            _ => println!("{name:<40} time: (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 100.0 {
        format!("{ns:.2}")
    } else {
        format!("{ns:.0}")
    }
}

pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Size batches so all samples together fill the measurement window.
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / per_iter.max(1.0)) as u64).max(1);

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    /// Median of the last `iter` call in ns/iter, if any.
    pub fn median_ns(&self) -> Option<f64> {
        self.median_ns
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = false;
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
            ran = b.median_ns().is_some();
        });
        assert!(ran);
    }
}
