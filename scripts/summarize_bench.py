#!/usr/bin/env python3
"""Summarizes the csv rows of bench_output.txt into the compact
paper-vs-measured digest used by EXPERIMENTS.md.

Usage: python3 scripts/summarize_bench.py [bench_output.txt]
"""
import sys
from collections import defaultdict

path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
rows = defaultdict(list)  # figure -> [(series, x, y)]
for line in open(path):
    line = line.strip()
    # csv rows may share a line with interleaved progress output; anchor on
    # the 'csv,' marker wherever it appears.
    idx = line.find("csv,")
    if idx < 0:
        continue
    parts = line[idx:].split(",")
    if len(parts) < 5:
        continue
    _, fig, series, x, y = parts[0], parts[1], ",".join(parts[2:-2]), parts[-2], parts[-1]
    rows[fig].append((series, x, y))

for fig in sorted(rows):
    print(f"== {fig} ==")
    by_series = defaultdict(list)
    for series, x, y in rows[fig]:
        by_series[series].append((x, y))
    for series in sorted(by_series):
        pts = " ".join(f"{x}:{y}" for x, y in by_series[series])
        print(f"  {series:40} {pts}")
