#!/usr/bin/env bash
# Quick batched-vs-scalar throughput smoke: runs the batch_vs_scalar bench
# at reduced scale and collects its json rows into BENCH_batch.json.
#
# Knobs (forwarded to the bench): FASTER_BENCH_KEYS, FASTER_BENCH_BATCH,
# FASTER_BENCH_OPS. Output: BENCH_batch.json in the repo root (override
# with BENCH_OUT=path).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_batch.json}"
export FASTER_BENCH_KEYS="${FASTER_BENCH_KEYS:-2000000}"
export FASTER_BENCH_BATCH="${FASTER_BENCH_BATCH:-64}"
export FASTER_BENCH_OPS="${FASTER_BENCH_OPS:-2000000}"

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

cargo bench --bench batch_vs_scalar 2>&1 | tee "$LOG"

# Each `json,{...}` line is one mode's result; emit a JSON array.
{
  echo '['
  grep '^json,' "$LOG" | sed 's/^json,//' | paste -sd ',' -
  echo ']'
} > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
