#!/usr/bin/env bash
# Quick perf smoke: runs the batch_vs_scalar and ckpt_latency benches at
# reduced scale and collects their json rows into BENCH_batch.json and
# BENCH_ckpt.json.
#
# Knobs (forwarded to the benches): FASTER_BENCH_KEYS, FASTER_BENCH_BATCH,
# FASTER_BENCH_OPS (batch_vs_scalar); FASTER_BENCH_CKPT_KEYS,
# FASTER_BENCH_CKPT_GENS (ckpt_latency). Outputs land in the repo root
# (override with BENCH_OUT=path / BENCH_CKPT_OUT=path).
set -euo pipefail
cd "$(dirname "$0")/.."

export FASTER_BENCH_KEYS="${FASTER_BENCH_KEYS:-2000000}"
export FASTER_BENCH_BATCH="${FASTER_BENCH_BATCH:-64}"
export FASTER_BENCH_OPS="${FASTER_BENCH_OPS:-2000000}"
export FASTER_BENCH_CKPT_KEYS="${FASTER_BENCH_CKPT_KEYS:-50000}"
export FASTER_BENCH_CKPT_GENS="${FASTER_BENCH_CKPT_GENS:-4}"

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

# Each `json,{...}` line is one measurement; emit a JSON array.
collect() {
  {
    echo '['
    grep '^json,' "$LOG" | sed 's/^json,//' | paste -sd ',' -
    echo ']'
  } > "$1"
  echo "wrote $1:"
  cat "$1"
}

cargo bench --bench batch_vs_scalar 2>&1 | tee "$LOG"
collect "${BENCH_OUT:-BENCH_batch.json}"

cargo bench --bench ckpt_latency 2>&1 | tee "$LOG"
collect "${BENCH_CKPT_OUT:-BENCH_ckpt.json}"
