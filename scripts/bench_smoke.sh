#!/usr/bin/env bash
# Quick perf smoke: runs the batch_vs_scalar and ckpt_latency benches at
# reduced scale and collects their json rows into BENCH_batch.json and
# BENCH_ckpt.json. The batch bench is run in two builds — default (counters
# on) and `--features metrics-off` (counters compiled to no-ops) — with
# FASTER_BENCH_REPS interleaved repetitions each; the per-mode best of each
# build is compared and written to BENCH_metrics.json, failing if the
# default build's counter overhead exceeds FASTER_BENCH_MAX_OVERHEAD_PCT
# (default 5%).
#
# The wal_latency bench compares per-op fsync against group commit on the
# NVMe latency model into BENCH_wal.json, failing if group commit at 8
# sessions falls below FASTER_BENCH_WAL_MIN_RATIO (default 3x) times the
# per-op-fsync throughput at 8 sessions.
#
# The io_depth bench sweeps a single session's disk-resident read
# throughput over I/O depths 1/4/16/64 into BENCH_io.json, failing if the
# depth-64 : depth-1 speedup falls below FASTER_BENCH_IO_MIN_RATIO (default
# 8x, the completion-ring pipelining target) or depth-1 throughput falls
# below FASTER_BENCH_IO_DEPTH1_MIN_MOPS (default 0.01 Mops, the seed's
# single-outstanding-read floor — one ~20 us model read per op).
#
# The maint_selftune bench starts an undersized index with the background
# maintenance service enabled (no manual grow anywhere) into
# BENCH_maint.json, failing if the service never grew the index or the
# final measurement window's probe length exceeds
# FASTER_BENCH_MAINT_MAX_PROBE (default 2.0; the untuned seed read ~5.6).
#
# The net_ycsb bench drives a YCSB-A mix over the RESP front-end's TCP
# socket at pipeline depth 1 and 64 (same connection count) into
# BENCH_net.json, failing if the depth-64 : depth-1 speedup falls below
# FASTER_BENCH_NET_MIN_RATIO (default 4x, the pipelined-batching target) or
# if its kill-the-server durability phase lost an acked SET.
#
# Knobs (forwarded to the benches): FASTER_BENCH_KEYS, FASTER_BENCH_BATCH,
# FASTER_BENCH_OPS (batch_vs_scalar); FASTER_BENCH_CKPT_KEYS,
# FASTER_BENCH_CKPT_GENS (ckpt_latency); FASTER_BENCH_IO_KEYS,
# FASTER_BENCH_IO_SECS (io_depth); FASTER_BENCH_WAL_SECS (wal_latency);
# FASTER_BENCH_MAINT_KEYS, FASTER_BENCH_MAINT_K_BITS,
# FASTER_BENCH_MAINT_SECS (maint_selftune); FASTER_BENCH_NET_KEYS,
# FASTER_BENCH_NET_SECS, FASTER_BENCH_NET_CONNS, FASTER_BENCH_NET_SETS
# (net_ycsb).
# Outputs land in the repo root (override with BENCH_OUT=path /
# BENCH_CKPT_OUT=path / BENCH_METRICS_OUT=path / BENCH_IO_OUT=path /
# BENCH_WAL_OUT=path / BENCH_MAINT_OUT=path / BENCH_NET_OUT=path).
set -euo pipefail
cd "$(dirname "$0")/.."

export FASTER_BENCH_KEYS="${FASTER_BENCH_KEYS:-2000000}"
export FASTER_BENCH_BATCH="${FASTER_BENCH_BATCH:-64}"
export FASTER_BENCH_OPS="${FASTER_BENCH_OPS:-2000000}"
export FASTER_BENCH_CKPT_KEYS="${FASTER_BENCH_CKPT_KEYS:-50000}"
export FASTER_BENCH_CKPT_GENS="${FASTER_BENCH_CKPT_GENS:-4}"
REPS="${FASTER_BENCH_REPS:-3}"

LOG="$(mktemp)"
ABDIR="$(mktemp -d)"
trap 'rm -rf "$LOG" "$ABDIR"' EXIT

# Each `json,{...}` line is one measurement; emit a JSON array.
collect() {
  {
    echo '['
    grep '^json,' "$LOG" | sed 's/^json,//' | paste -sd ',' -
    echo ']'
  } > "$1"
  echo "wrote $1:"
  cat "$1"
}

# Resolve a bench executable path without running it.
bench_bin() { # args: extra cargo flags...
  cargo bench --bench batch_vs_scalar --no-run --message-format=json "$@" 2>/dev/null |
    python3 -c '
import json, sys
for line in sys.stdin:
    try:
        m = json.loads(line)
    except ValueError:
        continue
    if m.get("target", {}).get("name") == "batch_vs_scalar" and m.get("executable"):
        print(m["executable"])'
}

cargo bench --bench batch_vs_scalar 2>&1 | tee "$LOG"
collect "${BENCH_OUT:-BENCH_batch.json}"
cp "$LOG" "$ABDIR/default.1"

DEFAULT_BIN="$(bench_bin)"
OFF_BIN="$(bench_bin --features metrics-off)"
# Build the metrics-off variant (bench_bin only resolves the path).
cargo bench --bench batch_vs_scalar --features metrics-off --no-run

# Interleave the remaining reps so machine-load drift hits both builds alike.
"$OFF_BIN" > "$ABDIR/off.1" 2>&1
for r in $(seq 2 "$REPS"); do
  "$DEFAULT_BIN" > "$ABDIR/default.$r" 2>&1
  "$OFF_BIN" > "$ABDIR/off.$r" 2>&1
done

python3 - "$ABDIR" "$REPS" "${BENCH_METRICS_OUT:-BENCH_metrics.json}" <<'PY'
import json, os, sys

abdir, reps, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def best_of(build):
    """Per-mode best throughput across reps, plus the last metrics snapshot."""
    best, snapshot = {}, None
    for r in range(1, reps + 1):
        with open(os.path.join(abdir, f"{build}.{r}")) as f:
            for line in f:
                if not line.startswith("json,"):
                    continue
                row = json.loads(line[len("json,"):])
                if row.get("bench") != "batch_vs_scalar":
                    continue
                if row["mode"] == "metrics_snapshot":
                    snapshot = row
                else:
                    best[row["mode"]] = max(best.get(row["mode"], 0.0), row["mops"])
    return best, snapshot

on, snap = best_of("default")
off, _ = best_of("off")
limit = float(os.environ.get("FASTER_BENCH_MAX_OVERHEAD_PCT", "5"))
modes = {}
for mode in sorted(set(on) & set(off)):
    # Positive = the default (counters-on) build is slower than metrics-off.
    delta = max(0.0, (off[mode] - on[mode]) / off[mode] * 100.0)
    modes[mode] = {"mops_default": on[mode], "mops_off": off[mode],
                   "overhead_pct": round(delta, 3)}
if not modes:
    sys.exit("no overlapping measurement modes between default and metrics-off runs")
mean = sum(m["overhead_pct"] for m in modes.values()) / len(modes)
result = {
    "bench": "metrics_overhead",
    "reps": reps,
    "limit_pct": limit,
    "mean_overhead_pct": round(mean, 3),
    "modes": modes,
    "snapshot": (snap or {}).get("metrics"),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
print(f"wrote {out_path}: mean counter overhead {mean:.2f}% (limit {limit}%, best of {reps})")
for mode, m in modes.items():
    print(f"  {mode:<14} default {m['mops_default']:.3f} Mops  off {m['mops_off']:.3f} Mops  overhead {m['overhead_pct']:.2f}%")
if mean > limit:
    sys.exit(f"metrics overhead {mean:.2f}% exceeds limit {limit}%")
PY

cargo bench --bench ckpt_latency 2>&1 | tee "$LOG"
collect "${BENCH_CKPT_OUT:-BENCH_ckpt.json}"

cargo bench --bench io_depth 2>&1 | tee "$LOG"
collect "${BENCH_IO_OUT:-BENCH_io.json}"

python3 - "${BENCH_IO_OUT:-BENCH_io.json}" <<'PY'
import json, os, sys

out_path = sys.argv[1]
rows = json.load(open(out_path))
by_depth = {r["depth"]: r["mops"] for r in rows
            if r.get("bench") == "io_depth" and "depth" in r}
min_ratio = float(os.environ.get("FASTER_BENCH_IO_MIN_RATIO", "8"))
floor = float(os.environ.get("FASTER_BENCH_IO_DEPTH1_MIN_MOPS", "0.01"))
d1, d64 = by_depth.get(1), by_depth.get(64)
if d1 is None or d64 is None:
    sys.exit("io_depth sweep is missing the depth-1 or depth-64 row")
ratio = d64 / d1
rows.append({"bench": "io_depth_summary", "depth1_mops": d1, "depth64_mops": d64,
             "ratio": round(ratio, 2), "min_ratio": min_ratio,
             "depth1_min_mops": floor})
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
print(f"io_depth: depth1 {d1:.4f} Mops, depth64 {d64:.4f} Mops, "
      f"ratio {ratio:.2f}x (min {min_ratio}x, depth-1 floor {floor} Mops)")
if ratio < min_ratio:
    sys.exit(f"io-depth speedup {ratio:.2f}x below minimum {min_ratio}x")
if d1 < floor:
    sys.exit(f"depth-1 throughput {d1:.4f} Mops below floor {floor} Mops")
PY

cargo bench --bench wal_latency 2>&1 | tee "$LOG"
collect "${BENCH_WAL_OUT:-BENCH_wal.json}"

python3 - "${BENCH_WAL_OUT:-BENCH_wal.json}" <<'PY'
import json, os, sys

out_path = sys.argv[1]
rows = json.load(open(out_path))
kops = {(r["mode"], r["sessions"], r["window_us"]): r["kops"] for r in rows
        if r.get("bench") == "wal_latency" and "mode" in r}
min_ratio = float(os.environ.get("FASTER_BENCH_WAL_MIN_RATIO", "3"))
per_op, group = kops.get(("per_op", 8, 0)), kops.get(("group", 8, 0))
if per_op is None or group is None:
    sys.exit("wal_latency sweep is missing the 8-session per_op or group row")
ratio = group / per_op
rows.append({"bench": "wal_latency_summary", "per_op_8_kops": per_op,
             "group_8_kops": group, "ratio": round(ratio, 2),
             "min_ratio": min_ratio})
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
print(f"wal_latency: per-op fsync {per_op:.1f} Kops, group commit {group:.1f} Kops "
      f"at 8 sessions, ratio {ratio:.2f}x (min {min_ratio}x)")
if ratio < min_ratio:
    sys.exit(f"group-commit speedup {ratio:.2f}x below minimum {min_ratio}x")
PY

cargo bench --bench maint_selftune 2>&1 | tee "$LOG"
collect "${BENCH_MAINT_OUT:-BENCH_maint.json}"

python3 - "${BENCH_MAINT_OUT:-BENCH_maint.json}" <<'PY'
import json, os, sys

out_path = sys.argv[1]
rows = json.load(open(out_path))
row = next((r for r in rows if r.get("bench") == "maint_selftune"), None)
if row is None:
    sys.exit("maint_selftune emitted no json row")
max_probe = float(os.environ.get("FASTER_BENCH_MAINT_MAX_PROBE", "2.0"))
probe, grows = row["probe_len_final"], row["grows"]
rows.append({"bench": "maint_selftune_summary", "probe_len_final": probe,
             "grows": grows, "max_probe": max_probe})
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
print(f"maint_selftune: index 2^{row['k_bits_start']} -> 2^{row['k_bits_final']} "
      f"({grows} policy grows), final-window probe len {probe:.2f} "
      f"(start {row['probe_len_start']:.2f}, max {max_probe})")
if grows < 1:
    sys.exit("maintenance service never grew the undersized index")
if probe > max_probe:
    sys.exit(f"self-tuned probe length {probe:.2f} exceeds gate {max_probe}")
PY

cargo bench --bench net_ycsb 2>&1 | tee "$LOG"
collect "${BENCH_NET_OUT:-BENCH_net.json}"

python3 - "${BENCH_NET_OUT:-BENCH_net.json}" <<'PY'
import json, os, sys

out_path = sys.argv[1]
rows = json.load(open(out_path))
by_depth = {r["depth"]: r["kops"] for r in rows
            if r.get("bench") == "net_ycsb" and "depth" in r}
dur = next((r for r in rows
            if r.get("bench") == "net_ycsb" and r.get("mode") == "durability"), None)
min_ratio = float(os.environ.get("FASTER_BENCH_NET_MIN_RATIO", "4"))
d1, d64 = by_depth.get(1), by_depth.get(64)
if d1 is None or d64 is None:
    sys.exit("net_ycsb sweep is missing the depth-1 or depth-64 row")
if dur is None:
    sys.exit("net_ycsb emitted no durability row")
ratio = d64 / d1
rows.append({"bench": "net_ycsb_summary", "depth1_kops": d1, "depth64_kops": d64,
             "ratio": round(ratio, 2), "min_ratio": min_ratio,
             "durability_ok": dur["recovered_ok"]})
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
print(f"net_ycsb: depth1 {d1:.1f} Kops, depth64 {d64:.1f} Kops, "
      f"ratio {ratio:.2f}x (min {min_ratio}x); durability acked {dur['acked']}, "
      f"recovered {dur['recovered']}")
if ratio < min_ratio:
    sys.exit(f"pipelined speedup {ratio:.2f}x below minimum {min_ratio}x")
if not dur["recovered_ok"]:
    sys.exit("durability phase lost an acked SET after killing the server")
PY
