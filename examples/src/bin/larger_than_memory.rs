//! Larger-than-memory operation (§5-§6): a dataset several times the size of
//! the in-memory circular buffer, with reads served asynchronously from the
//! simulated SSD and the HybridLog shaping what stays hot in memory.
//!
//! Run with: `cargo run --release -p faster-examples --bin larger_than_memory`

use faster_core::{CountStore, FasterKv, FasterKvConfig, OpError, Outcome};
use faster_hlog::HLogConfig;
use faster_storage::{LatencyModel, MemDevice};

fn main() {
    // 64 KB pages x 16 frames = 1 MB of memory; we will write ~4 MB of
    // records. The device models NVMe latency so "pending" is observable.
    let log = HLogConfig { page_bits: 16, buffer_pages: 16, mutable_pages: 14, io_threads: 4 };
    let mut cfg = FasterKvConfig::for_keys(200_000).with_log(log);
    cfg.refresh_interval = 128;
    let device = MemDevice::with_latency(4, LatencyModel::nvme());
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, device);

    let session = store.start_session();
    let n = 150_000u64;
    println!("loading {n} keys (~{} MB of records)...", n * 24 / (1 << 20));
    for k in 0..n {
        session.upsert(&k, &(k * 7)).expect("store is writable");
    }
    store.log().flush_barrier().unwrap();
    let r = store.log().regions();
    println!(
        "regions: begin={} head={} safe_ro={} ro={} tail={}",
        r.begin, r.head, r.safe_read_only, r.read_only, r.tail
    );
    assert!(r.head.raw() > 0, "the dataset must have spilled to storage");

    // Hot reads (recent keys): synchronous. Cold reads: async from "SSD".
    let mut sync_reads = 0u64;
    let mut async_reads = 0u64;
    let mut verified = 0u64;
    for k in (0..n).step_by(997) {
        match session.read(&k, &0) {
            Ok(Outcome::Value(v)) => {
                assert_eq!(v, k * 7);
                sync_reads += 1;
                verified += 1;
            }
            Err(OpError::NotFound) => panic!("key {k} lost"),
            Err(OpError::Pending(_)) => {
                async_reads += 1;
                for c in session.complete_pending(true) {
                    let got = c.result.expect("cold read must succeed");
                    assert!(got.value().is_some(), "cold key must be found on disk");
                    verified += 1;
                }
            }
            other => panic!("read of {k} failed: {other:?}"),
        }
    }
    println!("verified {verified} samples: {sync_reads} from memory, {async_reads} from storage");
    let stats = store.log().device().stats();
    println!(
        "device: {} MB written, {} reads issued",
        stats.bytes_written / (1 << 20),
        stats.reads
    );
    assert!(async_reads > 0, "cold keys must exercise the async read path");
    println!("larger_than_memory OK");
}
