//! Checkpointing and recovery without a write-ahead log (§6.5).
//!
//! Takes a fuzzy checkpoint while the store runs, "crashes" (drops the
//! store, losing all in-memory state), and recovers from the checkpoint +
//! the surviving log device. The recovered state is consistent with log
//! position t2; post-checkpoint updates are (correctly) lost.
//!
//! Run with: `cargo run --release -p faster-examples --bin checkpoint_recover`

use faster_core::{CountStore, FasterKv, FasterKvConfig, ReadResult};
use faster_storage::MemDevice;

/// Reads a key, driving the async path if the record is cold.
fn read_blocking(
    session: &faster_core::Session<u64, u64, CountStore>,
    key: u64,
) -> Option<u64> {
    match session.read(&key, &0) {
        ReadResult::Found(v) => Some(v),
        ReadResult::NotFound => None,
        ReadResult::Pending(id) => session.complete_pending(true).into_iter().find_map(|op| {
            match op {
                faster_core::CompletedOp::Read { id: done, result } if done == id => result,
                _ => None,
            }
        }),
    }
}

fn main() {
    let cfg = FasterKvConfig::for_keys(1 << 14);
    let device = MemDevice::new(2); // the "SSD" that survives the crash

    let checkpoint = {
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(cfg, CountStore, device.clone());
        let session = store.start_session();
        for k in 0..10_000u64 {
            session.upsert(&k, &(k + 1));
        }
        drop(session);
        let data = store.checkpoint();
        println!(
            "checkpoint: t1={} t2={} ({} index entries, {} bytes)",
            data.t1,
            data.t2,
            data.index.entries.len(),
            data.to_bytes().len()
        );
        // Updates after the checkpoint will be lost by the "crash".
        let s2 = store.start_session();
        s2.upsert(&0, &999_999_999);
        data
        // <- store dropped here: simulated crash, memory gone.
    };

    // Recovery: rebuild the index from the fuzzy snapshot, replay [t1, t2).
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(cfg, CountStore, device, &checkpoint);
    let session = store.start_session();
    let mut verified = 0u64;
    for k in 0..10_000u64 {
        match session.read(&k, &0) {
            ReadResult::Found(v) => {
                assert_eq!(v, k + 1, "key {k}");
                verified += 1;
            }
            ReadResult::NotFound => panic!("key {k} lost by recovery"),
            ReadResult::Pending(_) => {
                for op in session.complete_pending(true) {
                    if let faster_core::CompletedOp::Read { result, .. } = op {
                        assert_eq!(result, Some(k + 1));
                        verified += 1;
                    }
                }
            }
        }
    }
    println!("verified {verified}/10000 keys after recovery");
    // The post-checkpoint update to key 0 was lost, as §6.5 permits:
    assert_eq!(read_blocking(&session, 0), Some(1));
    // And the store continues normally.
    session.upsert(&777_777, &1);
    assert_eq!(read_blocking(&session, 777_777), Some(1));
    println!("checkpoint_recover OK");
}
