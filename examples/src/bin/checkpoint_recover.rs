//! Checkpointing and recovery without a write-ahead log (§6.5), persisted
//! through the atomic multi-generation commit protocol (DESIGN.md §7).
//!
//! Commits three checkpoint generations while the store runs, "crashes"
//! (drops the store, losing all in-memory state), corrupts the newest
//! generation's blob on the checkpoint device, and recovers: arbitration
//! skips the damaged generation with a typed error and falls back to the
//! previous one. The recovered state is consistent with that generation's
//! log position t2; post-checkpoint updates are (correctly) lost.
//!
//! Run with: `cargo run --release -p faster-examples --bin checkpoint_recover`

use faster_core::ckpt_manager::{self, CheckpointConfig, CheckpointManager};
use faster_core::{CheckpointError, CountStore, FasterKv, FasterKvConfig, OpError, Outcome};
use faster_storage::{Device, MemDevice};
use std::sync::Arc;

/// Reads a key, driving the async path if the record is cold.
fn read_blocking(
    session: &faster_core::Session<u64, u64, CountStore>,
    key: u64,
) -> Option<u64> {
    match session.read(&key, &0) {
        Ok(Outcome::Value(v)) => Some(v),
        Err(OpError::NotFound) => None,
        Err(OpError::Pending(id)) => session
            .complete_pending(true)
            .into_iter()
            .find(|c| c.id == id)
            .and_then(|c| c.result.ok())
            .and_then(Outcome::value),
        other => panic!("read of {key} failed: {other:?}"),
    }
}

fn main() {
    let cfg = FasterKvConfig::for_keys(1 << 14);
    let log_dev: Arc<dyn Device> = MemDevice::new(2); // the "SSD" that survives the crash
    let ckpt_dev: Arc<dyn Device> = MemDevice::new(1); // separate checkpoint device

    let mgr = CheckpointManager::new(ckpt_dev.clone(), CheckpointConfig::default());
    {
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(cfg, CountStore, log_dev.clone());
        // Three rounds of updates, each committed as its own generation: the
        // value of every key records which round last touched it.
        for round in 1..=3u64 {
            {
                let session = store.start_session();
                for k in 0..10_000u64 {
                    session.upsert(&k, &(k + round)).expect("store is writable");
                }
            } // session dropped: the epoch-gated durability wait needs no idle guards
            let gen = mgr.checkpoint_store(&store).expect("commit");
            let meta = mgr.generations().into_iter().find(|g| g.gen == gen).unwrap();
            println!(
                "committed generation {gen}: t1={} t2={} blob={} B",
                meta.t1, meta.t2, meta.blob_len
            );
        }
        // An update after the last commit will be lost by the "crash".
        let s2 = store.start_session();
        s2.upsert(&0, &999_999_999).expect("store is writable");
        // <- store dropped here: simulated crash, memory gone.
    }

    // Storage-level damage on top of the crash: one flipped byte in the
    // newest generation's blob.
    let victim = *mgr.generations().last().unwrap();
    drop(mgr);
    {
        let (tx, rx) = std::sync::mpsc::channel();
        ckpt_dev.read_async(
            victim.blob_offset,
            victim.blob_len as usize,
            Box::new(move |r| tx.send(r).unwrap()),
        );
        let mut blob = rx.recv().unwrap().unwrap();
        let at = blob.len() / 3;
        blob[at] ^= 0x01;
        let (tx, rx) = std::sync::mpsc::channel();
        ckpt_dev.write_async(victim.blob_offset, blob, Box::new(move |r| tx.send(r).unwrap()));
        rx.recv().unwrap().unwrap();
        println!("corrupted generation {}'s blob (one bit)", victim.gen);
    }

    // Recovery: arbitrate the manifest, skip the damaged generation, rebuild
    // the index from the surviving fuzzy snapshot, replay [t1, t2).
    let (store, mgr, rec) = ckpt_manager::recover_store::<u64, u64, CountStore>(
        cfg,
        CountStore,
        log_dev,
        ckpt_dev,
        CheckpointConfig::default(),
    )
    .expect("an older generation must survive");
    assert_eq!(rec.gen, victim.gen - 1);
    assert_eq!(rec.fallbacks(), 1);
    assert!(matches!(rec.skipped[0], (g, CheckpointError::ChecksumMismatch) if g == victim.gen));
    println!(
        "recovered to generation {} after {} fallback(s); skipped: {:?}",
        rec.gen,
        rec.fallbacks(),
        rec.skipped
    );

    // Generation 2 wrote k+2 everywhere; round 3's k+3 updates and the
    // post-commit write to key 0 are gone with the damaged generation.
    let session = store.start_session();
    let mut verified = 0u64;
    for k in 0..10_000u64 {
        assert_eq!(read_blocking(&session, k), Some(k + 2), "key {k}");
        verified += 1;
    }
    println!("verified {verified}/10000 keys match generation {}'s state", rec.gen);
    // And the store continues normally, including committing new generations
    // (the damaged generation's number is never reused).
    session.upsert(&777_777, &1).expect("recovered store is writable");
    assert_eq!(read_blocking(&session, 777_777), Some(1));
    drop(session);
    let g = mgr.checkpoint_store(&store).expect("post-recovery commit");
    assert!(g > victim.gen);
    println!("post-recovery commit produced generation {g}");
    println!("checkpoint_recover OK");
}
