//! Appendix D: the read-hot record cache.
//!
//! A dataset far larger than the primary log's memory budget, with a
//! read-mostly Zipfian workload: without the cache every hot-but-cold-located
//! read pays a simulated-SSD round trip; with the cache, hot records are
//! served from the second in-memory log after their first read.
//!
//! Run with: `cargo run --release -p faster-examples --bin read_cache_demo`

use faster_core::{BlindKv, FasterKv, FasterKvConfig, OpError, Outcome};
use faster_hlog::HLogConfig;
use faster_storage::{Device, LatencyModel, MemDevice};
use faster_ycsb::{Distribution, KeyChooser};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn run(with_cache: bool) -> (f64, u64) {
    let keys = 100_000u64;
    // Primary log: 16 x 16 KB = 256 KB of memory for a ~2.4 MB dataset.
    let log = HLogConfig { page_bits: 14, buffer_pages: 16, mutable_pages: 12, io_threads: 4 };
    let mut cfg = FasterKvConfig::for_keys(keys).with_log(log);
    if with_cache {
        // Cache: 32 x 64 KB = 2 MB — room for the hot set.
        cfg = cfg.with_read_cache(HLogConfig {
            page_bits: 16,
            buffer_pages: 32,
            mutable_pages: 16,
            io_threads: 1,
        });
    }
    let device = MemDevice::with_latency(4, LatencyModel::nvme());
    let store: FasterKv<u64, u64, BlindKv<u64>> = FasterKv::new(cfg, BlindKv::new(), device.clone());
    {
        let s = store.start_session();
        for k in 0..keys {
            s.upsert(&k, &(k * 3)).expect("preload store is writable");
        }
        store.log().flush_barrier().unwrap();
    }

    let session = store.start_session();
    let mut chooser = KeyChooser::new(keys, Distribution::zipf_default());
    let mut rng = StdRng::seed_from_u64(99);
    let reads = 200_000u64;
    let start = Instant::now();
    for _ in 0..reads {
        let k = chooser.next_key(&mut rng);
        match session.read(&k, &0) {
            Ok(Outcome::Value(v)) => debug_assert_eq!(v, k * 3),
            Err(OpError::NotFound) => panic!("key {k} lost"),
            Err(OpError::Pending(_)) => {
                session.complete_pending(true);
            }
            other => panic!("read of {k} failed: {other:?}"),
        }
    }
    let mops = reads as f64 / start.elapsed().as_secs_f64() / 1e6;
    (mops, device.stats().reads)
}

fn main() {
    let (cold_mops, cold_reads) = run(false);
    println!("without read cache: {cold_mops:.3} M reads/s, {cold_reads} device reads");
    let (hot_mops, hot_reads) = run(true);
    println!("with    read cache: {hot_mops:.3} M reads/s, {hot_reads} device reads");
    assert!(
        hot_reads < cold_reads,
        "the cache must absorb device reads ({hot_reads} vs {cold_reads})"
    );
    println!(
        "cache absorbed {:.1}% of device reads; speedup {:.2}x",
        100.0 * (1.0 - hot_reads as f64 / cold_reads as f64),
        hot_mops / cold_mops
    );
    println!("read_cache_demo OK");
}
