//! Appendix F: feeding the record log to analytics.
//!
//! "The FASTER record log is a sequence of updates to the state of the
//! application. Such a log can be directly fed into a stream processing
//! engine to analyze the application state across time. For example, one may
//! measure the rate at which values grow over time, or produce hourly
//! dashboards of the hottest keys."
//!
//! This example runs a count-store workload, then scans the log to produce
//! exactly those two analytics: per-key growth across log time, and a
//! "hottest keys" dashboard — all without touching the live index.
//!
//! Run with: `cargo run --release -p faster-examples --bin log_analytics`

use faster_core::record::RecordRef;
use faster_core::{CountStore, FasterKv, FasterKvConfig, OpError};
use faster_hlog::{HLogConfig, LogScanner};
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, KeyChooser};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    // A smaller IPU region => more update versions materialize in the log
    // (§6.4: the region split "controls the frequency of updates to values
    // present in the log" — Appendix F).
    let log = HLogConfig { page_bits: 14, buffer_pages: 32, mutable_pages: 4, io_threads: 2 };
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(FasterKvConfig::for_keys(10_000).with_log(log), CountStore, MemDevice::new(2));

    // Zipfian increments: some keys become much hotter than others.
    let session = store.start_session();
    let mut chooser = KeyChooser::new(10_000, Distribution::zipf_default());
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..300_000 {
        let k = chooser.next_key(&mut rng);
        if let Err(OpError::Pending(_)) = session.rmw(&k, &1) {
            session.complete_pending(true);
        }
    }
    store.log().flush_barrier().unwrap();

    // ---- The analytics pass: a single ordered scan of the log.
    let rec_size = RecordRef::<u64, u64>::size();
    let mut versions: HashMap<u64, u64> = HashMap::new();
    let mut latest: HashMap<u64, u64> = HashMap::new();
    let mut scanned = 0u64;
    for page in LogScanner::full(store.log()) {
        let page = page.expect("scan");
        let mut off = page.start_offset;
        while off + rec_size <= page.end_offset {
            match RecordRef::<u64, u64>::parse_bytes(&page.bytes[off..off + rec_size]) {
                Some((h, k, v)) if !h.is_invalid() && !h.is_merge() && !h.is_tombstone() => {
                    *versions.entry(k).or_default() += 1;
                    latest.insert(k, v);
                    scanned += 1;
                }
                Some(_) => {}
                None => break, // page padding
            }
            off += rec_size;
        }
    }
    println!("scanned {scanned} record versions for {} keys", versions.len());

    // Dashboard 1: hottest keys by final count.
    let mut hot: Vec<(u64, u64)> = latest.iter().map(|(&k, &v)| (k, v)).collect();
    hot.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
    println!("hottest keys by count:");
    for (k, v) in hot.iter().take(5) {
        println!("  key {k:6} -> {v} increments");
    }

    // Dashboard 2: growth mediated by the log (versions per key = how often
    // the value materialized, i.e. escaped the in-place-update region).
    let multi_version = versions.values().filter(|&&c| c > 1).count();
    println!(
        "{multi_version} keys have >1 log version (value history available for time-travel)"
    );
    assert!(multi_version > 0, "zipf + small IPU region must produce history");
    println!("log_analytics OK");
}
