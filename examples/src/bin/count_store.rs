//! The paper's running example (§2.5): a concurrent **count store**.
//!
//! "A set of FASTER user threads increment the counter associated with
//! incoming key requests." Increments are read-modify-writes; hot counters
//! update in place with fetch-and-add; counts are exact across threads.
//!
//! Run with: `cargo run --release -p faster-examples --bin count_store`

use faster_core::{CountStore, FasterKv, FasterKvConfig, OpError, Outcome};
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, KeyChooser};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Barrier;
use std::time::Instant;

fn main() {
    let threads: u64 = std::env::var("THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    let increments_per_thread: u64 = 2_000_000;
    let keys = 1u64 << 16;

    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(FasterKvConfig::for_keys(keys), CountStore, MemDevice::new(2));

    let barrier = std::sync::Arc::new(Barrier::new(threads as usize));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = store.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                // Each thread: a session + a Zipfian request stream.
                let session = store.start_session();
                let mut chooser = KeyChooser::new(keys, Distribution::zipf_default());
                let mut rng = StdRng::seed_from_u64(t);
                barrier.wait();
                for i in 0..increments_per_thread {
                    let key = chooser.next_key(&mut rng);
                    if let Err(OpError::Pending(_)) = session.rmw(&key, &1) {
                        session.complete_pending(true);
                    }
                    // §2.5: periodic CompletePending for outstanding ops.
                    if i % 65_536 == 0 {
                        session.complete_pending(false);
                    }
                }
                session.complete_pending(true);
            })
        })
        .collect();

    for h in handles {
        h.join().expect("worker");
    }
    let totals = store.metrics().sessions.totals;
    let (in_place, copies) = (totals.in_place, totals.rcu);
    let secs = start.elapsed().as_secs_f64();
    let total_ops = threads * increments_per_thread;
    println!(
        "{total_ops} increments on {threads} threads in {secs:.2}s = {:.1} M ops/sec",
        total_ops as f64 / secs / 1e6
    );
    println!("in-place updates: {in_place}, copies to tail: {copies}");

    // Verify exactness: the sum of all counters equals the increment count.
    let session = store.start_session();
    let mut sum = 0u64;
    for k in 0..keys {
        match session.read(&k, &0) {
            Ok(Outcome::Value(v)) => sum += v,
            Err(OpError::NotFound) => {}
            Err(OpError::Pending(_)) => {
                // Aggregate cold counters too.
                for c in session.complete_pending(true) {
                    if let Ok(Outcome::Value(v)) = c.result {
                        sum += v;
                    }
                }
            }
            other => panic!("read of {k} failed: {other:?}"),
        }
    }
    assert_eq!(sum, total_ops, "every increment counted exactly once");
    println!("count-store verification OK: {sum} == {total_ops}");
}
