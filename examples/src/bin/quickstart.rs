//! Quickstart: FASTER as a plain concurrent key-value store.
//!
//! Demonstrates the four operations of the runtime interface (§2.2): Read,
//! Upsert, RMW, and Delete, plus pending-operation completion.
//!
//! Run with: `cargo run --release -p faster-examples --bin quickstart`

use faster_core::{BlindKv, CompletedOp, FasterKv, FasterKvConfig, ReadResult, RmwResult};
use faster_storage::MemDevice;

fn main() {
    // A store with u64 keys and values; BlindKv's RMW replaces the value.
    let store: FasterKv<u64, u64, BlindKv<u64>> = FasterKv::new(
        FasterKvConfig::for_keys(1 << 16),
        BlindKv::new(),
        MemDevice::new(2), // simulated SSD with 2 I/O threads
    );

    // Each thread registers a session (§2.5: Acquire ... Release).
    let session = store.start_session();

    // Upsert: blind write.
    session.upsert(&1, &100);
    session.upsert(&2, &200);

    // Read: may complete synchronously or go pending (cold data).
    match session.read(&1, &0) {
        ReadResult::Found(v) => println!("key 1 => {v}"),
        ReadResult::NotFound => println!("key 1 absent"),
        ReadResult::Pending(id) => {
            // Cold read: drive the continuation.
            for op in session.complete_pending(true) {
                if let CompletedOp::Read { id: done, result } = op {
                    if done == id {
                        println!("key 1 => {result:?} (async)");
                    }
                }
            }
        }
    }

    // RMW with BlindKv semantics: replace with the input.
    match session.rmw(&2, &999) {
        RmwResult::Done => {}
        RmwResult::Pending(_) => {
            session.complete_pending(true);
        }
    }
    assert!(matches!(session.read(&2, &0), ReadResult::Found(999)));

    // Delete.
    session.delete(&1);
    assert!(matches!(session.read(&1, &0), ReadResult::NotFound));

    println!("log regions: {:?}", store.log().regions());
    println!("quickstart OK");
}
