//! Quickstart: FASTER as a plain concurrent key-value store.
//!
//! Demonstrates the four operations of the runtime interface (§2.2): Read,
//! Upsert, RMW, and Delete, plus pending-operation completion.
//!
//! Run with: `cargo run --release -p faster-examples --bin quickstart`

use faster_core::prelude::*;
use faster_core::BlindKv;
use faster_storage::MemDevice;

fn main() {
    // A store with u64 keys and values; BlindKv's RMW replaces the value.
    let store: FasterKv<u64, u64, BlindKv<u64>> = FasterKv::new(
        FasterKvConfig::for_keys(1 << 16),
        BlindKv::new(),
        MemDevice::new(2), // simulated SSD with 2 I/O threads
    );

    // Each thread registers a session (§2.5: Acquire ... Release).
    let session = store.start_session();

    // Upsert: blind write. Mutations are fallible — a healthy store says Ok.
    session.upsert(&1, &100).expect("store is writable");
    session.upsert(&2, &200).expect("store is writable");

    // Read: may complete synchronously or go pending (cold data).
    match session.read(&1, &0) {
        Ok(Outcome::Value(v)) => println!("key 1 => {v}"),
        Ok(Outcome::Done) => unreachable!("reads always carry a value"),
        Err(OpError::NotFound) => println!("key 1 absent"),
        Err(OpError::Pending(id)) => {
            // Cold read: drive the continuation.
            for c in session.complete_pending(true) {
                if c.id == id {
                    println!("key 1 => {:?} (async)", c.result.ok().and_then(Outcome::value));
                }
            }
        }
        Err(e) => panic!("read failed: {e}"),
    }

    // RMW with BlindKv semantics: replace with the input.
    match session.rmw(&2, &999) {
        Ok(_) => {}
        Err(OpError::Pending(_)) => {
            session.complete_pending(true);
        }
        Err(e) => panic!("rmw failed: {e}"),
    }
    assert!(matches!(session.read(&2, &0), Ok(Outcome::Value(999))));

    // Delete.
    session.delete(&1).expect("store is writable");
    assert!(matches!(session.read(&1, &0), Err(OpError::NotFound)));

    println!("log regions: {:?}", store.log().regions());
    println!("quickstart OK");
}
