//! Masstree stand-in: a pure in-memory *ordered* range index (§7.1).
//!
//! Masstree is a trie of B+-trees with optimistic concurrency. The property
//! the paper's comparison exercises is "tree-based ordered index doing point
//! operations": every access pays logarithmic traversal and maintains total
//! key order. This stand-in range-partitions the key space across B-trees,
//! each behind a reader-writer lock — point ops hit one partition's tree,
//! scans merge across partitions in key order.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A concurrent ordered key-value index over `u64` keys.
pub struct OrderedStore<V> {
    /// Range partitions: partition `i` owns keys with top bits == i.
    parts: Vec<RwLock<BTreeMap<u64, V>>>,
    bits: u32,
}

impl<V: Clone> OrderedStore<V> {
    /// Creates a store with `2^bits` range partitions.
    pub fn new(bits: u32) -> Self {
        assert!(bits <= 12);
        Self { parts: (0..(1usize << bits)).map(|_| RwLock::new(BTreeMap::new())).collect(), bits }
    }

    #[inline]
    fn part(&self, key: u64) -> &RwLock<BTreeMap<u64, V>> {
        // Top bits: preserves global key order across partitions.
        let idx = if self.bits == 0 { 0 } else { (key >> (64 - self.bits)) as usize };
        &self.parts[idx]
    }

    pub fn get(&self, key: u64) -> Option<V> {
        self.part(key).read().get(&key).cloned()
    }

    pub fn upsert(&self, key: u64, value: V) {
        self.part(key).write().insert(key, value);
    }

    pub fn rmw<U, I>(&self, key: u64, update: U, init: I)
    where
        U: FnOnce(&mut V),
        I: FnOnce() -> V,
    {
        let mut g = self.part(key).write();
        match g.get_mut(&key) {
            Some(v) => update(v),
            None => {
                g.insert(key, init());
            }
        }
    }

    pub fn delete(&self, key: u64) -> bool {
        self.part(key).write().remove(&key).is_some()
    }

    /// Ordered range scan `[from, to)` — the capability FASTER trades away.
    pub fn range(&self, from: u64, to: u64) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        let first = if self.bits == 0 { 0 } else { (from >> (64 - self.bits)) as usize };
        let last = if self.bits == 0 {
            0
        } else {
            (to.saturating_sub(1) >> (64 - self.bits)) as usize
        };
        for p in first..=last.min(self.parts.len() - 1) {
            let g = self.parts[p].read();
            for (&k, v) in g.range((Bound::Included(from), Bound::Excluded(to))) {
                out.push((k, v.clone()));
            }
        }
        out
    }

    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ops() {
        let s: OrderedStore<u64> = OrderedStore::new(4);
        s.upsert(5, 50);
        s.upsert(1 << 62, 99);
        assert_eq!(s.get(5), Some(50));
        assert_eq!(s.get(1 << 62), Some(99));
        s.rmw(5, |v| *v += 1, || 0);
        assert_eq!(s.get(5), Some(51));
        assert!(s.delete(5));
        assert_eq!(s.get(5), None);
    }

    #[test]
    fn range_scan_is_ordered_across_partitions() {
        let s: OrderedStore<u64> = OrderedStore::new(3);
        for k in [1u64, 100, 1 << 61, (1 << 61) + 5, 1 << 63, u64::MAX - 1] {
            s.upsert(k, k);
        }
        let r = s.range(0, u64::MAX);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "scan must be globally ordered");
        assert_eq!(keys.len(), 6);
        assert_eq!(s.range(50, 200), vec![(100, 100)]);
    }

    #[test]
    fn concurrent_rmw_exact() {
        use std::sync::Arc;
        let s: Arc<OrderedStore<u64>> = Arc::new(OrderedStore::new(4));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut rng = faster_util::XorShift64::new(t + 3);
                    for _ in 0..5_000 {
                        let k = rng.next_below(32) << 59; // spread across parts
                        s.rmw(k, |v| *v += 1, || 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = s.range(0, u64::MAX).iter().map(|(_, v)| *v).sum();
        assert_eq!(total, 40_000);
    }
}
