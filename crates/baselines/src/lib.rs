//! # faster-baselines
//!
//! From-scratch Rust stand-ins for the comparison systems of §7.1. The
//! originals are closed-form C/C++ codebases; each stand-in reimplements the
//! *algorithmic design class* that the paper's comparison exercises, so the
//! relative ordering of results is attributable to design, not binding
//! overheads. DESIGN.md documents each substitution.
//!
//! * [`ShardMap`] — Intel TBB `concurrent_hash_map` stand-in: a lock-striped
//!   in-memory hash map with in-place updates. Pure in-memory; no storage,
//!   no recovery — like TBB in the paper.
//! * [`BTreeIndex`] — Masstree stand-in: a concurrent B+-tree with
//!   hand-over-hand lock coupling. Point operations pay tree traversal +
//!   ordering overhead, the property the comparison is about.
//! * [`OrderedStore`] — a simpler range-partitioned ordered map, kept as a
//!   second ordered-index data point.
//! * [`MiniLsm`] — RocksDB stand-in: a log-structured merge store with a
//!   memtable, sorted runs on a storage device, bloom filters, and
//!   read-copy-update semantics (no in-place updates) — the design FASTER's
//!   update-intensive workloads punish.
//! * [`RedisLike`] — Redis stand-in: a single-threaded command loop accessed
//!   through pipelined client channels (§7.2.4's comparison shape).

pub mod btree;
pub mod lsm;
pub mod ordered;
pub mod redis_like;
pub mod shard_map;

pub use btree::BTreeIndex;
pub use lsm::{MiniLsm, MiniLsmConfig};
pub use ordered::OrderedStore;
pub use redis_like::{RedisClient, RedisLike};
pub use shard_map::ShardMap;
