//! RocksDB stand-in: a from-scratch mini LSM store (§7.1, Fig 8/10).
//!
//! The design class the comparison exercises: writes go to an in-memory
//! *memtable* (sorted map behind a lock); full memtables are frozen and
//! flushed to *sorted runs* on the storage device; reads consult memtable →
//! frozen memtables → runs newest-first, with bloom filters and a sparse
//! block index per run; background-less size-tiered compaction merges runs
//! when a level accumulates too many. Updates are read-copy-update (append a
//! new version) — the property that caps RocksDB's throughput on
//! update-intensive workloads in the paper. WAL and checksums are off,
//! matching the paper's RocksDB configuration.

use faster_storage::Device;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A stored value or a deletion marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Value(u64),
    Tombstone,
}

/// On-device sorted run layout: `count * (key u64 | tag u8 | value u64)`,
/// sorted by key, plus an in-memory sparse index and bloom filter.
struct SortedRun {
    base: u64,
    count: usize,
    /// Every `SPARSE_EVERY`-th key, for block binary search.
    sparse: Vec<(u64, usize)>,
    bloom: Bloom,
}

const ENTRY_SIZE: usize = 17;
const SPARSE_EVERY: usize = 64;

/// A tiny blocked bloom filter (k = 2 probes over a bit array).
struct Bloom {
    bits: Vec<u64>,
    mask: u64,
}

impl Bloom {
    fn with_items(n: usize) -> Self {
        // ~10 bits/key, power-of-two words.
        let words = ((n * 10 / 64).max(8)).next_power_of_two();
        Self { bits: vec![0; words], mask: (words as u64 * 64) - 1 }
    }

    fn add(&mut self, key: u64) {
        let h = faster_util::hash_u64(key);
        for probe in [h, h.rotate_left(21)] {
            let b = probe & self.mask;
            self.bits[(b / 64) as usize] |= 1 << (b % 64);
        }
    }

    fn may_contain(&self, key: u64) -> bool {
        let h = faster_util::hash_u64(key);
        [h, h.rotate_left(21)].iter().all(|p| {
            let b = p & self.mask;
            self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
        })
    }
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct MiniLsmConfig {
    /// Memtable flush threshold in entries.
    pub memtable_entries: usize,
    /// Runs per level before compaction merges them.
    pub level_fanout: usize,
}

impl Default for MiniLsmConfig {
    fn default() -> Self {
        Self { memtable_entries: 64 * 1024, level_fanout: 4 }
    }
}

/// The mini LSM store.
pub struct MiniLsm {
    cfg: MiniLsmConfig,
    device: Arc<dyn Device>,
    memtable: RwLock<BTreeMap<u64, Slot>>,
    /// Frozen memtables not yet flushed (newest last).
    frozen: RwLock<Vec<Arc<BTreeMap<u64, Slot>>>>,
    /// Levels of sorted runs; `levels[0]` newest. Within a level, newest last.
    levels: RwLock<Vec<Vec<Arc<SortedRun>>>>,
    /// Bump allocator over the device address space.
    next_offset: AtomicU64,
    /// Serializes flush/compaction (single writer of structure).
    maintenance: Mutex<()>,
}

impl MiniLsm {
    pub fn new(cfg: MiniLsmConfig, device: Arc<dyn Device>) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            device,
            memtable: RwLock::new(BTreeMap::new()),
            frozen: RwLock::new(Vec::new()),
            levels: RwLock::new(vec![Vec::new()]),
            next_offset: AtomicU64::new(0),
            maintenance: Mutex::new(()),
        })
    }

    /// Blind write.
    pub fn put(&self, key: u64, value: u64) {
        self.write(key, Slot::Value(value));
    }

    /// Delete via tombstone.
    pub fn delete(&self, key: u64) {
        self.write(key, Slot::Tombstone);
    }

    /// Read-modify-write (read + write back; RocksDB's merge without the
    /// operator registry — the cost profile is the same: a read plus an
    /// append).
    pub fn rmw<U: FnOnce(u64) -> u64>(&self, key: u64, init: u64, update: U) {
        let cur = self.get(key);
        let new = match cur {
            Some(v) => update(v),
            None => init,
        };
        self.put(key, new);
    }

    fn write(&self, key: u64, slot: Slot) {
        let needs_flush = {
            let mut mt = self.memtable.write();
            mt.insert(key, slot);
            mt.len() >= self.cfg.memtable_entries
        };
        if needs_flush {
            self.flush_memtable();
        }
    }

    /// Point read.
    pub fn get(&self, key: u64) -> Option<u64> {
        if let Some(s) = self.memtable.read().get(&key) {
            return Self::resolve(*s);
        }
        for mt in self.frozen.read().iter().rev() {
            if let Some(s) = mt.get(&key) {
                return Self::resolve(*s);
            }
        }
        let levels = self.levels.read();
        for level in levels.iter() {
            for run in level.iter().rev() {
                if !run.bloom.may_contain(key) {
                    continue;
                }
                if let Some(s) = self.search_run(run, key) {
                    return Self::resolve(s);
                }
            }
        }
        None
    }

    fn resolve(s: Slot) -> Option<u64> {
        match s {
            Slot::Value(v) => Some(v),
            Slot::Tombstone => None,
        }
    }

    /// Freezes and flushes the active memtable as a new L0 run.
    fn flush_memtable(&self) {
        let _g = self.maintenance.lock();
        let frozen_mt = {
            let mut mt = self.memtable.write();
            if mt.len() < self.cfg.memtable_entries {
                return; // another thread flushed first
            }
            Arc::new(std::mem::take(&mut *mt))
        };
        self.frozen.write().push(frozen_mt.clone());
        let entries: Vec<(u64, Slot)> = frozen_mt.iter().map(|(&k, &v)| (k, v)).collect();
        let run = self.write_run(&entries);
        {
            let mut levels = self.levels.write();
            levels[0].push(Arc::new(run));
        }
        // The frozen memtable is durable now.
        self.frozen.write().retain(|m| !Arc::ptr_eq(m, &frozen_mt));
        self.maybe_compact();
    }

    /// Serializes a sorted entry list to the device; builds index + bloom.
    fn write_run(&self, entries: &[(u64, Slot)]) -> SortedRun {
        let mut buf = Vec::with_capacity(entries.len() * ENTRY_SIZE);
        let mut bloom = Bloom::with_items(entries.len());
        let mut sparse = Vec::new();
        for (i, &(k, s)) in entries.iter().enumerate() {
            if i % SPARSE_EVERY == 0 {
                sparse.push((k, i));
            }
            bloom.add(k);
            buf.extend_from_slice(&k.to_le_bytes());
            match s {
                Slot::Value(v) => {
                    buf.push(1);
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                Slot::Tombstone => {
                    buf.push(0);
                    buf.extend_from_slice(&0u64.to_le_bytes());
                }
            }
        }
        let base = self.next_offset.fetch_add(buf.len() as u64 + 4096, Ordering::SeqCst);
        let (tx, rx) = std::sync::mpsc::channel();
        self.device.write_async(base, buf, Box::new(move |r| {
            let _ = tx.send(r);
        }));
        rx.recv().expect("device alive").expect("run write");
        SortedRun { base, count: entries.len(), sparse, bloom }
    }

    /// Binary search within a run: sparse index narrows to a block, then the
    /// block is read from the device and scanned.
    fn search_run(&self, run: &SortedRun, key: u64) -> Option<Slot> {
        let block = match run.sparse.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => run.sparse[i].1,
            Err(0) => return None, // below the run's smallest key
            Err(i) => run.sparse[i - 1].1,
        };
        let start = block;
        let end = (block + SPARSE_EVERY).min(run.count);
        let bytes = self.read_range(run.base + (start * ENTRY_SIZE) as u64, (end - start) * ENTRY_SIZE)?;
        for chunk in bytes.chunks_exact(ENTRY_SIZE) {
            let k = u64::from_le_bytes(chunk[0..8].try_into().expect("8"));
            if k == key {
                let v = u64::from_le_bytes(chunk[9..17].try_into().expect("8"));
                return Some(if chunk[8] == 1 { Slot::Value(v) } else { Slot::Tombstone });
            }
            if k > key {
                break;
            }
        }
        None
    }

    fn read_range(&self, offset: u64, len: usize) -> Option<Vec<u8>> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.device.read_async(offset, len, Box::new(move |r| {
            let _ = tx.send(r);
        }));
        rx.recv().ok()?.ok()
    }

    /// Size-tiered compaction: when a level holds `fanout` runs, merge them
    /// into one run on the next level.
    fn maybe_compact(&self) {
        loop {
            let (level_idx, runs) = {
                let levels = self.levels.read();
                match levels.iter().position(|l| l.len() >= self.cfg.level_fanout) {
                    Some(i) => (i, levels[i].clone()),
                    None => return,
                }
            };
            // Merge newest-wins: iterate runs newest to oldest.
            let mut merged: BTreeMap<u64, Slot> = BTreeMap::new();
            for run in runs.iter().rev() {
                let bytes = self
                    .read_range(run.base, run.count * ENTRY_SIZE)
                    .expect("run readable during compaction");
                for chunk in bytes.chunks_exact(ENTRY_SIZE) {
                    let k = u64::from_le_bytes(chunk[0..8].try_into().expect("8"));
                    merged.entry(k).or_insert_with(|| {
                        let v = u64::from_le_bytes(chunk[9..17].try_into().expect("8"));
                        if chunk[8] == 1 {
                            Slot::Value(v)
                        } else {
                            Slot::Tombstone
                        }
                    });
                }
            }
            let entries: Vec<(u64, Slot)> = merged.into_iter().collect();
            let new_run = Arc::new(self.write_run(&entries));
            let mut levels = self.levels.write();
            levels[level_idx].retain(|r| !runs.iter().any(|o| Arc::ptr_eq(o, r)));
            if level_idx + 1 == levels.len() {
                levels.push(Vec::new());
            }
            levels[level_idx + 1].push(new_run);
        }
    }

    /// Runs currently on device (diagnostics).
    pub fn run_count(&self) -> usize {
        self.levels.read().iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faster_storage::MemDevice;

    fn small() -> Arc<MiniLsm> {
        MiniLsm::new(
            MiniLsmConfig { memtable_entries: 128, level_fanout: 3 },
            MemDevice::new(2),
        )
    }

    #[test]
    fn put_get_delete() {
        let db = small();
        assert_eq!(db.get(1), None);
        db.put(1, 10);
        assert_eq!(db.get(1), Some(10));
        db.put(1, 20);
        assert_eq!(db.get(1), Some(20));
        db.delete(1);
        assert_eq!(db.get(1), None);
    }

    #[test]
    fn survives_flush_to_runs() {
        let db = small();
        for k in 0..1000u64 {
            db.put(k, k * 2);
        }
        assert!(db.run_count() > 0, "memtable must have flushed");
        for k in 0..1000u64 {
            assert_eq!(db.get(k), Some(k * 2), "key {k}");
        }
    }

    #[test]
    fn newest_version_wins_across_runs() {
        let db = small();
        for round in 0..5u64 {
            for k in 0..300u64 {
                db.put(k, k + round * 1000);
            }
        }
        for k in 0..300u64 {
            assert_eq!(db.get(k), Some(k + 4000), "key {k}");
        }
    }

    #[test]
    fn tombstones_survive_compaction() {
        let db = small();
        for k in 0..500u64 {
            db.put(k, k);
        }
        for k in 0..250u64 {
            db.delete(k);
        }
        for k in 500..1500u64 {
            db.put(k, k); // force flush + compaction churn
        }
        for k in 0..250u64 {
            assert_eq!(db.get(k), None, "deleted key {k}");
        }
        for k in 250..500u64 {
            assert_eq!(db.get(k), Some(k), "live key {k}");
        }
    }

    #[test]
    fn rmw_semantics() {
        let db = small();
        db.rmw(7, 5, |v| v + 1);
        assert_eq!(db.get(7), Some(5));
        db.rmw(7, 5, |v| v + 1);
        assert_eq!(db.get(7), Some(6));
    }

    #[test]
    fn concurrent_writers_disjoint_keys() {
        let db = small();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        db.put(t * 1_000_000 + i, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in (0..2_000u64).step_by(97) {
                assert_eq!(db.get(t * 1_000_000 + i), Some(i));
            }
        }
    }
}
