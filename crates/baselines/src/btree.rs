//! A concurrent B+-tree with hand-over-hand (crabbing) lock coupling — the
//! stronger Masstree stand-in for the §7 comparisons.
//!
//! Masstree is a trie of B+-trees with optimistic concurrency; the property
//! the paper's comparison exercises is an *in-memory ordered index paying
//! per-operation tree traversal*. This tree reproduces that class with safe
//! Rust: readers couple shared locks root→leaf; writers couple exclusive
//! locks, releasing all ancestors once the child is *safe* (non-full), and
//! split full nodes on the way down. Deletes are lazy (no rebalancing), the
//! common choice in in-memory B-trees.

use parking_lot::RwLock;
use std::sync::Arc;

const ORDER: usize = 32; // max keys per node

type NodeRef<V> = Arc<RwLock<Node<V>>>;

enum Node<V> {
    Internal {
        /// Separators: child `i` holds keys `< keys[i]`; the last child holds
        /// the rest. `children.len() == keys.len() + 1`.
        keys: Vec<u64>,
        children: Vec<NodeRef<V>>,
    },
    Leaf {
        keys: Vec<u64>,
        vals: Vec<V>,
    },
}

impl<V: Clone> Node<V> {
    fn is_full(&self) -> bool {
        match self {
            Node::Internal { keys, .. } => keys.len() >= ORDER,
            Node::Leaf { keys, .. } => keys.len() >= ORDER,
        }
    }

    /// Splits a full node; returns (separator, right sibling).
    fn split(&mut self) -> (u64, Node<V>) {
        match self {
            Node::Leaf { keys, vals } => {
                let mid = keys.len() / 2;
                let rk = keys.split_off(mid);
                let rv = vals.split_off(mid);
                let sep = rk[0];
                (sep, Node::Leaf { keys: rk, vals: rv })
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let sep = keys[mid];
                let rk = keys.split_off(mid + 1);
                keys.pop(); // the separator moves up
                let rc = children.split_off(mid + 1);
                (sep, Node::Internal { keys: rk, children: rc })
            }
        }
    }

    fn child_index(keys: &[u64], key: u64) -> usize {
        keys.partition_point(|&k| k <= key)
    }
}

/// A concurrent ordered map over `u64` keys (Masstree stand-in).
pub struct BTreeIndex<V> {
    root: RwLock<NodeRef<V>>,
}

impl<V: Clone> Default for BTreeIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> BTreeIndex<V> {
    pub fn new() -> Self {
        Self {
            root: RwLock::new(Arc::new(RwLock::new(Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            }))),
        }
    }

    /// Point lookup with shared-lock coupling.
    pub fn get(&self, key: u64) -> Option<V> {
        let root = self.root.read().clone();
        let mut node = root;
        loop {
            // Hold the parent guard only until the child guard is taken.
            let next = {
                let g = node.read();
                match &*g {
                    Node::Leaf { keys, vals } => {
                        return keys
                            .binary_search(&key)
                            .ok()
                            .map(|i| vals[i].clone());
                    }
                    Node::Internal { keys, children } => {
                        children[Node::<V>::child_index(keys, key)].clone()
                    }
                }
            };
            node = next;
        }
    }

    /// Insert-or-replace.
    pub fn upsert(&self, key: u64, value: V) {
        self.write_leaf(key, |keys, vals, idx| match idx {
            Ok(i) => vals[i] = value,
            Err(i) => {
                keys.insert(i, key);
                vals.insert(i, value);
            }
        });
    }

    /// Read-modify-write: `update` mutates in place; `init` seeds new keys.
    pub fn rmw<U, I>(&self, key: u64, update: U, init: I)
    where
        U: FnOnce(&mut V),
        I: FnOnce() -> V,
    {
        self.write_leaf(key, |keys, vals, idx| match idx {
            Ok(i) => update(&mut vals[i]),
            Err(i) => {
                keys.insert(i, key);
                vals.insert(i, init());
            }
        });
    }

    /// Lazy delete (no rebalancing). Returns true if present.
    pub fn delete(&self, key: u64) -> bool {
        let mut removed = false;
        self.write_leaf(key, |keys, vals, idx| {
            if let Ok(i) = idx {
                keys.remove(i);
                vals.remove(i);
                removed = true;
            }
        });
        removed
    }

    /// Descends with exclusive lock crabbing, splitting full nodes on the
    /// way down, and applies `f` to the target leaf.
    fn write_leaf<Fx>(&self, key: u64, f: Fx)
    where
        Fx: FnOnce(&mut Vec<u64>, &mut Vec<V>, Result<usize, usize>),
    {
        loop {
            // Root handling: if the root is full, grow the tree by a level
            // (needs the outer write lock — rare).
            {
                let root_guard = self.root.read();
                if root_guard.read().is_full() {
                    drop(root_guard);
                    let outer = self.root.write();
                    let mut g = outer.write();
                    if g.is_full() {
                        let (sep, right) = g.split();
                        let left_node = std::mem::replace(
                            &mut *g,
                            Node::Internal { keys: Vec::new(), children: Vec::new() },
                        );
                        *g = Node::Internal {
                            keys: vec![sep],
                            children: vec![
                                Arc::new(RwLock::new(left_node)),
                                Arc::new(RwLock::new(right)),
                            ],
                        };
                    }
                    continue; // restart descent
                }
            }

            let root = self.root.read().clone();
            // `parent` exists to keep the currently-locked node's Arc alive
            // across guard hand-offs (see the transmute note below).
            #[allow(unused_assignments)]
            let mut parent = root.clone();
            let mut parent_guard = root.write();
            loop {
                let child_ref = match &*parent_guard {
                    Node::Leaf { .. } => {
                        // parent IS the leaf (root-leaf case).
                        if let Node::Leaf { keys, vals } = &mut *parent_guard {
                            let idx = keys.binary_search(&key);
                            f(keys, vals, idx);
                            return;
                        }
                        unreachable!()
                    }
                    Node::Internal { keys, children } => {
                        children[Node::<V>::child_index(keys, key)].clone()
                    }
                };
                let mut child_guard = child_ref.write();
                if child_guard.is_full() {
                    // Split the child under the (still-held) parent lock.
                    let (sep, right) = child_guard.split();
                    if let Node::Internal { keys, children } = &mut *parent_guard {
                        let pos = keys.partition_point(|&k| k < sep);
                        keys.insert(pos, sep);
                        children.insert(pos + 1, Arc::new(RwLock::new(right)));
                    } else {
                        unreachable!("parent of a child is internal");
                    }
                    drop(child_guard);
                    // Re-choose the correct child after the split.
                    continue;
                }
                match &mut *child_guard {
                    Node::Leaf { keys, vals } => {
                        drop(parent_guard); // child is safe: release ancestor
                        let idx = keys.binary_search(&key);
                        f(keys, vals, idx);
                        return;
                    }
                    Node::Internal { .. } => {
                        // Crab: child is safe (not full), release the parent.
                        drop(parent_guard);
                        parent = child_ref.clone();
                        let _ = &parent;
                        parent_guard = unsafe {
                            // Move the guard's lifetime onto our owned Arc:
                            // `child_guard` borrows `child_ref`, which we
                            // keep alive in `parent`.
                            std::mem::transmute::<
                                parking_lot::RwLockWriteGuard<'_, Node<V>>,
                                parking_lot::RwLockWriteGuard<'_, Node<V>>,
                            >(child_guard)
                        };
                    }
                }
            }
        }
    }

    /// Ordered scan of `[from, to)`.
    pub fn range(&self, from: u64, to: u64) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        let root = self.root.read().clone();
        Self::range_walk(&root, from, to, &mut out);
        out
    }

    fn range_walk(node: &NodeRef<V>, from: u64, to: u64, out: &mut Vec<(u64, V)>) {
        let g = node.read();
        match &*g {
            Node::Leaf { keys, vals } => {
                let start = keys.partition_point(|&k| k < from);
                for i in start..keys.len() {
                    if keys[i] >= to {
                        break;
                    }
                    out.push((keys[i], vals[i].clone()));
                }
            }
            Node::Internal { keys, children } => {
                let first = Node::<V>::child_index(keys, from);
                let last = Node::<V>::child_index(keys, to.saturating_sub(1));
                let kids: Vec<NodeRef<V>> = children[first..=last].to_vec();
                drop(g);
                for c in kids {
                    Self::range_walk(&c, from, to, out);
                }
            }
        }
    }

    /// Total keys (test aid; locks the whole tree piecewise).
    pub fn len(&self) -> usize {
        self.range(0, u64::MAX).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn insert_get_delete() {
        let t: BTreeIndex<u64> = BTreeIndex::new();
        assert_eq!(t.get(5), None);
        t.upsert(5, 50);
        t.upsert(3, 30);
        t.upsert(9, 90);
        assert_eq!(t.get(5), Some(50));
        t.upsert(5, 55);
        assert_eq!(t.get(5), Some(55));
        assert!(t.delete(5));
        assert!(!t.delete(5));
        assert_eq!(t.get(5), None);
        assert_eq!(t.get(3), Some(30));
    }

    #[test]
    fn many_keys_force_splits() {
        let t: BTreeIndex<u64> = BTreeIndex::new();
        // Interleaved ascending/descending to exercise split paths.
        for i in 0..5_000u64 {
            t.upsert(i * 2, i);
            t.upsert(1_000_000 - i, i);
        }
        for i in 0..5_000u64 {
            assert_eq!(t.get(i * 2), Some(i), "key {}", i * 2);
            assert_eq!(t.get(1_000_000 - i), Some(i));
        }
        assert_eq!(t.get(999_999_999), None);
    }

    #[test]
    fn range_is_sorted_and_bounded() {
        let t: BTreeIndex<u64> = BTreeIndex::new();
        for k in (0..1000u64).rev() {
            t.upsert(k * 10, k);
        }
        let r = t.range(95, 305);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 260, 270, 280, 290, 300]);
        let all = t.range(0, u64::MAX);
        assert_eq!(all.len(), 1000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn rmw_counts_exactly_under_concurrency() {
        let t: Arc<BTreeIndex<u64>> = Arc::new(BTreeIndex::new());
        let threads = 8u64;
        let per = 10_000u64;
        let keys = 512u64;
        let barrier = Arc::new(Barrier::new(threads as usize));
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let t = t.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut rng = faster_util::XorShift64::new(i + 1);
                    for _ in 0..per {
                        t.rmw(rng.next_below(keys), |v| *v += 1, || 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = t.range(0, u64::MAX).iter().map(|(_, v)| *v).sum();
        assert_eq!(total, threads * per);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t: Arc<BTreeIndex<u64>> = Arc::new(BTreeIndex::new());
        for k in 0..10_000u64 {
            t.upsert(k, k);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let t = t.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = faster_util::XorShift64::new(i + 9);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = rng.next_below(10_000);
                    if i % 2 == 0 {
                        if let Some(v) = t.get(k) {
                            assert_eq!(v, k, "torn read for {k}");
                        }
                    } else {
                        t.upsert(k, k);
                    }
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
