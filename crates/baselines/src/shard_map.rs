//! Intel TBB `concurrent_hash_map` stand-in (§7.1 "a highly optimized pure
//! in-memory hash index" with in-place updates).
//!
//! Lock striping: `2^shard_bits` shards, each a `parking_lot::RwLock` over an
//! open-addressed-ish `HashMap`. Reads take shared locks; updates take the
//! shard's exclusive lock and update in place. This mirrors TBB's
//! per-bucket-lock design closely enough to reproduce its comparison
//! behavior: excellent uniform scalability, degradation under Zipfian skew
//! (hot shards serialize — Fig 8d / Fig 9a).

use parking_lot::RwLock;
use std::collections::HashMap;

/// A lock-striped concurrent hash map.
pub struct ShardMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    mask: u64,
}

impl<K, V> ShardMap<K, V>
where
    K: std::hash::Hash + Eq + Clone,
    V: Clone,
{
    /// Creates a map with `2^shard_bits` shards.
    pub fn new(shard_bits: u32) -> Self {
        let n = 1usize << shard_bits;
        Self {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    #[inline]
    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = faster_util::hash_bytes(&{
            use std::hash::Hasher;
            struct H(u64);
            impl Hasher for H {
                fn finish(&self) -> u64 {
                    self.0
                }
                fn write(&mut self, bytes: &[u8]) {
                    self.0 = faster_util::hash_bytes(bytes) ^ self.0.rotate_left(17);
                }
            }
            let mut h = H(0);
            key.hash(&mut h);
            h.finish().to_le_bytes()
        });
        &self.shards[(h & self.mask) as usize]
    }

    /// Point read.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).read().get(key).cloned()
    }

    /// Blind update / insert.
    pub fn upsert(&self, key: K, value: V) {
        self.shard(&key).write().insert(key, value);
    }

    /// Read-modify-write: `update` mutates in place; `init` seeds new keys.
    pub fn rmw<U, I>(&self, key: K, update: U, init: I)
    where
        U: FnOnce(&mut V),
        I: FnOnce() -> V,
    {
        let mut guard = self.shard(&key).write();
        match guard.get_mut(&key) {
            Some(v) => update(v),
            None => {
                guard.insert(key, init());
            }
        }
    }

    /// Removes a key; true if present.
    pub fn delete(&self, key: &K) -> bool {
        self.shard(key).write().remove(key).is_some()
    }

    /// Total entries (locks all shards briefly).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_ops() {
        let m: ShardMap<u64, u64> = ShardMap::new(4);
        assert_eq!(m.get(&1), None);
        m.upsert(1, 10);
        assert_eq!(m.get(&1), Some(10));
        m.rmw(1, |v| *v += 5, || 0);
        assert_eq!(m.get(&1), Some(15));
        m.rmw(2, |v| *v += 5, || 100);
        assert_eq!(m.get(&2), Some(100));
        assert!(m.delete(&1));
        assert!(!m.delete(&1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn concurrent_rmw_exact() {
        let m: Arc<ShardMap<u64, u64>> = Arc::new(ShardMap::new(6));
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    let mut rng = faster_util::XorShift64::new(t + 1);
                    for _ in 0..per {
                        let k = rng.next_below(64);
                        m.rmw(k, |v| *v += 1, || 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..64).filter_map(|k| m.get(&k)).sum();
        assert_eq!(total, threads * per);
    }
}
