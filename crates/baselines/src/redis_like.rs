//! Redis stand-in (§7.2.4): a single-threaded store behind command channels.
//!
//! The three properties the paper calls out: (1) not concurrent — one thread
//! owns the data; (2) accessed over a transport — clients round-trip
//! commands; (3) pipelining amortizes the transport. Channels stand in for
//! the loopback socket; `RedisClient::pipeline` reproduces the `-P` batching
//! of `redis-benchmark`.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;

enum Command {
    Get(u64, Sender<Option<u64>>),
    Set(u64, u64, Sender<()>),
    Incr(u64, u64, Sender<u64>),
    Del(u64, Sender<bool>),
    Shutdown,
}

/// The single-threaded server.
pub struct RedisLike {
    tx: Sender<Command>,
    worker: Option<JoinHandle<()>>,
}

impl RedisLike {
    pub fn start() -> Self {
        let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
        let worker = std::thread::Builder::new()
            .name("redis-like".into())
            .spawn(move || {
                let mut map: HashMap<u64, u64> = HashMap::new();
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Command::Get(k, reply) => {
                            let _ = reply.send(map.get(&k).copied());
                        }
                        Command::Set(k, v, reply) => {
                            map.insert(k, v);
                            let _ = reply.send(());
                        }
                        Command::Incr(k, by, reply) => {
                            let v = map.entry(k).or_insert(0);
                            *v = v.wrapping_add(by);
                            let _ = reply.send(*v);
                        }
                        Command::Del(k, reply) => {
                            let _ = reply.send(map.remove(&k).is_some());
                        }
                        Command::Shutdown => break,
                    }
                }
            })
            .expect("spawn server");
        Self { tx, worker: Some(worker) }
    }

    /// Connects a client.
    pub fn client(&self) -> RedisClient {
        RedisClient { tx: self.tx.clone() }
    }
}

impl Drop for RedisLike {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// A client connection, optionally pipelined.
#[derive(Clone)]
pub struct RedisClient {
    tx: Sender<Command>,
}

impl RedisClient {
    /// Round-trip GET.
    pub fn get(&self, key: u64) -> Option<u64> {
        let (rtx, rrx) = bounded(1);
        self.tx.send(Command::Get(key, rtx)).expect("server alive");
        rrx.recv().expect("reply")
    }

    /// Round-trip SET.
    pub fn set(&self, key: u64, value: u64) {
        let (rtx, rrx) = bounded(1);
        self.tx.send(Command::Set(key, value, rtx)).expect("server alive");
        rrx.recv().expect("reply")
    }

    /// Round-trip INCRBY.
    pub fn incr(&self, key: u64, by: u64) -> u64 {
        let (rtx, rrx) = bounded(1);
        self.tx.send(Command::Incr(key, by, rtx)).expect("server alive");
        rrx.recv().expect("reply")
    }

    /// Round-trip DEL.
    pub fn del(&self, key: u64) -> bool {
        let (rtx, rrx) = bounded(1);
        self.tx.send(Command::Del(key, rtx)).expect("server alive");
        rrx.recv().expect("reply")
    }

    /// Pipelined batch: issue `ops` commands before collecting any replies —
    /// the `-P ${PIPELINE}` of `redis-benchmark`. `true` in `sets[i]` means
    /// SET, else GET.
    pub fn pipeline(&self, keys: &[u64], sets: &[bool]) -> usize {
        assert_eq!(keys.len(), sets.len());
        let (rtx_set, rrx_set) = bounded(keys.len());
        let (rtx_get, rrx_get) = bounded(keys.len());
        let mut set_count = 0;
        for (i, &k) in keys.iter().enumerate() {
            if sets[i] {
                self.tx.send(Command::Set(k, k, rtx_set.clone())).expect("server alive");
                set_count += 1;
            } else {
                self.tx.send(Command::Get(k, rtx_get.clone())).expect("server alive");
            }
        }
        for _ in 0..set_count {
            rrx_set.recv().expect("reply");
        }
        let mut hits = 0;
        for _ in 0..(keys.len() - set_count) {
            if rrx_get.recv().expect("reply").is_some() {
                hits += 1;
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_commands() {
        let server = RedisLike::start();
        let c = server.client();
        assert_eq!(c.get(1), None);
        c.set(1, 10);
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.incr(1, 5), 15);
        assert_eq!(c.incr(2, 3), 3);
        assert!(c.del(1));
        assert!(!c.del(1));
    }

    #[test]
    fn many_clients_one_server() {
        let server = RedisLike::start();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = server.client();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.incr(99, 1);
                        let _ = c.get(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.client().get(99), Some(4000));
    }

    #[test]
    fn pipeline_batches() {
        let server = RedisLike::start();
        let c = server.client();
        let keys: Vec<u64> = (0..100).collect();
        let sets: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        c.pipeline(&keys, &sets);
        // All even keys were set; odd gets missed.
        let hits = c.pipeline(&keys, &[false; 100]);
        assert_eq!(hits, 50);
    }
}
