//! File-backed device using positioned reads/writes.
//!
//! This is the "point FASTER to a file on SSD" configuration of §7.1. I/O is
//! still asynchronous — requests are queued to the worker pool, which issues
//! `pread`/`pwrite` style positioned operations so concurrent requests never
//! contend on a shared cursor.

use crate::ring::{Sqe, SqeOp};
use crate::worker::IoPool;
use crate::{Device, DeviceStats, IoError, StatCells};
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

struct State {
    file: File,
    extent: AtomicU64,
    begin: AtomicU64,
    stats: StatCells,
}

/// An asynchronous device backed by a real file.
pub struct FileDevice {
    state: Arc<State>,
    pool: IoPool,
}

impl FileDevice {
    /// Creates (truncating) a file-backed device at `path`.
    pub fn create<P: AsRef<Path>>(path: P, io_threads: usize) -> std::io::Result<Arc<Self>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Arc::new(Self {
            state: Arc::new(State {
                file,
                extent: AtomicU64::new(0),
                begin: AtomicU64::new(0),
                stats: StatCells::default(),
            }),
            pool: IoPool::new(io_threads),
        }))
    }

    /// Opens an existing device file (recovery path).
    pub fn open<P: AsRef<Path>>(path: P, io_threads: usize) -> std::io::Result<Arc<Self>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Arc::new(Self {
            state: Arc::new(State {
                file,
                extent: AtomicU64::new(len),
                begin: AtomicU64::new(0),
                stats: StatCells::default(),
            }),
            pool: IoPool::new(io_threads),
        }))
    }
}

impl Device for FileDevice {
    fn submit(&self, sqe: Sqe) {
        let (op, completion) = sqe.into_parts();
        let state = self.state.clone();
        match op {
            SqeOp::Write { offset, data } => {
                state.stats.record_write(data.len());
                self.pool.submit(move || {
                    let res = state
                        .file
                        .write_all_at(&data, offset)
                        .map_err(|e| IoError::Failed(e.to_string()));
                    if res.is_ok() {
                        state.extent.fetch_max(offset + data.len() as u64, Ordering::SeqCst);
                    }
                    completion.complete(res.map(|()| Vec::new()));
                });
            }
            SqeOp::Read { offset, len } => {
                state.stats.record_read(len);
                self.pool.submit(move || {
                    if offset < state.begin.load(Ordering::SeqCst) {
                        completion.complete(Err(IoError::Truncated { offset }));
                        return;
                    }
                    if offset + len as u64 > state.extent.load(Ordering::SeqCst) {
                        completion.complete(Err(IoError::OutOfRange { offset, len }));
                        return;
                    }
                    let mut buf = vec![0u8; len];
                    let res = state
                        .file
                        .read_exact_at(&mut buf, offset)
                        .map(|()| buf)
                        .map_err(|e| IoError::Failed(e.to_string()));
                    completion.complete(res);
                });
            }
        }
    }

    fn flush_barrier(&self) -> Result<(), IoError> {
        self.pool.barrier();
        // A failed sync means previously acknowledged writes may not be on
        // stable storage; surface it so commit protocols refuse to ack.
        self.state.file.sync_data().map_err(|e| IoError::Failed(e.to_string()))
    }

    fn truncate_below(&self, offset: u64) {
        // Files cannot cheaply punch holes portably; we just refuse reads
        // below `begin` (the space-reclaim aspect is a device detail).
        self.state.begin.fetch_max(offset, Ordering::SeqCst);
    }

    fn stats(&self) -> DeviceStats {
        self.state.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("faster-storage-test-{}-{}", std::process::id(), name));
        p
    }

    fn write_blocking(d: &FileDevice, offset: u64, data: Vec<u8>) {
        let (tx, rx) = std::sync::mpsc::channel();
        d.write_async(offset, data, Box::new(move |r| tx.send(r).unwrap()));
        rx.recv().unwrap().unwrap();
    }

    fn read_blocking(d: &FileDevice, offset: u64, len: usize) -> Result<Vec<u8>, IoError> {
        let (tx, rx) = std::sync::mpsc::channel();
        d.read_async(offset, len, Box::new(move |r| tx.send(r).unwrap()));
        rx.recv().unwrap()
    }

    #[test]
    fn round_trip_and_reopen() {
        let path = tmp_path("round-trip");
        {
            let d = FileDevice::create(&path, 2).unwrap();
            write_blocking(&d, 0, b"hello world!".to_vec());
            write_blocking(&d, 4096, vec![0xAB; 512]);
            assert_eq!(read_blocking(&d, 0, 5).unwrap(), b"hello");
            d.flush_barrier().unwrap();
        }
        {
            let d = FileDevice::open(&path, 1).unwrap();
            assert_eq!(read_blocking(&d, 4096, 512).unwrap(), vec![0xAB; 512]);
            assert_eq!(read_blocking(&d, 6, 5).unwrap(), b"world");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bounds_and_truncate() {
        let path = tmp_path("bounds");
        let d = FileDevice::create(&path, 1).unwrap();
        write_blocking(&d, 0, vec![1; 1024]);
        assert!(matches!(read_blocking(&d, 1000, 100), Err(IoError::OutOfRange { .. })));
        d.truncate_below(512);
        assert!(matches!(read_blocking(&d, 0, 16), Err(IoError::Truncated { .. })));
        assert_eq!(read_blocking(&d, 512, 16).unwrap(), vec![1; 16]);
        std::fs::remove_file(&path).unwrap();
    }
}
