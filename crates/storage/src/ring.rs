//! Submission/completion ring: the io_uring-shaped device interface.
//!
//! The original device API was callback-per-op: every read carried a boxed
//! closure that an I/O worker invoked on completion, so a consumer waiting
//! for its I/O had to poll a side queue the callbacks fed. This module
//! replaces that contract with explicit submission queue entries ([`Sqe`])
//! and completion queue entries ([`Cqe`]):
//!
//! * the submitter builds SQEs (id + read/write op + completion route) and
//!   hands a batch to [`Device::submit_all`](crate::Device::submit_all) —
//!   one "doorbell" per batch, not one closure dispatch per op;
//! * the device services each SQE and publishes a [`Cqe`] into the
//!   submitter's [`CompletionRing`];
//! * the submitter reaps CQEs straight off the ring — a single atomic swap
//!   for the whole batch, no thread hop, no lock — and resumes the
//!   continuation keyed by the echoed id.
//!
//! The legacy callback API survives as a thin adapter: a callback-routed
//! SQE ([`Sqe::read_cb`] / [`Sqe::write_cb`]) invokes its boxed closure at
//! completion instead of publishing a CQE, which keeps every existing
//! `read_async`/`write_async` call site working unchanged while migrated
//! paths (the session pending-op machinery) go through the ring.
//!
//! ## Blocking reap
//!
//! [`CompletionRing::reap`] is the non-blocking grab-all (a Treiber-stack
//! swap, wait-free for the consumer). [`CompletionRing::wait_nonempty`]
//! parks the consumer on a condvar until a producer publishes, with a
//! bounded timeout so callers can keep epoch maintenance alive; the
//! producer side stays lock-free unless a sleeper is registered.

use crate::{IoError, ReadCallback, WriteCallback};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One completed operation: the submitter's id plus the result bytes
/// (empty for writes) or the error.
#[derive(Debug)]
pub struct Cqe {
    pub id: u64,
    pub result: Result<Vec<u8>, IoError>,
}

/// The operation half of an SQE.
#[derive(Debug)]
pub enum SqeOp {
    /// Read `len` bytes at byte `offset`.
    Read { offset: u64, len: usize },
    /// Write `data` at byte `offset`.
    Write { offset: u64, data: Vec<u8> },
}

/// Unified completion closure used by the legacy adapter route.
type IoCallback = Box<dyn FnOnce(Result<Vec<u8>, IoError>) + Send>;

enum Route {
    /// Publish a [`Cqe`] into the submitter's ring.
    Ring(Arc<CompletionRing>),
    /// Legacy adapter: invoke the boxed callback.
    Callback(IoCallback),
}

/// The completion half of an SQE: where (and under which id) the result
/// goes. Devices split an SQE with [`Sqe::into_parts`], perform the I/O,
/// and call [`SqeCompletion::complete`] exactly once.
pub struct SqeCompletion {
    id: u64,
    route: Route,
}

impl SqeCompletion {
    /// The submitter's id, echoed in the CQE.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True when the result is published to a [`CompletionRing`] (as
    /// opposed to a legacy callback). Devices may use this to pick a
    /// completion strategy (e.g. inline vs. worker-pool dispatch).
    pub fn is_ring(&self) -> bool {
        matches!(self.route, Route::Ring(_))
    }

    /// Delivers the result: pushes a CQE (ring route) or invokes the
    /// callback (adapter route). Consumes the completion — exactly-once.
    pub fn complete(self, result: Result<Vec<u8>, IoError>) {
        match self.route {
            Route::Ring(ring) => ring.push(Cqe { id: self.id, result }),
            Route::Callback(cb) => cb(result),
        }
    }
}

/// A submission queue entry: one asynchronous read or write plus its
/// completion route.
pub struct Sqe {
    op: SqeOp,
    completion: SqeCompletion,
}

impl Sqe {
    /// A ring-routed read: the CQE (echoing `id`) lands in `ring`.
    pub fn read(id: u64, offset: u64, len: usize, ring: &Arc<CompletionRing>) -> Self {
        Self {
            op: SqeOp::Read { offset, len },
            completion: SqeCompletion { id, route: Route::Ring(Arc::clone(ring)) },
        }
    }

    /// A ring-routed write: the CQE (empty bytes on success) lands in `ring`.
    pub fn write(id: u64, offset: u64, data: Vec<u8>, ring: &Arc<CompletionRing>) -> Self {
        Self {
            op: SqeOp::Write { offset, data },
            completion: SqeCompletion { id, route: Route::Ring(Arc::clone(ring)) },
        }
    }

    /// Legacy-adapter read: `cb` runs at completion (no CQE is published).
    pub fn read_cb(offset: u64, len: usize, cb: ReadCallback) -> Self {
        Self {
            op: SqeOp::Read { offset, len },
            completion: SqeCompletion { id: 0, route: Route::Callback(cb) },
        }
    }

    /// Legacy-adapter write: `cb` runs at completion (no CQE is published).
    pub fn write_cb(offset: u64, data: Vec<u8>, cb: WriteCallback) -> Self {
        Self {
            op: SqeOp::Write { offset, data },
            completion: SqeCompletion {
                id: 0,
                route: Route::Callback(Box::new(move |r| cb(r.map(|_| ())))),
            },
        }
    }

    /// The submitter's id (0 for legacy-adapter SQEs).
    pub fn id(&self) -> u64 {
        self.completion.id
    }

    /// The operation, for devices that inspect before splitting.
    pub fn op(&self) -> &SqeOp {
        &self.op
    }

    /// Splits into the op and its completion (device service path).
    pub fn into_parts(self) -> (SqeOp, SqeCompletion) {
        (self.op, self.completion)
    }

    /// Reassembles an SQE (wrapper devices forwarding to an inner device).
    pub fn from_parts(op: SqeOp, completion: SqeCompletion) -> Self {
        Self { op, completion }
    }
}

struct Node {
    cqe: Cqe,
    next: *mut Node,
}

/// Lock-free MPSC completion ring: producers (device workers, or the
/// submitter itself for synchronous completions) push CQEs; the owning
/// consumer reaps them all with one atomic swap. A condvar lets the
/// consumer block for the next completion without spinning.
pub struct CompletionRing {
    head: AtomicPtr<Node>,
    /// Sleeper count; producers skip the mutex entirely while it is zero.
    sleepers: AtomicUsize,
    gate: Mutex<()>,
    wake: Condvar,
    /// Optional external waker, run after every publish. Lets a consumer
    /// multiplex this ring with other event sources (e.g. socket readiness
    /// in a poll set): the waker typically writes a self-pipe byte so one
    /// park observes both CQEs and connection events. `has_waker` keeps the
    /// no-waker fast path to a single relaxed load.
    has_waker: AtomicBool,
    waker: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

// Raw node pointers hide the auto traits; CQEs only carry owned bytes.
unsafe impl Send for CompletionRing {}
unsafe impl Sync for CompletionRing {}

impl Default for CompletionRing {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionRing {
    pub fn new() -> Self {
        Self {
            head: AtomicPtr::new(ptr::null_mut()),
            sleepers: AtomicUsize::new(0),
            gate: Mutex::new(()),
            wake: Condvar::new(),
            has_waker: AtomicBool::new(false),
            waker: Mutex::new(None),
        }
    }

    /// Installs (or replaces) the external waker, invoked after every
    /// [`CompletionRing::push`]. The waker runs on the producer's thread and
    /// must be cheap and non-blocking (a self-pipe write, an eventfd poke).
    pub fn set_waker(&self, waker: impl Fn() + Send + Sync + 'static) {
        *self.waker.lock().unwrap() = Some(Box::new(waker));
        self.has_waker.store(true, Ordering::SeqCst);
    }

    /// Removes the external waker installed by [`CompletionRing::set_waker`].
    pub fn clear_waker(&self) {
        self.has_waker.store(false, Ordering::SeqCst);
        *self.waker.lock().unwrap() = None;
    }

    /// Publishes one CQE from any thread. Lock-free unless the consumer is
    /// parked, in which case the wake takes the (uncontended) gate mutex.
    pub fn push(&self, cqe: Cqe) {
        let node = Box::into_raw(Box::new(Node { cqe, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: `node` is unpublished — exclusively ours to mutate.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(
                head,
                node,
                Ordering::SeqCst, // publish the CQE; also order before the sleeper check
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => head = actual,
            }
        }
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the gate orders this wake after the sleeper's own
            // empty-check-then-wait, so the notify cannot be lost.
            let _g = self.gate.lock().unwrap();
            self.wake.notify_all();
        }
        if self.has_waker.load(Ordering::SeqCst) {
            if let Some(w) = self.waker.lock().unwrap().as_ref() {
                w();
            }
        }
    }

    /// True when no CQE is currently published.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::SeqCst).is_null()
    }

    /// Detaches every published CQE and appends them to `out` in submission
    /// (FIFO) order. Wait-free for the consumer: one swap, then private
    /// work. Returns how many were reaped.
    pub fn reap(&self, out: &mut Vec<Cqe>) -> usize {
        // Acquire pairs with the publishing CAS in `push`.
        let mut node = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        if node.is_null() {
            return 0;
        }
        // The detached list is newest-first; reverse in place.
        let mut reversed: *mut Node = ptr::null_mut();
        while !node.is_null() {
            // Safety: detached nodes are exclusively ours.
            let next = unsafe { (*node).next };
            unsafe { (*node).next = reversed };
            reversed = node;
            node = next;
        }
        let before = out.len();
        while !reversed.is_null() {
            // Safety: reclaiming a node we exclusively own.
            let boxed = unsafe { Box::from_raw(reversed) };
            reversed = boxed.next;
            out.push(boxed.cqe);
        }
        out.len() - before
    }

    /// Parks the caller until at least one CQE is published or `timeout`
    /// elapses. Returns true when the ring is (probably) non-empty. Never
    /// spins: the wait is a condvar park paired with producer-side wakes.
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        if !self.is_empty() {
            return true;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let guard = self.gate.lock().unwrap();
            // Re-check under the gate: a producer that published before we
            // registered must be observed here (its CAS is SeqCst-ordered
            // before its sleeper check).
            if self.is_empty() {
                let _ = self.wake.wait_timeout(guard, timeout).unwrap();
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        !self.is_empty()
    }
}

impl Drop for CompletionRing {
    fn drop(&mut self) {
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // Safety: sole owner during drop.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reap_preserves_fifo_per_producer() {
        let ring = CompletionRing::new();
        for i in 0..10 {
            ring.push(Cqe { id: i, result: Ok(Vec::new()) });
        }
        let mut out = Vec::new();
        assert_eq!(ring.reap(&mut out), 10);
        let ids: Vec<u64> = out.iter().map(|c| c.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert_eq!(ring.reap(&mut out), 0, "second reap finds nothing new");
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let ring = Arc::new(CompletionRing::new());
        let producers = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per {
                        ring.push(Cqe { id: p as u64 * per + i, result: Ok(Vec::new()) });
                    }
                })
            })
            .collect();
        let mut out = Vec::new();
        while out.len() < (producers as usize) * per as usize {
            ring.reap(&mut out);
        }
        for h in handles {
            h.join().unwrap();
        }
        ring.reap(&mut out);
        let mut ids: Vec<u64> = out.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..producers as u64 * per).collect::<Vec<_>>());
    }

    #[test]
    fn wait_nonempty_wakes_on_push() {
        let ring = Arc::new(CompletionRing::new());
        let r2 = Arc::clone(&ring);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r2.push(Cqe { id: 7, result: Ok(Vec::new()) });
        });
        // A generous timeout: the wake, not the timeout, should end the wait.
        let start = std::time::Instant::now();
        assert!(ring.wait_nonempty(Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_secs(4), "woken, not timed out");
        t.join().unwrap();
        let mut out = Vec::new();
        assert_eq!(ring.reap(&mut out), 1);
        assert_eq!(out[0].id, 7);
    }

    #[test]
    fn wait_nonempty_times_out_on_silence() {
        let ring = CompletionRing::new();
        let start = std::time::Instant::now();
        assert!(!ring.wait_nonempty(Duration::from_millis(10)));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn callback_routes_adapt_both_result_shapes() {
        let (tx, rx) = std::sync::mpsc::channel();
        let sqe = Sqe::write_cb(0, vec![1, 2, 3], Box::new(move |r| tx.send(r).unwrap()));
        assert_eq!(sqe.id(), 0);
        let (op, completion) = sqe.into_parts();
        assert!(matches!(op, SqeOp::Write { offset: 0, ref data } if data == &[1, 2, 3]));
        assert!(!completion.is_ring());
        completion.complete(Ok(Vec::new()));
        assert_eq!(rx.recv().unwrap(), Ok(()));

        let (tx, rx) = std::sync::mpsc::channel();
        let sqe = Sqe::read_cb(8, 4, Box::new(move |r| tx.send(r).unwrap()));
        let (_, completion) = sqe.into_parts();
        completion.complete(Err(IoError::Unsupported));
        assert_eq!(rx.recv().unwrap(), Err(IoError::Unsupported));
    }

    #[test]
    fn waker_fires_on_every_push_until_cleared() {
        let ring = CompletionRing::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&fired);
        ring.set_waker(move || {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        ring.push(Cqe { id: 1, result: Ok(Vec::new()) });
        ring.push(Cqe { id: 2, result: Ok(Vec::new()) });
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        ring.clear_waker();
        ring.push(Cqe { id: 3, result: Ok(Vec::new()) });
        assert_eq!(fired.load(Ordering::SeqCst), 2, "cleared waker must not fire");
        let mut out = Vec::new();
        assert_eq!(ring.reap(&mut out), 3, "waker is advisory; CQEs still flow");
    }

    #[test]
    fn drop_reclaims_unreaped_cqes() {
        let ring = CompletionRing::new();
        for i in 0..100 {
            ring.push(Cqe { id: i, result: Ok(vec![0u8; 16]) });
        }
        drop(ring); // leak checkers would flag lost nodes here
    }
}
