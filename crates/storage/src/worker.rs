//! Background I/O worker pool shared by the device implementations.
//!
//! Each device owns a small pool of OS threads draining a channel of queued
//! jobs. This mirrors the asynchronous I/O model the paper's log depends on:
//! a flush or record read is *queued*, the issuing FASTER thread keeps
//! processing operations, and the completion callback later moves the
//! operation's context onto the session's pending queue (§5.3).

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;

/// A pool of I/O worker threads with an in-flight counter that supports
/// barrier semantics.
pub(crate) struct IoPool {
    tx: Option<Sender<Job>>,
    in_flight: Arc<AtomicU64>,
    workers: Vec<JoinHandle<()>>,
}

impl IoPool {
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let in_flight = Arc::new(AtomicU64::new(0));
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("faster-io-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn I/O worker")
            })
            .collect();
        Self { tx: Some(tx), in_flight, workers }
    }

    /// Queues a job. The in-flight counter is decremented only after the job
    /// (including its completion callback) finishes.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let in_flight = self.in_flight.clone();
        let wrapped: Job = Box::new(move || {
            job();
            in_flight.fetch_sub(1, Ordering::SeqCst);
        });
        self.tx
            .as_ref()
            .expect("pool not shut down")
            .send(wrapped)
            .expect("I/O workers alive");
    }

    /// Spins until every submitted job has completed.
    pub fn barrier(&self) {
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        self.barrier();
        // Close the channel so workers exit their recv loop.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Sleeps for `d`, spinning for sub-100µs waits where OS sleep granularity
/// would distort the latency model.
pub(crate) fn precise_sleep(d: std::time::Duration) {
    if d.is_zero() {
        return;
    }
    if d < std::time::Duration::from_micros(100) {
        let end = std::time::Instant::now() + d;
        while std::time::Instant::now() < end {
            std::hint::spin_loop();
        }
    } else {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn jobs_run_and_barrier_waits() {
        let pool = IoPool::new(2);
        let count = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = count.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.barrier();
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let count = Arc::new(AtomicU32::new(0));
        {
            let pool = IoPool::new(4);
            for _ in 0..50 {
                let c = count.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop: barrier + join
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn precise_sleep_is_at_least_requested() {
        let d = std::time::Duration::from_micros(50);
        let start = std::time::Instant::now();
        precise_sleep(d);
        assert!(start.elapsed() >= d);
    }
}
