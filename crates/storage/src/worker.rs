//! Background I/O worker pool shared by the device implementations.
//!
//! Each device owns a small pool of OS threads draining a channel of queued
//! jobs. This mirrors the asynchronous I/O model the paper's log depends on:
//! a flush or record read is *queued*, the issuing FASTER thread keeps
//! processing operations, and the completion callback later moves the
//! operation's context onto the session's pending queue (§5.3).

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send>;

/// A pool of I/O worker threads with an in-flight counter that supports
/// barrier semantics.
pub(crate) struct IoPool {
    tx: Option<Sender<Job>>,
    in_flight: Arc<AtomicU64>,
    workers: Vec<JoinHandle<()>>,
}

impl IoPool {
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let in_flight = Arc::new(AtomicU64::new(0));
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("faster-io-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn I/O worker")
            })
            .collect();
        Self { tx: Some(tx), in_flight, workers }
    }

    /// Queues a job. The in-flight counter is decremented only after the job
    /// (including its completion callback) finishes.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let in_flight = self.in_flight.clone();
        let wrapped: Job = Box::new(move || {
            job();
            in_flight.fetch_sub(1, Ordering::SeqCst);
        });
        self.tx
            .as_ref()
            .expect("pool not shut down")
            .send(wrapped)
            .expect("I/O workers alive");
    }

    /// Spins until every submitted job has completed.
    pub fn barrier(&self) {
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        self.barrier();
        // Close the channel so workers exit their recv loop.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A deadline-ordered completion scheduler for [`MemDevice`]'s ring path.
///
/// The worker pool simulates latency by *occupying a worker* for the
/// duration (`precise_sleep` then execute), which caps concurrent delayed
/// operations at the pool width — io-depth 64 over 4 workers degenerates to
/// depth 4. Ring-routed reads instead execute at submission (the bytes are
/// copied immediately) and park their completion here; a single timer
/// thread publishes each CQE at its latency deadline, so any number of
/// simulated-latency operations overlap, exactly like a real NVMe queue.
///
/// Sub-100µs residual waits are spun (mirroring [`precise_sleep`]) so the
/// simulated 20µs NVMe latency is not distorted by OS timer granularity.
///
/// [`MemDevice`]: crate::MemDevice
pub(crate) struct DeadlineTimer {
    shared: Arc<TimerShared>,
    handle: Option<JoinHandle<()>>,
}

struct TimerShared {
    queue: Mutex<BinaryHeap<TimerEntry>>,
    wake: Condvar,
    /// Entries deferred but not yet completed (barrier support).
    pending: AtomicU64,
    /// Parks [`DeadlineTimer::barrier`] callers; the run loop takes this
    /// lock and notifies when the last deferred completion delivers.
    drained_lock: Mutex<()>,
    drained: Condvar,
    shutdown: AtomicBool,
}

struct TimerEntry {
    due: Instant,
    /// Tie-breaker preserving submission order among equal deadlines.
    seq: u64,
    completion: crate::ring::SqeCompletion,
    result: Result<Vec<u8>, crate::IoError>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // (then lowest seq) on top.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

impl DeadlineTimer {
    pub fn new() -> Self {
        let shared = Arc::new(TimerShared {
            queue: Mutex::new(BinaryHeap::new()),
            wake: Condvar::new(),
            pending: AtomicU64::new(0),
            drained_lock: Mutex::new(()),
            drained: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let s = shared.clone();
        let handle = std::thread::Builder::new()
            .name("faster-io-timer".into())
            .spawn(move || s.run())
            .expect("spawn I/O deadline timer");
        Self { shared, handle: Some(handle) }
    }

    /// Schedules `completion` to deliver `result` after `delay`.
    pub fn defer(
        &self,
        delay: std::time::Duration,
        completion: crate::ring::SqeCompletion,
        result: Result<Vec<u8>, crate::IoError>,
    ) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let entry = TimerEntry {
            due: Instant::now() + delay,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            completion,
            result,
        };
        let mut q = self.shared.queue.lock().unwrap();
        q.push(entry);
        drop(q);
        self.shared.wake.notify_one();
    }

    /// Parks until every deferred completion has been delivered. The run
    /// loop notifies `drained` when `pending` hits zero, so a barrier over
    /// a long deadline sleeps instead of burning a core.
    pub fn barrier(&self) {
        let mut g = self.shared.drained_lock.lock().unwrap();
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            g = self.shared.drained.wait(g).expect("timer drained lock poisoned");
        }
    }
}

impl Drop for DeadlineTimer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl TimerShared {
    fn run(&self) {
        loop {
            let mut due_now = Vec::new();
            let mut draining = false;
            {
                let mut q = self.queue.lock().unwrap();
                if self.shutdown.load(Ordering::SeqCst) {
                    // Orderly teardown: deliver everything immediately.
                    due_now.extend(q.drain());
                    draining = true;
                } else {
                    let now = Instant::now();
                    while q.peek().is_some_and(|e| e.due <= now) {
                        due_now.push(q.pop().expect("peeked"));
                    }
                    if due_now.is_empty() {
                        match q.peek().map(|e| e.due) {
                            Some(next) => {
                                let wait = next.saturating_duration_since(now);
                                if wait < std::time::Duration::from_micros(100) {
                                    // Short residual: spin (outside the lock)
                                    // for deadline precision.
                                    drop(q);
                                    precise_sleep(wait);
                                } else {
                                    let _ = self
                                        .wake
                                        .wait_timeout(q, wait)
                                        .expect("timer lock poisoned");
                                }
                            }
                            None => {
                                let _ = self
                                    .wake
                                    .wait_timeout(q, std::time::Duration::from_millis(50))
                                    .expect("timer lock poisoned");
                            }
                        }
                        continue;
                    }
                }
            }
            // Deadline order within the batch (heap drain is unordered).
            due_now.sort_by(|a, b| a.due.cmp(&b.due).then(a.seq.cmp(&b.seq)));
            for e in due_now {
                e.completion.complete(e.result);
                if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Take the barrier's lock before notifying so a waiter
                    // between its pending check and its wait can't miss us.
                    drop(self.drained_lock.lock().unwrap());
                    self.drained.notify_all();
                }
            }
            if draining {
                return;
            }
        }
    }
}

/// Sleeps for `d`, spinning for sub-100µs waits where OS sleep granularity
/// would distort the latency model.
pub(crate) fn precise_sleep(d: std::time::Duration) {
    if d.is_zero() {
        return;
    }
    if d < std::time::Duration::from_micros(100) {
        let end = std::time::Instant::now() + d;
        while std::time::Instant::now() < end {
            std::hint::spin_loop();
        }
    } else {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn jobs_run_and_barrier_waits() {
        let pool = IoPool::new(2);
        let count = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = count.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.barrier();
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let count = Arc::new(AtomicU32::new(0));
        {
            let pool = IoPool::new(4);
            for _ in 0..50 {
                let c = count.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop: barrier + join
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    /// This thread's accumulated CPU time (utime + stime) in clock ticks,
    /// from /proc — the ground truth for "did the barrier spin or park".
    #[cfg(target_os = "linux")]
    fn thread_cpu_ticks() -> u64 {
        let stat = std::fs::read_to_string("/proc/thread-self/stat").unwrap();
        // comm can contain spaces; fields resume after the closing paren.
        // utime/stime are stat fields 14/15, i.e. indices 11/12 past state.
        let rest = &stat[stat.rfind(')').unwrap() + 2..];
        let f: Vec<&str> = rest.split_whitespace().collect();
        f[11].parse::<u64>().unwrap() + f[12].parse::<u64>().unwrap()
    }

    /// Regression for the busy-wait barrier: waiting out a long deadline
    /// must park on the condvar, not burn a core on `yield_now`.
    #[test]
    #[cfg(target_os = "linux")]
    fn timer_barrier_parks_without_spinning() {
        let timer = DeadlineTimer::new();
        let delivered = Arc::new(AtomicU32::new(0));
        let d = delivered.clone();
        let (_op, completion) = crate::ring::Sqe::read_cb(
            0,
            0,
            Box::new(move |_| {
                d.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .into_parts();
        let wait = std::time::Duration::from_millis(600);
        timer.defer(wait, completion, Ok(Vec::new()));
        let wall = Instant::now();
        let cpu0 = thread_cpu_ticks();
        timer.barrier();
        let cpu = thread_cpu_ticks() - cpu0;
        assert!(wall.elapsed() >= wait - std::time::Duration::from_millis(10));
        assert_eq!(delivered.load(Ordering::SeqCst), 1);
        // Parked: ~0 ticks. The old spin burned the full 600 ms (~60 ticks
        // at 100 Hz). 20 ticks (~200 ms) leaves slack for scheduler noise.
        assert!(cpu <= 20, "barrier consumed {cpu} CPU ticks while waiting");
    }

    #[test]
    fn timer_barrier_with_nothing_pending_returns_immediately() {
        let timer = DeadlineTimer::new();
        let start = Instant::now();
        timer.barrier();
        assert!(start.elapsed() < std::time::Duration::from_millis(100));
    }

    #[test]
    fn precise_sleep_is_at_least_requested() {
        let d = std::time::Duration::from_micros(50);
        let start = std::time::Instant::now();
        precise_sleep(d);
        assert!(start.elapsed() >= d);
    }
}
