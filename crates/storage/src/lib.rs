//! # faster-storage
//!
//! The storage substrate under the FASTER log.
//!
//! The paper runs HybridLog over a FusionIO NVMe SSD accessed with unbuffered
//! asynchronous I/O (§5.1, §7.1). This crate reproduces that *interface* — a
//! fully asynchronous, sector-aligned block device with completion callbacks —
//! with three interchangeable implementations:
//!
//! * [`MemDevice`] — an in-RAM device serviced by background I/O worker
//!   threads with a configurable latency + bandwidth model. This is the
//!   default substrate for tests and benchmarks: it exercises exactly the
//!   same code paths as a real disk (async read contexts, pending queues,
//!   epoch-triggered flushes) while keeping experiments reproducible. It also
//!   supports fault injection for failure tests.
//! * [`FileDevice`] — a real file-backed device using positioned reads and
//!   writes, for runs against an actual filesystem.
//! * [`NullDevice`] — discards writes and fails reads; used to measure the
//!   in-memory ceiling of the log without storage costs.
//! * [`FaultDevice`] — wraps any of the above with a scripted fault plan
//!   (crash points, torn writes, dropped flushes, transient read faults)
//!   for the crash-consistency test framework.
//!
//! All devices report [`DeviceStats`] (bytes/ops in each direction), which the
//! benchmark harness uses to measure log growth rate (Fig 12a) and sequential
//! write bandwidth (§7.3).

mod fault;
mod file;
mod mem;
pub mod ring;
mod worker;

pub use fault::{FaultDevice, FaultDomain, ReadFaultRate, TornWrite};
pub use file::FileDevice;
pub use mem::MemDevice;
pub use ring::{CompletionRing, Cqe, Sqe, SqeCompletion, SqeOp};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors surfaced by asynchronous device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Read past the device's written extent.
    OutOfRange { offset: u64, len: usize },
    /// The region was truncated away by log garbage collection.
    Truncated { offset: u64 },
    /// Injected fault (tests) or underlying OS error.
    Failed(String),
    /// The bytes at `offset` failed checksum verification: the device
    /// returned data, but it is not what was written (torn write, bit rot,
    /// or a quarantined page whose contents were never persisted).
    Corrupt { offset: u64 },
    /// The device ran out of space; the write at `offset` was not persisted.
    Full { offset: u64 },
    /// Reads are unsupported on this device (e.g. [`NullDevice`]).
    Unsupported,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::OutOfRange { offset, len } => {
                write!(f, "read of {len} bytes at {offset} is out of range")
            }
            IoError::Truncated { offset } => write!(f, "offset {offset} was truncated away"),
            IoError::Failed(msg) => write!(f, "I/O failed: {msg}"),
            IoError::Corrupt { offset } => {
                write!(f, "data at offset {offset} failed checksum verification")
            }
            IoError::Full { offset } => write!(f, "device full: write at {offset} not persisted"),
            IoError::Unsupported => write!(f, "operation unsupported by this device"),
        }
    }
}

impl std::error::Error for IoError {}

/// Completion callback for a write.
pub type WriteCallback = Box<dyn FnOnce(Result<(), IoError>) + Send>;
/// Completion callback for a read, receiving the bytes on success.
pub type ReadCallback = Box<dyn FnOnce(Result<Vec<u8>, IoError>) + Send>;

/// Cumulative device counters.
///
/// These counters are how the bench harness derives the log growth rate
/// (MB/s written) that Fig 12a plots on its secondary axis, and the
/// sequential write bandwidth row of §7.3.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeviceStats {
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub writes: u64,
    pub reads: u64,
}

/// An asynchronous block device with a submission/completion-ring interface.
///
/// Offsets are byte offsets into a flat address space (the log's stable
/// region maps logical addresses directly to device offsets). The one
/// required I/O method is [`Device::submit`]: the device services the SQE
/// and delivers the result through the SQE's completion route — a CQE
/// published into the submitter's [`CompletionRing`], or (for the legacy
/// adapter route) a boxed callback. Either way, delivery happens on
/// whatever thread finished the I/O and must be short and non-blocking —
/// a ring push, or a callback that only moves a context onto a session's
/// pending queue.
///
/// [`Device::write_async`] / [`Device::read_async`] are retained as thin
/// adapters over `submit` (callback-routed SQEs), so pre-ring call sites
/// keep working unchanged during migration.
pub trait Device: Send + Sync + 'static {
    /// Sector size; write offsets and lengths should be multiples of this
    /// (the circular buffer allocates frames sector-aligned, §5.1).
    fn sector_size(&self) -> usize {
        512
    }

    /// Queues one submission queue entry. Exactly-once completion through
    /// the SQE's route, on success or failure.
    fn submit(&self, sqe: Sqe);

    /// Batched submission handoff: drains `sqes` into the device. The
    /// default forwards one by one; devices may override to amortize
    /// per-op costs (locks, doorbells) across the batch.
    fn submit_all(&self, sqes: &mut Vec<Sqe>) {
        for sqe in sqes.drain(..) {
            self.submit(sqe);
        }
    }

    /// Queues an asynchronous write of `data` at byte `offset`.
    /// Legacy adapter: equivalent to submitting a callback-routed SQE.
    fn write_async(&self, offset: u64, data: Vec<u8>, cb: WriteCallback) {
        self.submit(Sqe::write_cb(offset, data, cb));
    }

    /// Queues an asynchronous read of `len` bytes at byte `offset`.
    /// Legacy adapter: equivalent to submitting a callback-routed SQE.
    fn read_async(&self, offset: u64, len: usize, cb: ReadCallback) {
        self.submit(Sqe::read_cb(offset, len, cb));
    }

    /// Blocks until every operation queued before this call has completed
    /// *and is durable*, reporting any synchronization failure. Used by
    /// checkpointing, WAL group commit, and orderly shutdown. An `Err`
    /// means durability of previously acknowledged writes is unknown — a
    /// commit protocol must treat the barrier's group as not persisted and
    /// must never acknowledge it.
    fn flush_barrier(&self) -> Result<(), IoError>;

    /// Drops all data below `offset` (log GC / expiration, Appendix C).
    /// Subsequent reads below `offset` fail with [`IoError::Truncated`].
    fn truncate_below(&self, _offset: u64) {}

    /// Cumulative counters.
    fn stats(&self) -> DeviceStats;
}

/// Shared atomic counters behind [`DeviceStats`].
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    writes: AtomicU64,
    reads: AtomicU64,
}

impl StatCells {
    pub fn record_write(&self, bytes: usize) {
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
    }
    pub fn record_read(&self, bytes: usize) {
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
    }
    pub fn snapshot(&self) -> DeviceStats {
        DeviceStats {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
        }
    }
}

/// Latency/bandwidth model for [`MemDevice`], approximating an NVMe SSD.
///
/// Each operation is delayed by `fixed + bytes / bandwidth` before its
/// callback fires. [`LatencyModel::nvme`] models a fast NVMe drive (~20 µs,
/// 2 GB/s — the paper's device tops out at 2 GB/s sequential, §7.3). Use
/// [`LatencyModel::ZERO`] for pure functional tests.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Per-operation fixed latency.
    pub fixed: std::time::Duration,
    /// Sustained bandwidth in bytes/second (0 = infinite).
    pub bytes_per_sec: u64,
}

impl LatencyModel {
    /// No simulated delay at all.
    pub const ZERO: LatencyModel =
        LatencyModel { fixed: std::time::Duration::ZERO, bytes_per_sec: 0 };

    /// NVMe-ish defaults: 20 µs fixed, 2 GB/s.
    pub fn nvme() -> Self {
        Self { fixed: std::time::Duration::from_micros(20), bytes_per_sec: 2_000_000_000 }
    }

    /// Delay for an operation touching `bytes` bytes.
    pub fn delay_for(&self, bytes: usize) -> std::time::Duration {
        let bw = if self.bytes_per_sec == 0 {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_nanos(
                (bytes as u128 * 1_000_000_000 / self.bytes_per_sec as u128) as u64,
            )
        };
        self.fixed + bw
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::ZERO
    }
}

/// A device that discards writes and rejects reads.
///
/// Models the "infinitely fast disk" bound: the log's flush path runs (frames
/// are still retired through the epoch machinery) but storage costs nothing
/// and evicted data is unrecoverable.
#[derive(Debug, Default)]
pub struct NullDevice {
    stats: StatCells,
}

impl NullDevice {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

impl Device for NullDevice {
    fn submit(&self, sqe: Sqe) {
        let (op, completion) = sqe.into_parts();
        match op {
            SqeOp::Write { data, .. } => {
                self.stats.record_write(data.len());
                completion.complete(Ok(Vec::new()));
            }
            SqeOp::Read { .. } => completion.complete(Err(IoError::Unsupported)),
        }
    }

    fn flush_barrier(&self) -> Result<(), IoError> {
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_math() {
        let m = LatencyModel {
            fixed: std::time::Duration::from_micros(10),
            bytes_per_sec: 1_000_000,
        };
        // 1_000 bytes at 1 MB/s = 1 ms, plus 10 µs fixed.
        assert_eq!(m.delay_for(1000), std::time::Duration::from_micros(1010));
        assert_eq!(LatencyModel::ZERO.delay_for(1 << 20), std::time::Duration::ZERO);
    }

    #[test]
    fn null_device_counts_and_rejects() {
        let d = NullDevice::new();
        let (tx, rx) = std::sync::mpsc::channel();
        d.write_async(0, vec![0u8; 128], Box::new(move |r| tx.send(r).unwrap()));
        assert_eq!(rx.recv().unwrap(), Ok(()));
        let (tx, rx) = std::sync::mpsc::channel();
        d.read_async(0, 128, Box::new(move |r| tx.send(r.map(|_| ())).unwrap()));
        assert_eq!(rx.recv().unwrap(), Err(IoError::Unsupported));
        assert_eq!(d.stats().bytes_written, 128);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn io_error_display() {
        assert!(IoError::OutOfRange { offset: 5, len: 10 }.to_string().contains("out of range"));
        assert!(IoError::Truncated { offset: 9 }.to_string().contains("truncated"));
        assert!(IoError::Failed("boom".into()).to_string().contains("boom"));
        assert!(IoError::Corrupt { offset: 4096 }.to_string().contains("checksum"));
        assert!(IoError::Full { offset: 8192 }.to_string().contains("full"));
    }
}
