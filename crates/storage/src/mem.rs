//! In-memory simulated SSD.
//!
//! Data lives in fixed-size chunks behind an `RwLock`ed map; requests are
//! serviced asynchronously by an [`IoPool`](crate::worker::IoPool) applying a
//! [`LatencyModel`]. Fault injection (`fail_next_reads`) lets failure tests
//! exercise the pending-operation error path without a flaky filesystem.

use crate::ring::{Sqe, SqeOp};
use crate::worker::{precise_sleep, DeadlineTimer, IoPool};
use crate::{Device, DeviceStats, IoError, LatencyModel, StatCells};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Chunk granularity of the backing store. Chosen larger than any log page
/// so most writes touch one or two chunks.
const CHUNK_BITS: u32 = 20; // 1 MiB
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;

/// Shared backing state; I/O jobs hold an `Arc` to it, so the data can never
/// be freed out from under an in-flight request.
struct State {
    chunks: RwLock<HashMap<u64, Box<[u8]>>>,
    /// Exclusive upper bound of bytes ever written (reads beyond fail).
    extent: AtomicU64,
    /// Inclusive lower bound of valid data ([`Device::truncate_below`]).
    begin: AtomicU64,
    latency: LatencyModel,
    stats: StatCells,
    fail_next_reads: AtomicU32,
}

impl State {
    fn write_sync(&self, offset: u64, data: &[u8]) {
        let mut chunks = self.chunks.write();
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let chunk_idx = abs >> CHUNK_BITS;
            let within = (abs & (CHUNK_SIZE as u64 - 1)) as usize;
            let n = (CHUNK_SIZE - within).min(data.len() - pos);
            let chunk = chunks
                .entry(chunk_idx)
                .or_insert_with(|| vec![0u8; CHUNK_SIZE].into_boxed_slice());
            chunk[within..within + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
        self.extent.fetch_max(offset + data.len() as u64, Ordering::SeqCst);
    }

    /// One read attempt: injected-fault check, then the chunk-map copy.
    fn service_read(&self, offset: u64, len: usize) -> Result<Vec<u8>, IoError> {
        if self
            .fail_next_reads
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(IoError::Failed("injected read fault".into()));
        }
        self.read_sync(offset, len)
    }

    fn read_sync(&self, offset: u64, len: usize) -> Result<Vec<u8>, IoError> {
        if offset < self.begin.load(Ordering::SeqCst) {
            return Err(IoError::Truncated { offset });
        }
        if offset + len as u64 > self.extent.load(Ordering::SeqCst) {
            return Err(IoError::OutOfRange { offset, len });
        }
        let chunks = self.chunks.read();
        let mut out = vec![0u8; len];
        let mut pos = 0usize;
        while pos < len {
            let abs = offset + pos as u64;
            let chunk_idx = abs >> CHUNK_BITS;
            let within = (abs & (CHUNK_SIZE as u64 - 1)) as usize;
            let n = (CHUNK_SIZE - within).min(len - pos);
            match chunks.get(&chunk_idx) {
                Some(chunk) => out[pos..pos + n].copy_from_slice(&chunk[within..within + n]),
                None => { /* never-written hole reads as zeros */ }
            }
            pos += n;
        }
        Ok(out)
    }
}

/// An in-memory asynchronous block device with a latency model.
pub struct MemDevice {
    state: Arc<State>,
    pool: IoPool,
    /// Deadline scheduler for ring-routed reads under a non-zero latency
    /// model: the read executes at submission and its CQE is published at
    /// the latency deadline, so in-flight depth is unbounded by the worker
    /// pool width (`None` for zero-latency devices — those complete inline).
    timer: Option<DeadlineTimer>,
}

impl MemDevice {
    /// A zero-latency device with `io_threads` background workers.
    pub fn new(io_threads: usize) -> Arc<Self> {
        Self::with_latency(io_threads, LatencyModel::ZERO)
    }

    /// A device whose completions are delayed per `latency`.
    pub fn with_latency(io_threads: usize, latency: LatencyModel) -> Arc<Self> {
        let timed = !latency.fixed.is_zero() || latency.bytes_per_sec > 0;
        Arc::new(Self {
            state: Arc::new(State {
                chunks: RwLock::new(HashMap::new()),
                extent: AtomicU64::new(0),
                begin: AtomicU64::new(0),
                latency,
                stats: StatCells::default(),
                fail_next_reads: AtomicU32::new(0),
            }),
            pool: IoPool::new(io_threads),
            timer: timed.then(DeadlineTimer::new),
        })
    }

    /// Injects failures into the next `n` reads (tests only).
    pub fn fail_next_reads(&self, n: u32) {
        self.state.fail_next_reads.store(n, Ordering::SeqCst);
    }

    /// Bytes currently retained (for memory accounting in benches).
    pub fn resident_bytes(&self) -> u64 {
        (self.state.chunks.read().len() * CHUNK_SIZE) as u64
    }
}

impl Device for MemDevice {
    fn submit(&self, sqe: Sqe) {
        let (op, completion) = sqe.into_parts();
        match op {
            SqeOp::Write { offset, data } => {
                self.state.stats.record_write(data.len());
                let delay = self.state.latency.delay_for(data.len());
                let state = self.state.clone();
                self.pool.submit(move || {
                    precise_sleep(delay);
                    state.write_sync(offset, &data);
                    completion.complete(Ok(Vec::new()));
                });
            }
            SqeOp::Read { offset, len } => {
                self.state.stats.record_read(len);
                let delay = self.state.latency.delay_for(len);
                if completion.is_ring() {
                    // Ring path: execute now (log reads target immutable
                    // flushed bytes), publish the CQE at the latency
                    // deadline — overlap is unbounded by pool width.
                    let res = self.state.service_read(offset, len);
                    match &self.timer {
                        Some(t) if !delay.is_zero() => t.defer(delay, completion, res),
                        _ => completion.complete(res),
                    }
                } else {
                    // Callback route: preserve the worker-pool dispatch, so
                    // legacy completions keep running on I/O threads (the
                    // flush machinery depends on that execution context).
                    let state = self.state.clone();
                    self.pool.submit(move || {
                        precise_sleep(delay);
                        completion.complete(state.service_read(offset, len));
                    });
                }
            }
        }
    }

    fn flush_barrier(&self) -> Result<(), IoError> {
        self.pool.barrier();
        if let Some(t) = &self.timer {
            t.barrier();
        }
        Ok(())
    }

    fn truncate_below(&self, offset: u64) {
        self.state.begin.fetch_max(offset, Ordering::SeqCst);
        // Drop whole chunks strictly below the new begin.
        let cutoff_chunk = offset >> CHUNK_BITS;
        self.state.chunks.write().retain(|&idx, _| idx >= cutoff_chunk);
    }

    fn stats(&self) -> DeviceStats {
        self.state.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_blocking(d: &MemDevice, offset: u64, data: Vec<u8>) {
        let (tx, rx) = std::sync::mpsc::channel();
        d.write_async(offset, data, Box::new(move |r| tx.send(r).unwrap()));
        rx.recv().unwrap().unwrap();
    }

    fn read_blocking(d: &MemDevice, offset: u64, len: usize) -> Result<Vec<u8>, IoError> {
        let (tx, rx) = std::sync::mpsc::channel();
        d.read_async(offset, len, Box::new(move |r| tx.send(r).unwrap()));
        rx.recv().unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let d = MemDevice::new(2);
        let data: Vec<u8> = (0..=255).collect();
        write_blocking(&d, 0, data.clone());
        assert_eq!(read_blocking(&d, 0, 256).unwrap(), data);
        assert_eq!(read_blocking(&d, 10, 5).unwrap(), &data[10..15]);
    }

    #[test]
    fn cross_chunk_write_read() {
        let d = MemDevice::new(1);
        let offset = (CHUNK_SIZE - 100) as u64;
        let data: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        write_blocking(&d, offset, data.clone());
        assert_eq!(read_blocking(&d, offset, 200).unwrap(), data);
    }

    #[test]
    fn out_of_range_read_fails() {
        let d = MemDevice::new(1);
        write_blocking(&d, 0, vec![1; 64]);
        assert_eq!(
            read_blocking(&d, 32, 64),
            Err(IoError::OutOfRange { offset: 32, len: 64 })
        );
    }

    #[test]
    fn truncation_invalidates_prefix() {
        let d = MemDevice::new(1);
        write_blocking(&d, 0, vec![7; 4096]);
        d.truncate_below(2048);
        assert_eq!(read_blocking(&d, 0, 16), Err(IoError::Truncated { offset: 0 }));
        assert_eq!(read_blocking(&d, 2048, 16).unwrap(), vec![7; 16]);
    }

    #[test]
    fn fault_injection() {
        let d = MemDevice::new(1);
        write_blocking(&d, 0, vec![9; 64]);
        d.fail_next_reads(2);
        assert!(matches!(read_blocking(&d, 0, 8), Err(IoError::Failed(_))));
        assert!(matches!(read_blocking(&d, 0, 8), Err(IoError::Failed(_))));
        assert_eq!(read_blocking(&d, 0, 8).unwrap(), vec![9; 8]);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let d = MemDevice::new(4);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..64u64 {
                    let off = t * 1_000_000 + i * 512;
                    write_blocking(&d, off, vec![t as u8; 512]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            assert_eq!(read_blocking(&d, t * 1_000_000, 512).unwrap(), vec![t as u8; 512]);
        }
    }

    #[test]
    fn latency_is_applied() {
        let d = MemDevice::with_latency(
            1,
            LatencyModel { fixed: std::time::Duration::from_millis(5), bytes_per_sec: 0 },
        );
        let start = std::time::Instant::now();
        write_blocking(&d, 0, vec![0; 8]);
        assert!(start.elapsed() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn stats_accumulate() {
        let d = MemDevice::new(1);
        write_blocking(&d, 0, vec![0; 100]);
        write_blocking(&d, 100, vec![0; 50]);
        let _ = read_blocking(&d, 0, 30);
        let s = d.stats();
        assert_eq!(s.bytes_written, 150);
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes_read, 30);
        assert_eq!(s.reads, 1);
    }
}
