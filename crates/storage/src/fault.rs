//! Fault-injection device for crash-consistency testing.
//!
//! [`FaultDevice`] wraps any [`Device`] with a *scripted fault plan*: crash
//! points indexed by write sequence number, torn (prefix-persisted) page
//! writes, acknowledged-but-dropped flushes, and transient read failures —
//! the failure modes a real SSD exhibits at power loss (§5.3's async I/O
//! stack meets an unplugged machine).
//!
//! ## Persistence model
//!
//! The model is **prefix-persisted at write granularity**: every write the
//! device accepted before the crash point survives in full, the crash-point
//! write itself survives only a leading prefix (possibly empty — see
//! [`TornWrite`]), and nothing after the crash point survives at all. After
//! the crash the device refuses every further write, read, and barrier with
//! [`IoError::Failed`], exactly like a controller that dropped off the bus.
//! The wrapped inner device therefore holds, at all times, *exactly* the
//! byte image a post-crash recovery would find on disk — recover from it
//! directly.
//!
//! Dropped flushes ([`FaultDevice::drop_write_at`]) model a volatile write
//! cache that lies: the write is acknowledged `Ok` to the caller but never
//! reaches the inner device. Transient read faults model bus resets / ECC
//! hiccups: the scripted read attempt fails with [`IoError::Failed`], while
//! a retry (a later read sequence number) succeeds. Transient **write**
//! faults ([`FaultDevice::fail_write_at`] / [`FaultDevice::fail_next_writes`]
//! / [`FaultDevice::set_write_fault_rate`]) are the write-side mirror: the
//! scripted write fails with [`IoError::Failed`] and persists nothing, but
//! the device stays alive and a resubmission (a later write sequence
//! number) succeeds — the `EIO`-then-fine behavior the flush-retry path
//! must survive. A scripted capacity limit
//! ([`FaultDevice::set_full_after_bytes`]) fails every write that would
//! push the forwarded byte total past the limit with [`IoError::Full`]
//! (permanent until the limit is raised), modelling a disk running out of
//! space mid-flush.
//!
//! Every decision is keyed on a monotone sequence number (writes, reads,
//! and flush barriers counted separately, in submission order), so a fault
//! schedule is a pure value: seed + crash point fully determine which bytes
//! survive, which is what lets the recovery test framework sweep crash
//! points and replay any failure.
//!
//! ## Fault domains
//!
//! A power failure takes down every device in the machine at once. When a
//! store spreads its bytes over more than one device (the HybridLog file
//! plus the checkpoint manifest/blob file), wrap each in a [`FaultDevice`]
//! sharing one [`FaultDomain`]: the domain owns a single write/read/flush
//! sequence space and a single crashed flag, so "crash at the k-th write"
//! sweeps the *interleaved* write stream of all member devices, and the
//! crash halts all of them together. [`FaultDevice::wrap`] creates a
//! private single-device domain, which preserves the original behavior.
//!
//! Crashes can also be armed on **flush boundaries**
//! ([`FaultDomain::arm_crash_at_flush`]): the k-th `flush_barrier` from now
//! marks the domain crashed — every write acknowledged before it persists,
//! every operation after it is refused — modelling power loss at the exact
//! fsync edge of a commit protocol. A crash-point barrier reports `Err`:
//! the sync never completed, so a commit protocol waiting on it must not
//! acknowledge its group.
//!
//! Barriers can additionally *fail without crashing*
//! ([`FaultDomain::fail_flush_at`]): the scripted `flush_barrier` returns
//! `Err` while the device stays alive — modelling a transient fsync error
//! (EIO from a full journal, a controller reset). Commit protocols must
//! treat such a barrier exactly like a crash for acking purposes: the
//! group's durability is unknown, so it must never be acknowledged.

use crate::ring::{Sqe, SqeOp};
use crate::{Device, DeviceStats, IoError, StatCells};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How much of the crash-point write survives (the prefix-persisted model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TornWrite {
    /// The crash-point write persists nothing: the crash hit just before
    /// the controller touched the medium.
    #[default]
    Nothing,
    /// The crash-point write persists exactly `min(n, len)` leading bytes —
    /// byte-granular tearing, harsher than real sector-atomic hardware.
    Bytes(usize),
    /// The crash-point write persists a whole number of leading sectors,
    /// chosen deterministically from `seed` and the write sequence number
    /// (any count in `0..=sectors` is possible). This is the realistic
    /// sector-atomic torn-write model.
    SeededSectors { seed: u64 },
}

/// Deterministic transient read-fault schedule: read sequence number `rsn`
/// fails iff `mix(seed, rsn) % den < num`. Retries draw fresh sequence
/// numbers, so a retried read eventually succeeds with probability 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFaultRate {
    pub seed: u64,
    pub num: u32,
    pub den: u32,
}

impl ReadFaultRate {
    fn hits(&self, rsn: u64) -> bool {
        debug_assert!(self.den > 0);
        let mixed = faster_util::hash_u64(self.seed ^ rsn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        mixed % (self.den as u64) < self.num as u64
    }
}

/// The scripted fault plan. Sequence numbers are absolute (0-based, counted
/// from domain creation, in submission order).
#[derive(Debug, Default)]
struct FaultPlan {
    /// Write sequence number at which the domain crashes.
    crash_at_write: Option<u64>,
    /// Flush-barrier sequence number at which the domain crashes.
    crash_at_flush: Option<u64>,
    /// Surviving prefix of the crash-point write.
    torn: TornWrite,
    /// Writes acknowledged `Ok` but never persisted.
    drop_writes: HashSet<u64>,
    /// Individual reads that fail transiently.
    fail_reads: HashSet<u64>,
    /// Seeded transient read-fault rate.
    read_fault: Option<ReadFaultRate>,
    /// Unconditionally fail this many upcoming reads (parity with
    /// `MemDevice::fail_next_reads`).
    fail_next_reads: u32,
    /// Flush barriers that fail (return `Err`) without crashing the domain.
    fail_flushes: HashSet<u64>,
    /// Individual writes that fail transiently (error-returning, non-crash,
    /// nothing persisted).
    fail_writes: HashSet<u64>,
    /// Unconditionally fail this many upcoming writes (transient).
    fail_next_writes: u32,
    /// Seeded transient write-fault rate (same schedule math as reads,
    /// keyed on the write sequence number).
    write_fault: Option<ReadFaultRate>,
    /// Capacity limit: a write that would push the forwarded byte total
    /// past this fails with [`IoError::Full`].
    full_after_bytes: Option<u64>,
}

enum WriteDecision {
    Forward,
    /// Acknowledge `Ok` without persisting.
    AckDrop,
    /// Persist a prefix of this many bytes, then crash.
    Crash(usize),
    /// Fail with this error without persisting; the device stays alive.
    Fail(IoError),
    /// Already crashed: refuse.
    Refuse,
}

/// Shared crash state: one plan, one sequence space, one crashed flag for
/// every [`FaultDevice`] wrapped in it (see module docs, "Fault domains").
/// Cheap to clone.
#[derive(Clone)]
pub struct FaultDomain {
    state: Arc<DomainState>,
}

struct DomainState {
    plan: Mutex<FaultPlan>,
    wsn: AtomicU64,
    rsn: AtomicU64,
    fsn: AtomicU64,
    crashed: AtomicBool,
    /// Bytes forwarded to inner devices (the capacity-limit accumulator;
    /// dropped and failed writes don't count — they never hit the medium).
    bytes_forwarded: AtomicU64,
}

impl Default for FaultDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultDomain {
    /// A fresh domain with an empty (fault-free) plan.
    pub fn new() -> Self {
        Self {
            state: Arc::new(DomainState {
                plan: Mutex::new(FaultPlan::default()),
                wsn: AtomicU64::new(0),
                rsn: AtomicU64::new(0),
                fsn: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
                bytes_forwarded: AtomicU64::new(0),
            }),
        }
    }

    /// Arms a crash at the `after`-th write *from now* (0 = the very next
    /// write, counted across every device in the domain), tearing that
    /// write per `torn`.
    pub fn arm_crash(&self, after: u64, torn: TornWrite) {
        let mut plan = self.state.plan.lock();
        plan.crash_at_write = Some(self.state.wsn.load(Ordering::SeqCst) + after);
        plan.torn = torn;
    }

    /// Arms a crash at the `after`-th flush barrier *from now* (0 = the
    /// very next barrier). Every write acknowledged before that barrier
    /// persists in full; the barrier itself and everything after is lost.
    pub fn arm_crash_at_flush(&self, after: u64) {
        self.state.plan.lock().crash_at_flush =
            Some(self.state.fsn.load(Ordering::SeqCst) + after);
    }

    /// Scripts the write `after` submissions from now to be acknowledged
    /// `Ok` but silently dropped (volatile-cache lie).
    pub fn drop_write_at(&self, after: u64) {
        self.state.plan.lock().drop_writes.insert(self.state.wsn.load(Ordering::SeqCst) + after);
    }

    /// Scripts the read `after` submissions from now to fail transiently.
    pub fn fail_read_at(&self, after: u64) {
        self.state.plan.lock().fail_reads.insert(self.state.rsn.load(Ordering::SeqCst) + after);
    }

    /// Scripts the flush barrier `after` barriers from now (0 = the very
    /// next one) to return `Err` without crashing the domain — a transient
    /// fsync failure. The barrier's group must never be acknowledged.
    pub fn fail_flush_at(&self, after: u64) {
        self.state.plan.lock().fail_flushes.insert(self.state.fsn.load(Ordering::SeqCst) + after);
    }

    /// Fails the next `n` reads unconditionally (transient).
    pub fn fail_next_reads(&self, n: u32) {
        self.state.plan.lock().fail_next_reads = n;
    }

    /// Installs (or clears) a seeded transient read-fault rate.
    pub fn set_read_fault_rate(&self, rate: Option<ReadFaultRate>) {
        self.state.plan.lock().read_fault = rate;
    }

    /// Scripts the write `after` submissions from now to fail transiently
    /// (error returned, nothing persisted, device stays alive).
    pub fn fail_write_at(&self, after: u64) {
        self.state.plan.lock().fail_writes.insert(self.state.wsn.load(Ordering::SeqCst) + after);
    }

    /// Fails the next `n` writes unconditionally (transient).
    pub fn fail_next_writes(&self, n: u32) {
        self.state.plan.lock().fail_next_writes = n;
    }

    /// Installs (or clears) a seeded transient write-fault rate (the same
    /// schedule math as [`ReadFaultRate`], keyed on write sequence numbers).
    pub fn set_write_fault_rate(&self, rate: Option<ReadFaultRate>) {
        self.state.plan.lock().write_fault = rate;
    }

    /// Scripts the device to run out of space after `n` more forwarded
    /// bytes: a write that would push the forwarded byte total past the
    /// limit fails with [`IoError::Full`]. `None` clears the limit.
    pub fn set_full_after_bytes(&self, n: Option<u64>) {
        let mut plan = self.state.plan.lock();
        plan.full_after_bytes =
            n.map(|n| self.state.bytes_forwarded.load(Ordering::SeqCst).saturating_add(n));
    }

    /// True once a crash point has been hit.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    /// Writes submitted so far across the domain.
    pub fn writes_issued(&self) -> u64 {
        self.state.wsn.load(Ordering::SeqCst)
    }

    /// Reads submitted so far across the domain.
    pub fn reads_issued(&self) -> u64 {
        self.state.rsn.load(Ordering::SeqCst)
    }

    /// Flush barriers issued so far across the domain.
    pub fn flushes_issued(&self) -> u64 {
        self.state.fsn.load(Ordering::SeqCst)
    }

    fn decide_write(&self, wsn: u64, offset: u64, len: usize, sector: usize) -> WriteDecision {
        if self.crashed() {
            return WriteDecision::Refuse;
        }
        let mut plan = self.state.plan.lock();
        match plan.crash_at_write {
            Some(c) if wsn > c => return WriteDecision::Refuse,
            Some(c) if wsn == c => {
                let keep = match plan.torn {
                    TornWrite::Nothing => 0,
                    TornWrite::Bytes(n) => n.min(len),
                    TornWrite::SeededSectors { seed } => {
                        let sector = sector.max(1);
                        let sectors = (len / sector) as u64;
                        let kept = faster_util::hash_u64(seed ^ wsn) % (sectors + 1);
                        (kept as usize) * sector
                    }
                };
                return WriteDecision::Crash(keep);
            }
            _ => {}
        }
        if plan.fail_next_writes > 0 {
            plan.fail_next_writes -= 1;
            return WriteDecision::Fail(IoError::Failed("injected transient write fault".into()));
        }
        if plan.fail_writes.remove(&wsn) {
            return WriteDecision::Fail(IoError::Failed("scripted transient write fault".into()));
        }
        if let Some(rate) = plan.write_fault {
            if rate.hits(wsn) {
                return WriteDecision::Fail(IoError::Failed("seeded transient write fault".into()));
            }
        }
        if let Some(limit) = plan.full_after_bytes {
            if self.state.bytes_forwarded.load(Ordering::SeqCst) + len as u64 > limit {
                return WriteDecision::Fail(IoError::Full { offset });
            }
        }
        if plan.drop_writes.remove(&wsn) {
            WriteDecision::AckDrop
        } else {
            self.state.bytes_forwarded.fetch_add(len as u64, Ordering::SeqCst);
            WriteDecision::Forward
        }
    }

    fn decide_read_fault(&self, rsn: u64) -> Option<IoError> {
        if self.crashed() {
            return Some(IoError::Failed("device crashed".into()));
        }
        let mut plan = self.state.plan.lock();
        if plan.fail_next_reads > 0 {
            plan.fail_next_reads -= 1;
            return Some(IoError::Failed("injected transient read fault".into()));
        }
        if plan.fail_reads.remove(&rsn) {
            return Some(IoError::Failed("scripted transient read fault".into()));
        }
        if let Some(rate) = plan.read_fault {
            if rate.hits(rsn) {
                return Some(IoError::Failed("seeded transient read fault".into()));
            }
        }
        None
    }

    /// True when the scripted transient failure for this barrier fires
    /// (one-shot: the script entry is consumed).
    fn take_flush_failure(&self, fsn: u64) -> bool {
        self.state.plan.lock().fail_flushes.remove(&fsn)
    }

    /// True when this flush barrier is the crash point (marks the domain
    /// crashed as a side effect).
    fn decide_flush_crash(&self, fsn: u64) -> bool {
        if self.crashed() {
            return true;
        }
        let plan = self.state.plan.lock();
        match plan.crash_at_flush {
            Some(c) if fsn >= c => {
                self.state.crashed.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }
}

/// A [`Device`] wrapper that injects scripted faults. See module docs for
/// the persistence model.
pub struct FaultDevice {
    inner: Arc<dyn Device>,
    domain: FaultDomain,
    stats: StatCells,
}

impl FaultDevice {
    /// Wraps `inner` with an empty (fault-free) plan in its own private
    /// fault domain.
    pub fn wrap(inner: Arc<dyn Device>) -> Arc<Self> {
        Self::wrap_in_domain(inner, &FaultDomain::new())
    }

    /// Wraps `inner` as a member of `domain`: it shares the domain's
    /// sequence space and crashes together with every other member.
    pub fn wrap_in_domain(inner: Arc<dyn Device>, domain: &FaultDomain) -> Arc<Self> {
        Arc::new(Self { inner, domain: domain.clone(), stats: StatCells::default() })
    }

    /// The wrapped device: after a crash it holds exactly the surviving
    /// byte image — recover from it directly.
    pub fn inner(&self) -> Arc<dyn Device> {
        self.inner.clone()
    }

    /// The fault domain this device belongs to.
    pub fn domain(&self) -> FaultDomain {
        self.domain.clone()
    }

    /// Arms a crash at the `after`-th write *from now* (0 = the very next
    /// write), tearing that write per `torn`.
    pub fn arm_crash(&self, after: u64, torn: TornWrite) {
        self.domain.arm_crash(after, torn);
    }

    /// Arms a crash at the `after`-th flush barrier *from now*.
    pub fn arm_crash_at_flush(&self, after: u64) {
        self.domain.arm_crash_at_flush(after);
    }

    /// Scripts the write `after` submissions from now to be acknowledged
    /// `Ok` but silently dropped (volatile-cache lie).
    pub fn drop_write_at(&self, after: u64) {
        self.domain.drop_write_at(after);
    }

    /// Scripts the read `after` submissions from now to fail transiently.
    pub fn fail_read_at(&self, after: u64) {
        self.domain.fail_read_at(after);
    }

    /// Scripts the flush barrier `after` barriers from now to fail
    /// transiently (Err, no crash).
    pub fn fail_flush_at(&self, after: u64) {
        self.domain.fail_flush_at(after);
    }

    /// Fails the next `n` reads unconditionally (transient).
    pub fn fail_next_reads(&self, n: u32) {
        self.domain.fail_next_reads(n);
    }

    /// Installs (or clears) a seeded transient read-fault rate.
    pub fn set_read_fault_rate(&self, rate: Option<ReadFaultRate>) {
        self.domain.set_read_fault_rate(rate);
    }

    /// Scripts the write `after` submissions from now to fail transiently
    /// (error returned, nothing persisted, device stays alive).
    pub fn fail_write_at(&self, after: u64) {
        self.domain.fail_write_at(after);
    }

    /// Fails the next `n` writes unconditionally (transient).
    pub fn fail_next_writes(&self, n: u32) {
        self.domain.fail_next_writes(n);
    }

    /// Installs (or clears) a seeded transient write-fault rate.
    pub fn set_write_fault_rate(&self, rate: Option<ReadFaultRate>) {
        self.domain.set_write_fault_rate(rate);
    }

    /// Scripts the device to run out of space after `n` more forwarded
    /// bytes ([`IoError::Full`] on the write that would exceed it).
    pub fn set_full_after_bytes(&self, n: Option<u64>) {
        self.domain.set_full_after_bytes(n);
    }

    /// True once the crash point has been hit.
    pub fn crashed(&self) -> bool {
        self.domain.crashed()
    }

    /// Writes submitted so far (the domain's write-sequence frontier).
    pub fn writes_issued(&self) -> u64 {
        self.domain.writes_issued()
    }

    /// Reads submitted so far.
    pub fn reads_issued(&self) -> u64 {
        self.domain.reads_issued()
    }
}

impl Device for FaultDevice {
    fn sector_size(&self) -> usize {
        self.inner.sector_size()
    }

    fn submit(&self, sqe: Sqe) {
        let (op, completion) = sqe.into_parts();
        match op {
            SqeOp::Write { offset, data } => {
                self.stats.record_write(data.len());
                let wsn = self.domain.state.wsn.fetch_add(1, Ordering::SeqCst);
                match self.domain.decide_write(wsn, offset, data.len(), self.inner.sector_size()) {
                    WriteDecision::Forward => {
                        self.inner.submit(Sqe::from_parts(SqeOp::Write { offset, data }, completion))
                    }
                    WriteDecision::AckDrop => completion.complete(Ok(Vec::new())),
                    WriteDecision::Fail(err) => completion.complete(Err(err)),
                    WriteDecision::Crash(keep) => {
                        // Order matters: mark crashed before persisting the torn
                        // prefix so every concurrent submission already refuses.
                        self.domain.state.crashed.store(true, Ordering::SeqCst);
                        let fail = || Err(IoError::Failed("crash point: torn write".into()));
                        if keep == 0 {
                            completion.complete(fail());
                        } else {
                            // The surviving prefix lands on the inner device;
                            // the caller still sees a failed (unacknowledged)
                            // write — whichever route it arrived on.
                            self.inner.write_async(
                                offset,
                                data[..keep].to_vec(),
                                Box::new(move |_| completion.complete(fail())),
                            );
                        }
                    }
                    WriteDecision::Refuse => {
                        completion.complete(Err(IoError::Failed("device crashed".into())))
                    }
                }
            }
            SqeOp::Read { offset, len } => {
                self.stats.record_read(len);
                let rsn = self.domain.state.rsn.fetch_add(1, Ordering::SeqCst);
                match self.domain.decide_read_fault(rsn) {
                    Some(err) => completion.complete(Err(err)),
                    None => {
                        self.inner.submit(Sqe::from_parts(SqeOp::Read { offset, len }, completion))
                    }
                }
            }
        }
    }

    fn flush_barrier(&self) -> Result<(), IoError> {
        let fsn = self.domain.state.fsn.fetch_add(1, Ordering::SeqCst);
        if self.domain.decide_flush_crash(fsn) {
            // The sync never completed; a commit protocol waiting on this
            // barrier must not acknowledge its group.
            return Err(IoError::Failed("device crashed at flush barrier".into()));
        }
        if self.domain.take_flush_failure(fsn) {
            return Err(IoError::Failed("injected flush failure".into()));
        }
        self.inner.flush_barrier()
    }

    fn truncate_below(&self, offset: u64) {
        if !self.crashed() {
            self.inner.truncate_below(offset);
        }
    }

    fn stats(&self) -> DeviceStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    fn write_blocking(d: &dyn Device, offset: u64, data: Vec<u8>) -> Result<(), IoError> {
        let (tx, rx) = std::sync::mpsc::channel();
        d.write_async(offset, data, Box::new(move |r| tx.send(r).unwrap()));
        rx.recv().unwrap()
    }

    fn read_blocking(d: &dyn Device, offset: u64, len: usize) -> Result<Vec<u8>, IoError> {
        let (tx, rx) = std::sync::mpsc::channel();
        d.read_async(offset, len, Box::new(move |r| tx.send(r).unwrap()));
        rx.recv().unwrap()
    }

    #[test]
    fn fault_free_plan_is_transparent() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner);
        write_blocking(&*d, 0, vec![7u8; 256]).unwrap();
        assert_eq!(read_blocking(&*d, 0, 256).unwrap(), vec![7u8; 256]);
        assert!(!d.crashed());
        assert_eq!(d.writes_issued(), 1);
        assert_eq!(d.reads_issued(), 1);
        let s = d.stats();
        assert_eq!((s.writes, s.reads, s.bytes_written, s.bytes_read), (1, 1, 256, 256));
    }

    #[test]
    fn crash_point_severs_the_suffix() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner.clone());
        write_blocking(&*d, 0, vec![1u8; 512]).unwrap();
        d.arm_crash(1, TornWrite::Nothing); // survives: write 1; crashes: write 2
        write_blocking(&*d, 512, vec![2u8; 512]).unwrap();
        assert!(write_blocking(&*d, 1024, vec![3u8; 512]).is_err());
        assert!(d.crashed());
        assert!(write_blocking(&*d, 1536, vec![4u8; 512]).is_err());
        // Surviving image: writes 0 and 1 in full, nothing of 2 or 3.
        assert_eq!(read_blocking(&*inner, 0, 512).unwrap(), vec![1u8; 512]);
        assert_eq!(read_blocking(&*inner, 512, 512).unwrap(), vec![2u8; 512]);
        assert!(matches!(
            read_blocking(&*inner, 1024, 512),
            Err(IoError::OutOfRange { .. })
        ));
        // The crashed device refuses reads too.
        assert!(matches!(read_blocking(&*d, 0, 8), Err(IoError::Failed(_))));
    }

    #[test]
    fn torn_write_persists_exactly_the_prefix() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner.clone());
        write_blocking(&*d, 0, vec![0xAA; 1024]).unwrap();
        d.arm_crash(0, TornWrite::Bytes(100));
        assert!(write_blocking(&*d, 0, vec![0xBB; 1024]).is_err());
        let bytes = read_blocking(&*inner, 0, 1024).unwrap();
        assert!(bytes[..100].iter().all(|&b| b == 0xBB), "prefix persisted");
        assert!(bytes[100..].iter().all(|&b| b == 0xAA), "suffix untouched");
    }

    #[test]
    fn seeded_sector_tear_is_sector_aligned_and_deterministic() {
        let keep = |seed: u64| {
            let inner = MemDevice::new(1);
            let d = FaultDevice::wrap(inner.clone());
            write_blocking(&*d, 0, vec![0x11; 4096]).unwrap();
            d.arm_crash(0, TornWrite::SeededSectors { seed });
            assert!(write_blocking(&*d, 0, vec![0x22; 4096]).is_err());
            let bytes = read_blocking(&*inner, 0, 4096).unwrap();
            let kept = bytes.iter().take_while(|&&b| b == 0x22).count();
            assert!(bytes[kept..].iter().all(|&b| b == 0x11));
            assert_eq!(kept % d.sector_size(), 0, "tear must be sector-aligned");
            kept
        };
        for seed in 0..16 {
            assert_eq!(keep(seed), keep(seed), "same seed, same tear");
        }
        assert!((0..16).map(keep).collect::<HashSet<_>>().len() > 1, "seeds vary the tear");
    }

    #[test]
    fn dropped_write_acks_but_does_not_persist() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner.clone());
        write_blocking(&*d, 0, vec![5u8; 128]).unwrap();
        d.drop_write_at(0);
        write_blocking(&*d, 0, vec![6u8; 128]).unwrap(); // acked Ok, dropped
        write_blocking(&*d, 128, vec![7u8; 128]).unwrap(); // later write unaffected
        assert_eq!(read_blocking(&*inner, 0, 128).unwrap(), vec![5u8; 128]);
        assert_eq!(read_blocking(&*inner, 128, 128).unwrap(), vec![7u8; 128]);
    }

    #[test]
    fn scripted_and_rate_read_faults_are_transient() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner);
        write_blocking(&*d, 0, vec![9u8; 64]).unwrap();
        d.fail_read_at(0);
        assert!(matches!(read_blocking(&*d, 0, 8), Err(IoError::Failed(_))));
        assert_eq!(read_blocking(&*d, 0, 8).unwrap(), vec![9u8; 8]);
        d.fail_next_reads(2);
        assert!(read_blocking(&*d, 0, 8).is_err());
        assert!(read_blocking(&*d, 0, 8).is_err());
        assert!(read_blocking(&*d, 0, 8).is_ok());
        // An always-failing rate fails every attempt; a zero rate none.
        d.set_read_fault_rate(Some(ReadFaultRate { seed: 1, num: 1, den: 1 }));
        assert!(read_blocking(&*d, 0, 8).is_err());
        d.set_read_fault_rate(Some(ReadFaultRate { seed: 1, num: 0, den: 1 }));
        assert!(read_blocking(&*d, 0, 8).is_ok());
        d.set_read_fault_rate(None);
    }

    #[test]
    fn shared_domain_interleaves_sequence_numbers_and_crashes_together() {
        let domain = FaultDomain::new();
        let log_inner = MemDevice::new(1);
        let ckpt_inner = MemDevice::new(1);
        let log = FaultDevice::wrap_in_domain(log_inner.clone(), &domain);
        let ckpt = FaultDevice::wrap_in_domain(ckpt_inner.clone(), &domain);
        write_blocking(&*log, 0, vec![1u8; 128]).unwrap(); // wsn 0
        write_blocking(&*ckpt, 0, vec![2u8; 128]).unwrap(); // wsn 1
        assert_eq!(domain.writes_issued(), 2);
        // Crash at wsn 3: the ckpt write at wsn 2 survives, the log write at
        // wsn 3 is the crash point, and both devices refuse afterwards.
        domain.arm_crash(1, TornWrite::Nothing);
        write_blocking(&*ckpt, 128, vec![3u8; 128]).unwrap(); // wsn 2
        assert!(write_blocking(&*log, 128, vec![4u8; 128]).is_err()); // wsn 3: crash
        assert!(log.crashed() && ckpt.crashed() && domain.crashed());
        assert!(write_blocking(&*ckpt, 256, vec![5u8; 128]).is_err());
        assert!(matches!(read_blocking(&*log, 0, 8), Err(IoError::Failed(_))));
        // Surviving images: everything acked before the crash point.
        assert_eq!(read_blocking(&*log_inner, 0, 128).unwrap(), vec![1u8; 128]);
        assert_eq!(read_blocking(&*ckpt_inner, 128, 128).unwrap(), vec![3u8; 128]);
        assert!(read_blocking(&*log_inner, 128, 128).is_err());
    }

    #[test]
    fn flush_boundary_crash_preserves_acked_writes() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner.clone());
        write_blocking(&*d, 0, vec![7u8; 64]).unwrap();
        d.flush_barrier().unwrap(); // fsn 0
        d.arm_crash_at_flush(1); // fsn 1 from now = the second barrier below
        write_blocking(&*d, 64, vec![8u8; 64]).unwrap();
        d.flush_barrier().unwrap(); // fsn 1: survives
        write_blocking(&*d, 128, vec![9u8; 64]).unwrap();
        // fsn 2: crash point — the sync never happened, so the barrier must
        // report failure (its group can never be acked).
        assert!(d.flush_barrier().is_err());
        assert!(d.crashed());
        assert!(write_blocking(&*d, 192, vec![1u8; 64]).is_err());
        // Every write acked before the crash-point barrier persisted.
        assert_eq!(read_blocking(&*inner, 0, 64).unwrap(), vec![7u8; 64]);
        assert_eq!(read_blocking(&*inner, 64, 64).unwrap(), vec![8u8; 64]);
        assert_eq!(read_blocking(&*inner, 128, 64).unwrap(), vec![9u8; 64]);
        assert_eq!(d.domain().flushes_issued(), 3);
    }

    #[test]
    fn injected_flush_failure_is_transient_and_does_not_crash() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner.clone());
        write_blocking(&*d, 0, vec![3u8; 64]).unwrap();
        d.flush_barrier().unwrap(); // fsn 0
        d.fail_flush_at(1); // fsn 2 = the second barrier from now
        d.flush_barrier().unwrap(); // fsn 1
        assert!(matches!(d.flush_barrier(), Err(IoError::Failed(_)))); // fsn 2
        // Unlike a crash, the device stays alive and later barriers succeed.
        assert!(!d.crashed());
        d.flush_barrier().unwrap(); // fsn 3
        write_blocking(&*d, 64, vec![4u8; 64]).unwrap();
        assert_eq!(read_blocking(&*d, 64, 64).unwrap(), vec![4u8; 64]);
        assert_eq!(d.domain().flushes_issued(), 4);
    }

    #[test]
    fn scripted_write_faults_are_transient_and_persist_nothing() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner.clone());
        write_blocking(&*d, 0, vec![1u8; 128]).unwrap();
        d.fail_write_at(0);
        assert!(matches!(
            write_blocking(&*d, 0, vec![2u8; 128]),
            Err(IoError::Failed(_))
        ));
        // The failed write never reached the medium; the device stays alive
        // and the resubmission (a later wsn) succeeds.
        assert!(!d.crashed());
        assert_eq!(read_blocking(&*inner, 0, 128).unwrap(), vec![1u8; 128]);
        write_blocking(&*d, 0, vec![2u8; 128]).unwrap();
        assert_eq!(read_blocking(&*inner, 0, 128).unwrap(), vec![2u8; 128]);

        d.fail_next_writes(2);
        assert!(write_blocking(&*d, 128, vec![3u8; 64]).is_err());
        assert!(write_blocking(&*d, 128, vec![3u8; 64]).is_err());
        write_blocking(&*d, 128, vec![3u8; 64]).unwrap();

        d.set_write_fault_rate(Some(ReadFaultRate { seed: 9, num: 1, den: 1 }));
        assert!(write_blocking(&*d, 256, vec![4u8; 64]).is_err());
        d.set_write_fault_rate(Some(ReadFaultRate { seed: 9, num: 0, den: 1 }));
        write_blocking(&*d, 256, vec![4u8; 64]).unwrap();
        d.set_write_fault_rate(None);
    }

    #[test]
    fn device_full_fails_the_overflowing_write_permanently() {
        let inner = MemDevice::new(1);
        let d = FaultDevice::wrap(inner.clone());
        write_blocking(&*d, 0, vec![1u8; 256]).unwrap();
        d.set_full_after_bytes(Some(512));
        write_blocking(&*d, 256, vec![2u8; 512]).unwrap(); // exactly at the limit
        assert_eq!(
            write_blocking(&*d, 768, vec![3u8; 1]),
            Err(IoError::Full { offset: 768 })
        );
        // Full is sticky until the limit is raised; the device never crashed.
        assert_eq!(
            write_blocking(&*d, 768, vec![3u8; 1]),
            Err(IoError::Full { offset: 768 })
        );
        assert!(!d.crashed());
        assert_eq!(read_blocking(&*d, 256, 512).unwrap(), vec![2u8; 512]);
        d.set_full_after_bytes(None);
        write_blocking(&*d, 768, vec![3u8; 64]).unwrap();
    }

    #[test]
    fn read_fault_rate_is_deterministic_per_seed() {
        let r = ReadFaultRate { seed: 42, num: 1, den: 4 };
        let pattern: Vec<bool> = (0..64).map(|rsn| r.hits(rsn)).collect();
        assert_eq!(pattern, (0..64).map(|rsn| r.hits(rsn)).collect::<Vec<_>>());
        let hits = pattern.iter().filter(|&&b| b).count();
        assert!(hits > 0 && hits < 40, "rate 1/4 over 64 draws, got {hits}");
    }
}
