//! # faster-wal
//!
//! A group-committed user-space write-ahead log for per-operation
//! durability.
//!
//! The paper's CPR checkpoints (§6.5) bound loss to "everything after the
//! last checkpoint's t2"; some deployments need the stricter contract that a
//! *acknowledged* operation survives any crash. This crate provides that as a
//! sidecar log: sessions append one record per mutating operation and learn
//! durability when the record's **group** is flushed. A single commit thread
//! batches appends from all sessions under a tunable batch window, writes the
//! group with one device write, and issues one `flush_barrier` for the whole
//! group — amortizing the fsync across every session in the batch, which is
//! what makes per-op durability affordable at high session counts.
//!
//! ## Record format
//!
//! ```text
//! [checksum u64][lsn u64][len u32][generation u32][payload len bytes]
//! ```
//!
//! * `lsn` is a monotonic log sequence number starting at 1, assigned at
//!   append under the log mutex (so LSN order = buffer order = disk order).
//! * `checksum` covers `lsn | len | generation | payload`; recovery stops at
//!   the first record that fails it — the torn-record cutoff.
//! * `generation` is bumped on every recovery and must never decrease along
//!   the log. It defuses the LSN-reuse hazard: after a crash, re-appended
//!   records may reuse the LSNs of torn (never-acked) ones, and without the
//!   generation a stale torn suffix whose record boundary happens to line up
//!   could parse as a continuation of the new records.
//!
//! ## Segments
//!
//! The log is divided into fixed-size segments. Records pack back to back
//! within a segment and **never span segments** — a record that does not fit
//! zero-pads to the next boundary. Recovery skips truncated segments at the
//! front (the device reports [`IoError::Truncated`]) and hops over padding,
//! so [`Wal::truncate_below_lsn`] can reclaim whole segments once a
//! checkpoint covers their records.
//!
//! ## Group commit and sector alignment
//!
//! Each group is written as one sector-aligned device write. The tail
//! usually ends mid-sector, so the commit thread keeps the byte image of the
//! partial tail sector and *re-writes* it as the prefix of the next group's
//! block. The rewritten prefix is byte-identical to what is already on disk,
//! so a torn group write can never damage previously acked records — the
//! prefix-persisted crash model keeps them intact no matter where the tear
//! lands.
//!
//! ## Failure contract
//!
//! A failed group write or flush barrier means durability of that group is
//! unknown: the failure is **sticky** — the group is never acked, every
//! waiter (and all later appends) observe the error, and nothing past the
//! last successfully acked LSN is ever reported durable. This is the other
//! half of the `Device::flush_barrier() -> Result` contract.

use faster_metrics::WalMetrics;
use faster_storage::{CompletionRing, Cqe, Device, IoError, Sqe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Log sequence number. 1-based; 0 means "nothing" (no record, no coverage).
pub type Lsn = u64;

/// Bytes of the per-record header.
pub const RECORD_HEADER: usize = 24;

/// Tuning knobs for the log.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// How long the commit thread lingers after the first append of a group
    /// to let more sessions join before the single flush. Zero = commit as
    /// fast as the device allows (groups still form under barrier latency).
    pub batch_window: Duration,
    /// Segment size in bytes; records never span segments. Must be a
    /// multiple of the device sector size and larger than any record.
    pub segment_size: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self { batch_window: Duration::ZERO, segment_size: 1 << 20 }
    }
}

/// One record recovered by [`Wal::recover`], in LSN order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub lsn: Lsn,
    pub payload: Vec<u8>,
}

struct Pending {
    lsn: Lsn,
    /// Header + payload, fully encoded at append time.
    bytes: Vec<u8>,
    enqueued: Instant,
}

/// A registered durability notice ([`Wal::notify_durable`]): when every LSN
/// ≤ `lsn` is durable (or the log fails), a [`Cqe`] carrying `id` is pushed
/// into `ring`.
struct Notice {
    lsn: Lsn,
    id: u64,
    ring: Arc<CompletionRing>,
}

impl Notice {
    fn deliver(self, result: Result<(), IoError>) {
        self.ring.push(Cqe { id: self.id, result: result.map(|()| Vec::new()) });
    }
}

struct WalState {
    /// Logical end of the log: the byte after the last record (or pad).
    tail: u64,
    next_lsn: Lsn,
    generation: u32,
    pending: Vec<Pending>,
    /// Byte image of `[align_down(tail), tail)` — rewritten as the identical
    /// prefix of the next group's sector-aligned write.
    tail_sector: Vec<u8>,
    /// `(offset, first lsn)` of every segment that holds records, for
    /// LSN-addressed truncation.
    segment_starts: Vec<(u64, Lsn)>,
    /// Sticky group-commit failure: set once, never cleared.
    failed: Option<IoError>,
    shutdown: bool,
    /// Outstanding ring-routed durability notices, drained by the commit
    /// thread on every ack (and failed wholesale on a sticky failure).
    notices: Vec<Notice>,
}

struct Shared {
    device: Arc<dyn Device>,
    cfg: WalConfig,
    metrics: Arc<WalMetrics>,
    state: Mutex<WalState>,
    /// Wakes the commit thread when a record is appended (or on shutdown).
    appended: Condvar,
    /// Wakes durability waiters when a group is acked or the log fails.
    acked: Condvar,
    /// Highest LSN known durable (all LSNs ≤ this are durable).
    durable: AtomicU64,
}

/// The group-committed write-ahead log. See module docs.
pub struct Wal {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Wal {
    /// A fresh, empty log on `device`, starting at LSN 1.
    pub fn new(device: Arc<dyn Device>, cfg: WalConfig) -> Arc<Self> {
        Self::with_metrics(device, cfg, Arc::new(WalMetrics::default()))
    }

    /// A fresh log reporting into an existing metrics group.
    pub fn with_metrics(
        device: Arc<dyn Device>,
        cfg: WalConfig,
        metrics: Arc<WalMetrics>,
    ) -> Arc<Self> {
        Self::start(device, cfg, metrics, ScanResult::fresh(), 0)
    }

    /// Scans the surviving log on `device`, returning the log (resumed at
    /// the scan end, with a bumped generation) and every valid record with
    /// LSN strictly above `skip_lsn` — the suffix a recovering store must
    /// replay. The scan stops at the first torn or checksum-failing record:
    /// everything before it was acked (or part of a group whose prefix
    /// persisted); everything at or after it was never acknowledged.
    pub fn recover(
        device: Arc<dyn Device>,
        cfg: WalConfig,
        metrics: Arc<WalMetrics>,
        skip_lsn: Lsn,
    ) -> (Arc<Self>, Vec<WalRecord>) {
        let scan = scan_device(&device, cfg.segment_size);
        let replay: Vec<WalRecord> =
            scan.records.iter().filter(|r| r.lsn > skip_lsn).cloned().collect();
        (Self::start(device, cfg, metrics, scan, skip_lsn), replay)
    }

    fn start(
        device: Arc<dyn Device>,
        cfg: WalConfig,
        metrics: Arc<WalMetrics>,
        scan: ScanResult,
        skip_lsn: Lsn,
    ) -> Arc<Self> {
        assert!(
            cfg.segment_size.is_multiple_of(device.sector_size() as u64),
            "segment size must be a multiple of the device sector size"
        );
        let last = scan.last_lsn.max(skip_lsn);
        let shared = Arc::new(Shared {
            device,
            cfg,
            metrics,
            state: Mutex::new(WalState {
                tail: scan.tail,
                next_lsn: last + 1,
                generation: scan.max_generation + 1,
                pending: Vec::new(),
                tail_sector: scan.tail_sector,
                segment_starts: scan.segment_starts,
                failed: None,
                shutdown: false,
                notices: Vec::new(),
            }),
            appended: Condvar::new(),
            acked: Condvar::new(),
            // Everything that survived on disk is durable by definition.
            durable: AtomicU64::new(scan.last_lsn),
        });
        let worker = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("faster-wal-commit".into())
                .spawn(move || commit_loop(&shared))
                .expect("spawn WAL commit thread")
        };
        Arc::new(Self { shared, worker: Mutex::new(Some(worker)) })
    }

    /// Appends one record, returning its LSN. The record is **not durable**
    /// yet: pair with [`Wal::wait_durable`] / [`Wal::poll_durable`]. Fails
    /// if the log has already hit a sticky commit failure.
    pub fn append(&self, payload: &[u8]) -> Result<Lsn, IoError> {
        let total = RECORD_HEADER + payload.len();
        if total as u64 > self.shared.cfg.segment_size {
            return Err(IoError::Failed(format!(
                "WAL record of {total} bytes exceeds segment size {}",
                self.shared.cfg.segment_size
            )));
        }
        let mut st = self.shared.state.lock().unwrap();
        if let Some(e) = &st.failed {
            return Err(e.clone());
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        let bytes = encode_record(lsn, st.generation, payload);
        st.pending.push(Pending { lsn, bytes, enqueued: Instant::now() });
        self.shared.metrics.appends.inc();
        self.shared.metrics.bytes.add(total as u64);
        self.shared.appended.notify_one();
        Ok(lsn)
    }

    /// Blocks until every record with LSN ≤ `lsn` is durable, or the log
    /// fails. An `Err` means the record's group was **never acknowledged**.
    pub fn wait_durable(&self, lsn: Lsn) -> Result<(), IoError> {
        if self.shared.durable.load(Ordering::SeqCst) >= lsn {
            return Ok(());
        }
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if self.shared.durable.load(Ordering::SeqCst) >= lsn {
                return Ok(());
            }
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            st = self.shared.acked.wait(st).unwrap();
        }
    }

    /// Non-blocking durability check: `Some(Ok(()))` once durable,
    /// `Some(Err(_))` once the log has failed, `None` while still in
    /// flight. Drives `complete_pending`-style polling.
    pub fn poll_durable(&self, lsn: Lsn) -> Option<Result<(), IoError>> {
        if self.shared.durable.load(Ordering::SeqCst) >= lsn {
            return Some(Ok(()));
        }
        let st = self.shared.state.lock().unwrap();
        if self.shared.durable.load(Ordering::SeqCst) >= lsn {
            return Some(Ok(()));
        }
        st.failed.as_ref().map(|e| Err(e.clone()))
    }

    /// Registers a ring-routed durability notice: once every record with
    /// LSN ≤ `lsn` is durable, a [`Cqe`] echoing `id` (empty bytes) is
    /// pushed into `ring`; if the log fails first — or has already failed,
    /// or is shutting down — the CQE carries the error instead. Exactly one
    /// CQE is delivered per call, immediately when the answer is already
    /// known. This is the parking-free counterpart of [`Wal::wait_durable`]:
    /// a consumer multiplexing a [`CompletionRing`] (disk reads, socket
    /// readiness) learns group-commit durability through the same reap loop
    /// instead of blocking a thread per waiter on the condvar.
    pub fn notify_durable(&self, lsn: Lsn, id: u64, ring: &Arc<CompletionRing>) {
        if self.shared.durable.load(Ordering::SeqCst) >= lsn {
            ring.push(Cqe { id, result: Ok(Vec::new()) });
            return;
        }
        let mut st = self.shared.state.lock().unwrap();
        // Re-check under the lock: an ack that raced us has already drained
        // the notice list and would never see this registration.
        if self.shared.durable.load(Ordering::SeqCst) >= lsn {
            drop(st);
            ring.push(Cqe { id, result: Ok(Vec::new()) });
            return;
        }
        if let Some(e) = st.failed.clone() {
            drop(st);
            ring.push(Cqe { id, result: Err(e) });
            return;
        }
        if st.shutdown {
            drop(st);
            ring.push(Cqe { id, result: Err(IoError::Failed("WAL shut down".into())) });
            return;
        }
        st.notices.push(Notice { lsn, id, ring: Arc::clone(ring) });
    }

    /// Highest LSN known durable (0 = none).
    pub fn durable_lsn(&self) -> Lsn {
        self.shared.durable.load(Ordering::SeqCst)
    }

    /// Highest LSN handed out by [`Wal::append`] (0 = none).
    pub fn last_appended_lsn(&self) -> Lsn {
        self.shared.state.lock().unwrap().next_lsn - 1
    }

    /// The sticky failure, if the log has hit one.
    pub fn failure(&self) -> Option<IoError> {
        self.shared.state.lock().unwrap().failed.clone()
    }

    /// Reclaims whole segments whose records are all ≤ `lsn` (typically a
    /// checkpoint's recorded WAL truncation point). Conservative: a segment
    /// survives unless every byte below its start is covered.
    pub fn truncate_below_lsn(&self, lsn: Lsn) {
        let mut st = self.shared.state.lock().unwrap();
        let mut cut = 0u64;
        for &(off, first) in &st.segment_starts {
            // Records strictly below `off` all have LSN < `first`.
            if first <= lsn + 1 {
                cut = cut.max(off);
            }
        }
        if cut > 0 {
            st.segment_starts.retain(|&(off, _)| off >= cut);
            self.shared.device.truncate_below(cut);
        }
    }

    /// The device this log writes to.
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.shared.device
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.appended.notify_all();
        }
        if let Some(h) = self.worker.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

/// The commit thread: batch, write, barrier, ack — one iteration per group.
fn commit_loop(shared: &Shared) {
    let sector = shared.device.sector_size() as u64;
    let seg = shared.cfg.segment_size;
    // Group writes ride the submission/completion ring (DESIGN.md §9): the
    // commit thread owns a private ring, submits each group block as a
    // ring-routed SQE (id = the group's last LSN) and parks on the ring for
    // its CQE. One SQE is in flight at a time, so reaping is trivial.
    let ring = Arc::new(CompletionRing::new());
    let mut cqes: Vec<faster_storage::Cqe> = Vec::with_capacity(1);
    loop {
        let mut st = shared.state.lock().unwrap();
        while st.pending.is_empty() {
            if st.shutdown || st.failed.is_some() {
                let err = st.failed.clone().unwrap_or(IoError::Failed("WAL shut down".into()));
                fail_notices(&mut st, err);
                return;
            }
            st = shared.appended.wait(st).unwrap();
        }
        // Batch window: let more sessions join the group before the flush.
        if !shared.cfg.batch_window.is_zero() && !st.shutdown {
            drop(st);
            std::thread::sleep(shared.cfg.batch_window);
            st = shared.state.lock().unwrap();
        }

        // Build the group's sector-aligned block. The tail-sector prefix is
        // byte-identical to disk, so tearing this write cannot damage
        // already-acked records.
        let group = std::mem::take(&mut st.pending);
        let write_off = st.tail - st.tail_sector.len() as u64;
        debug_assert_eq!(write_off % sector, 0);
        let mut block = std::mem::take(&mut st.tail_sector);
        let mut tail = st.tail;
        for rec in &group {
            let within = tail % seg;
            if seg - within < rec.bytes.len() as u64 {
                // Records never span segments: zero-pad to the boundary.
                block.resize(block.len() + (seg - within) as usize, 0);
                tail += seg - within;
            }
            if tail.is_multiple_of(seg) {
                st.segment_starts.push((tail, rec.lsn));
            }
            block.extend_from_slice(&rec.bytes);
            tail += rec.bytes.len() as u64;
        }
        st.tail = tail;
        st.tail_sector = block[(tail / sector * sector - write_off) as usize..].to_vec();
        block.resize(block.len().div_ceil(sector as usize) * sector as usize, 0);
        drop(st);

        let last_lsn = group.last().expect("non-empty group").lsn;
        let oldest = group.iter().map(|r| r.enqueued).min().expect("non-empty group");
        shared.device.submit(Sqe::write(last_lsn, write_off, block, &ring));
        let write_res = loop {
            cqes.clear();
            if ring.reap(&mut cqes) > 0 {
                debug_assert_eq!(cqes.len(), 1, "one group write in flight");
                debug_assert_eq!(cqes[0].id, last_lsn);
                break cqes.pop().expect("reaped CQE").result.map(|_| ());
            }
            ring.wait_nonempty(Duration::from_millis(100));
        };
        let res = write_res.and_then(|()| shared.device.flush_barrier());

        let mut st = shared.state.lock().unwrap();
        match res {
            Ok(()) => {
                shared.durable.store(last_lsn, Ordering::SeqCst);
                shared.metrics.commits.inc();
                shared.metrics.group_size.record(group.len() as u64);
                shared.metrics.commit_latency.record(oldest.elapsed().as_nanos() as u64);
                shared.acked.notify_all();
                // Deliver every ring-routed notice the ack covers.
                let covered = drain_notices(&mut st, last_lsn);
                for n in covered {
                    n.deliver(Ok(()));
                }
            }
            Err(e) => {
                // Sticky: the group (and everything after) is never acked.
                shared.metrics.commit_failures.inc();
                st.failed = Some(e.clone());
                shared.acked.notify_all();
                fail_notices(&mut st, e);
                return;
            }
        }
        if st.shutdown && st.pending.is_empty() {
            fail_notices(&mut st, IoError::Failed("WAL shut down".into()));
            return;
        }
    }
}

/// Detaches the notices covered by `durable_lsn` (delivered outside the
/// caller's lock scope would also be fine — ring pushes never block).
fn drain_notices(st: &mut WalState, durable_lsn: Lsn) -> Vec<Notice> {
    let (covered, keep) = std::mem::take(&mut st.notices)
        .into_iter()
        .partition(|n| n.lsn <= durable_lsn);
    st.notices = keep;
    covered
}

/// Fails every outstanding notice (sticky failure or shutdown).
fn fail_notices(st: &mut WalState, err: IoError) {
    for n in std::mem::take(&mut st.notices) {
        n.deliver(Err(err.clone()));
    }
}

fn encode_record(lsn: Lsn, generation: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&[0u8; 8]); // checksum placeholder
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(payload);
    let sum = faster_util::hash_bytes(&out[8..]);
    out[..8].copy_from_slice(&sum.to_le_bytes());
    out
}

struct ScanResult {
    records: Vec<WalRecord>,
    tail: u64,
    last_lsn: Lsn,
    max_generation: u32,
    tail_sector: Vec<u8>,
    segment_starts: Vec<(u64, Lsn)>,
}

impl ScanResult {
    fn fresh() -> Self {
        Self {
            records: Vec::new(),
            tail: 0,
            last_lsn: 0,
            max_generation: 0,
            tail_sector: Vec::new(),
            segment_starts: Vec::new(),
        }
    }
}

/// Walks the surviving log: skips truncated front segments, validates each
/// record (checksum, LSN continuity, generation monotonicity), stops at the
/// first invalid one — the torn-record cutoff.
fn scan_device(device: &Arc<dyn Device>, seg: u64) -> ScanResult {
    let sector = device.sector_size() as u64;
    let mut out = ScanResult::fresh();

    // Find the first readable segment (truncation reclaims whole segments).
    let mut off = 0u64;
    loop {
        match read_blocking(device, off, RECORD_HEADER) {
            Ok(_) => break,
            Err(IoError::Truncated { .. }) => off += seg,
            Err(_) => {
                out.tail = off;
                return out; // empty (or fully truncated) log
            }
        }
    }

    let mut prev_lsn: Option<Lsn> = None;
    let mut prev_gen = 0u32;
    loop {
        let within = off % seg;
        let remaining = seg - within;
        if remaining < RECORD_HEADER as u64 {
            off += remaining;
            continue;
        }
        let Ok(hdr) = read_blocking(device, off, RECORD_HEADER) else { break };
        let rd64 = |i: usize| u64::from_le_bytes(hdr[i..i + 8].try_into().unwrap());
        let sum = rd64(0);
        let lsn = rd64(8);
        let len = u32::from_le_bytes(hdr[16..20].try_into().unwrap()) as usize;
        let gen = u32::from_le_bytes(hdr[20..24].try_into().unwrap());
        if sum == 0 && lsn == 0 && len == 0 && gen == 0 {
            if within == 0 {
                break; // untouched segment start: end of log
            }
            // Padding before a segment hop — or end-of-log zeros; the next
            // segment start decides (valid record continues, anything else
            // stops the scan there).
            off += remaining;
            continue;
        }
        if RECORD_HEADER as u64 + len as u64 > remaining || gen == 0 {
            break;
        }
        let Ok(payload) = read_blocking(device, off + RECORD_HEADER as u64, len) else { break };
        let mut check = Vec::with_capacity(RECORD_HEADER - 8 + len);
        check.extend_from_slice(&hdr[8..]);
        check.extend_from_slice(&payload);
        if faster_util::hash_bytes(&check) != sum {
            break;
        }
        // After front truncation the first LSN is arbitrary; within the
        // scan, LSNs are dense and generations never decrease.
        if let Some(p) = prev_lsn {
            if lsn != p + 1 || gen < prev_gen {
                break;
            }
        }
        if within == 0 {
            out.segment_starts.push((off, lsn));
        }
        prev_lsn = Some(lsn);
        prev_gen = prev_gen.max(gen);
        out.records.push(WalRecord { lsn, payload });
        off += RECORD_HEADER as u64 + len as u64;
    }

    out.tail = off;
    out.last_lsn = prev_lsn.unwrap_or(0);
    out.max_generation = prev_gen;
    let aligned = off / sector * sector;
    if off > aligned {
        // Rebuild the partial-tail-sector image the commit thread rewrites.
        out.tail_sector =
            read_blocking(device, aligned, (off - aligned) as usize).unwrap_or_default();
    }
    out
}

fn read_blocking(device: &Arc<dyn Device>, offset: u64, len: usize) -> Result<Vec<u8>, IoError> {
    let (tx, rx) = std::sync::mpsc::channel();
    device.read_async(offset, len, Box::new(move |r| {
        let _ = tx.send(r);
    }));
    match rx.recv() {
        Ok(r) => r,
        Err(_) => Err(IoError::Failed("WAL read callback dropped".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faster_storage::{FaultDevice, MemDevice};

    fn fresh(dev: Arc<dyn Device>, window_us: u64, seg: u64) -> Arc<Wal> {
        Wal::new(
            dev,
            WalConfig {
                batch_window: Duration::from_micros(window_us),
                segment_size: seg,
            },
        )
    }

    fn payload(i: u64) -> Vec<u8> {
        let mut p = vec![0u8; 16 + (i % 48) as usize];
        p[..8].copy_from_slice(&i.to_le_bytes());
        p
    }

    #[test]
    fn append_wait_recover_round_trip() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let wal = fresh(dev.clone(), 0, 1 << 16);
        let mut lsns = Vec::new();
        for i in 0..50u64 {
            lsns.push(wal.append(&payload(i)).unwrap());
        }
        assert_eq!(lsns, (1..=50).collect::<Vec<_>>());
        wal.wait_durable(50).unwrap();
        assert_eq!(wal.durable_lsn(), 50);
        drop(wal);

        let (wal2, replay) = Wal::recover(
            dev,
            WalConfig { batch_window: Duration::ZERO, segment_size: 1 << 16 },
            Arc::new(WalMetrics::default()),
            20,
        );
        assert_eq!(replay.len(), 30);
        assert_eq!(replay[0].lsn, 21);
        assert_eq!(replay[0].payload, payload(20));
        assert_eq!(replay.last().unwrap().lsn, 50);
        // The recovered log resumes the LSN sequence.
        assert_eq!(wal2.append(b"next").unwrap(), 51);
        wal2.wait_durable(51).unwrap();
    }

    #[test]
    fn drop_flushes_outstanding_appends() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let wal = fresh(dev.clone(), 5_000, 1 << 16);
        for i in 0..10u64 {
            wal.append(&payload(i)).unwrap();
        }
        drop(wal); // orderly shutdown must drain the pending group
        let (_w, replay) = Wal::recover(
            dev,
            WalConfig::default(),
            Arc::new(WalMetrics::default()),
            0,
        );
        assert_eq!(replay.len(), 10);
    }

    #[test]
    fn batch_window_groups_appends_into_fewer_commits() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let metrics = Arc::new(WalMetrics::default());
        let wal = Wal::with_metrics(
            dev,
            WalConfig {
                batch_window: Duration::from_millis(100),
                segment_size: 1 << 16,
            },
            metrics.clone(),
        );
        for i in 0..8u64 {
            wal.append(&payload(i)).unwrap();
        }
        wal.wait_durable(8).unwrap();
        let commits = metrics.commits.get();
        assert!(commits < 8, "expected grouping, got {commits} commits for 8 appends");
        assert!(metrics.group_size.snapshot().max >= 2);
        assert_eq!(metrics.appends.get(), 8);
    }

    #[test]
    fn records_never_span_segments_and_hop_recovers() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        // Tiny segments force hops: 512-byte segment, ~40-byte records.
        let wal = fresh(dev.clone(), 0, 512);
        let n = 100u64;
        for i in 0..n {
            wal.append(&payload(i)).unwrap();
        }
        wal.wait_durable(n).unwrap();
        drop(wal);
        let (_w, replay) = Wal::recover(
            dev,
            WalConfig { batch_window: Duration::ZERO, segment_size: 512 },
            Arc::new(WalMetrics::default()),
            0,
        );
        assert_eq!(replay.len(), n as usize);
        for (i, r) in replay.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
            assert_eq!(r.payload, payload(i as u64));
        }
    }

    #[test]
    fn oversized_record_is_rejected() {
        let wal = fresh(MemDevice::new(1), 0, 512);
        assert!(wal.append(&[0u8; 512]).is_err());
        assert!(wal.append(&[0u8; 256]).is_ok());
    }

    #[test]
    fn torn_suffix_is_cut_at_the_checksum() {
        let dev = MemDevice::new(1);
        let wal = fresh(dev.clone(), 0, 1 << 16);
        for i in 0..20u64 {
            wal.append(&payload(i)).unwrap();
        }
        wal.wait_durable(20).unwrap();
        drop(wal);
        // Corrupt one byte of record 15's payload directly on the device:
        // replay must stop before it, keeping the valid prefix only.
        let scan = scan_device(&(dev.clone() as Arc<dyn Device>), 1 << 16);
        assert_eq!(scan.records.len(), 20);
        let mut off = 0u64;
        for r in &scan.records[..14] {
            off += (RECORD_HEADER + r.payload.len()) as u64;
        }
        let (tx, rx) = std::sync::mpsc::channel();
        dev.write_async(
            off + RECORD_HEADER as u64,
            vec![0xFF; 4],
            Box::new(move |r| tx.send(r).unwrap()),
        );
        rx.recv().unwrap().unwrap();

        let (_w, replay) = Wal::recover(
            dev,
            WalConfig::default(),
            Arc::new(WalMetrics::default()),
            0,
        );
        assert_eq!(replay.len(), 14, "scan must stop at the corrupt record");
        assert_eq!(replay.last().unwrap().lsn, 14);
    }

    #[test]
    fn truncation_reclaims_whole_segments_only() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let wal = fresh(dev.clone(), 0, 512);
        for i in 0..100u64 {
            wal.append(&payload(i)).unwrap();
        }
        wal.wait_durable(100).unwrap();
        wal.truncate_below_lsn(50);
        drop(wal);
        let (_w, replay) = Wal::recover(
            dev,
            WalConfig { batch_window: Duration::ZERO, segment_size: 512 },
            Arc::new(WalMetrics::default()),
            50,
        );
        // Every record above the cutoff must survive truncation; records at
        // or below it may or may not (whole segments only).
        assert_eq!(replay.first().map(|r| r.lsn), Some(51));
        assert_eq!(replay.last().map(|r| r.lsn), Some(100));
        assert_eq!(replay.len(), 50);
    }

    #[test]
    fn failed_barrier_never_acks_the_group() {
        let metrics = Arc::new(WalMetrics::default());
        let dev = FaultDevice::wrap(MemDevice::new(1));
        dev.fail_flush_at(0);
        let wal = Wal::with_metrics(
            dev.clone(),
            WalConfig::default(),
            metrics.clone(),
        );
        let lsn = wal.append(b"doomed").unwrap();
        let err = wal.wait_durable(lsn);
        assert!(err.is_err(), "a failed barrier must fail the commit");
        assert_eq!(wal.durable_lsn(), 0, "the group must never be acked");
        assert_eq!(metrics.commits.get(), 0);
        assert_eq!(metrics.commit_failures.get(), 1);
        // The failure is sticky: later appends and polls see it too.
        assert!(wal.append(b"later").is_err());
        assert!(matches!(wal.poll_durable(lsn), Some(Err(_))));
        assert!(wal.failure().is_some());
    }

    #[test]
    fn crashed_flush_cuts_recovery_at_last_acked_group() {
        let inner = MemDevice::new(1);
        let dev = FaultDevice::wrap(inner.clone());
        let wal = fresh(dev.clone(), 0, 1 << 16);
        wal.append(&payload(1)).unwrap();
        wal.wait_durable(1).unwrap(); // group 1 acked (fsn 0)
        dev.arm_crash_at_flush(0); // next barrier = crash point
        let lsn = wal.append(&payload(2)).unwrap();
        assert!(wal.wait_durable(lsn).is_err());
        assert_eq!(wal.durable_lsn(), 1);
        drop(wal);
        // The crash-point group's write persisted (prefix model) but was
        // never acked; replay may surface it — recovery semantics only
        // promise acked records are present. Here the surviving image holds
        // both, and both checksum-verify.
        let (_w, replay) =
            Wal::recover(inner, WalConfig::default(), Arc::new(WalMetrics::default()), 0);
        assert!(replay.iter().any(|r| r.lsn == 1), "acked record must survive");
    }

    #[test]
    fn generation_guards_against_stale_torn_suffix() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let wal = fresh(dev.clone(), 0, 1 << 16);
        wal.append(&payload(1)).unwrap();
        wal.wait_durable(1).unwrap();
        drop(wal);
        // First recovery bumps the generation; new records carry gen 2.
        let (wal2, replay) =
            Wal::recover(dev.clone(), WalConfig::default(), Arc::new(WalMetrics::default()), 0);
        assert_eq!(replay.len(), 1);
        wal2.append(&payload(2)).unwrap();
        wal2.wait_durable(2).unwrap();
        drop(wal2);
        let (_w, replay2) =
            Wal::recover(dev, WalConfig::default(), Arc::new(WalMetrics::default()), 0);
        assert_eq!(replay2.len(), 2, "gen 1 then gen 2 records chain fine");
    }

    #[test]
    fn notify_durable_delivers_cqes_for_acked_groups() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let wal = fresh(dev, 2_000, 1 << 16);
        let ring = Arc::new(CompletionRing::new());
        let lsn = wal.append(b"hello").unwrap();
        wal.notify_durable(lsn, 42, &ring);
        // Park on the ring until the group commits — no condvar involved.
        let mut out = Vec::new();
        while out.is_empty() {
            ring.wait_nonempty(Duration::from_millis(50));
            ring.reap(&mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 42);
        assert!(out[0].result.is_ok());
        // Already durable: the CQE is pushed synchronously.
        wal.notify_durable(lsn, 43, &ring);
        out.clear();
        assert_eq!(ring.reap(&mut out), 1);
        assert_eq!(out[0].id, 43);
        // LSN 0 (nothing appended) is trivially durable.
        wal.notify_durable(0, 44, &ring);
        out.clear();
        assert_eq!(ring.reap(&mut out), 1);
    }

    #[test]
    fn notify_durable_fails_notices_on_sticky_failure() {
        let dev = FaultDevice::wrap(MemDevice::new(1));
        dev.fail_flush_at(0);
        let wal = Wal::new(dev, WalConfig { batch_window: Duration::from_millis(20), segment_size: 1 << 16 });
        let ring = Arc::new(CompletionRing::new());
        let lsn = wal.append(b"doomed").unwrap();
        wal.notify_durable(lsn, 7, &ring);
        let mut out = Vec::new();
        while out.is_empty() {
            ring.wait_nonempty(Duration::from_millis(50));
            ring.reap(&mut out);
        }
        assert_eq!(out[0].id, 7);
        assert!(out[0].result.is_err(), "failed group must fail its notices");
        // Registrations after the failure learn it immediately.
        wal.notify_durable(lsn, 8, &ring);
        out.clear();
        assert_eq!(ring.reap(&mut out), 1);
        assert!(out[0].result.is_err());
    }

    #[test]
    fn concurrent_appenders_all_become_durable() {
        let dev: Arc<dyn Device> = MemDevice::new(2);
        let wal = fresh(dev, 200, 1 << 16);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..64u64 {
                    let lsn = wal.append(&payload(t * 1000 + i)).unwrap();
                    wal.wait_durable(lsn).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wal.last_appended_lsn(), 8 * 64);
        assert_eq!(wal.durable_lsn(), 8 * 64);
    }
}
