//! # faster-cachesim
//!
//! The §7.5 caching-behavior simulation: "We maintain a constant-sized key
//! buffer as a cache, and use each caching protocol to evict a key whenever
//! an accessed key is not in the buffer."
//!
//! Protocols (§6.4): FIFO, CLOCK, LRU (LRU-1), LRU-2 (the LRU-K protocol of
//! O'Neil et al.), and **HLOG** — the HybridLog second-chance behavior: "we
//! have a read-only marker that is at a constant lag from the tail address;
//! when a key is in read-only region, we copy it to end of tail like in
//! FASTER." HLOG needs *no per-key statistics*; its cost is key replication
//! (a hot key occupies both a read-only and a mutable slot), which is
//! exactly the effect Figs 14–16 quantify.

use std::collections::{BTreeSet, HashMap, VecDeque};

/// A cache replacement policy over `u64` keys.
pub trait CachePolicy {
    /// Processes one access; returns true on a cache hit.
    fn access(&mut self, key: u64) -> bool;
    /// Display name (matches the figure legends).
    fn name(&self) -> &'static str;
}

/// First-In First-Out.
pub struct Fifo {
    cap: usize,
    queue: VecDeque<u64>,
    resident: HashMap<u64, ()>,
}

impl Fifo {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        Self { cap, queue: VecDeque::new(), resident: HashMap::new() }
    }
}

impl CachePolicy for Fifo {
    fn access(&mut self, key: u64) -> bool {
        if self.resident.contains_key(&key) {
            return true;
        }
        if self.queue.len() == self.cap {
            let victim = self.queue.pop_front().expect("cap > 0");
            self.resident.remove(&victim);
        }
        self.queue.push_back(key);
        self.resident.insert(key, ());
        false
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }
}

/// Least Recently Used (LRU-1).
pub struct Lru {
    cap: usize,
    clock: u64,
    stamp_of: HashMap<u64, u64>,
    by_stamp: BTreeSet<(u64, u64)>, // (stamp, key)
}

impl Lru {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        Self { cap, clock: 0, stamp_of: HashMap::new(), by_stamp: BTreeSet::new() }
    }
}

impl CachePolicy for Lru {
    fn access(&mut self, key: u64) -> bool {
        self.clock += 1;
        if let Some(&old) = self.stamp_of.get(&key) {
            self.by_stamp.remove(&(old, key));
            self.by_stamp.insert((self.clock, key));
            self.stamp_of.insert(key, self.clock);
            return true;
        }
        if self.stamp_of.len() == self.cap {
            let &(stamp, victim) = self.by_stamp.iter().next().expect("nonempty");
            self.by_stamp.remove(&(stamp, victim));
            self.stamp_of.remove(&victim);
        }
        self.stamp_of.insert(key, self.clock);
        self.by_stamp.insert((self.clock, key));
        false
    }

    fn name(&self) -> &'static str {
        "LRU_1"
    }
}

/// LRU-K with K = 2 (O'Neil et al., reference \[33\] of the paper): evict the
/// key whose second-most-recent access is oldest; keys with fewer than two
/// accesses evict first
/// (infinite backward K-distance), LRU among themselves.
pub struct LruK {
    cap: usize,
    k: usize,
    clock: u64,
    history: HashMap<u64, VecDeque<u64>>,
    /// (priority = Kth-most-recent stamp or 0, tiebreak stamp, key)
    order: BTreeSet<(u64, u64, u64)>,
    prio_of: HashMap<u64, (u64, u64)>,
}

impl LruK {
    pub fn new(cap: usize, k: usize) -> Self {
        assert!(cap > 0 && k >= 1);
        Self {
            cap,
            k,
            clock: 0,
            history: HashMap::new(),
            order: BTreeSet::new(),
            prio_of: HashMap::new(),
        }
    }

    fn reprioritize(&mut self, key: u64) {
        let hist = self.history.get(&key).expect("resident key has history");
        let prio = if hist.len() >= self.k { *hist.front().expect("k >= 1") } else { 0 };
        if let Some(&(p, t)) = self.prio_of.get(&key) {
            self.order.remove(&(p, t, key));
        }
        self.order.insert((prio, self.clock, key));
        self.prio_of.insert(key, (prio, self.clock));
    }
}

impl CachePolicy for LruK {
    fn access(&mut self, key: u64) -> bool {
        self.clock += 1;
        let hit = self.prio_of.contains_key(&key);
        {
            let hist = self.history.entry(key).or_default();
            hist.push_back(self.clock);
            while hist.len() > self.k {
                hist.pop_front();
            }
        }
        if hit {
            self.reprioritize(key);
            return true;
        }
        if self.prio_of.len() == self.cap {
            let &(p, t, victim) = self.order.iter().next().expect("nonempty");
            self.order.remove(&(p, t, victim));
            self.prio_of.remove(&victim);
            // History is retained (the LRU-K retained-information policy).
        }
        self.reprioritize(key);
        false
    }

    fn name(&self) -> &'static str {
        "LRU_2"
    }
}

/// CLOCK (second-chance FIFO with reference bits).
pub struct Clock {
    cap: usize,
    slots: Vec<(u64, bool)>,
    index: HashMap<u64, usize>,
    hand: usize,
}

impl Clock {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        Self { cap, slots: Vec::new(), index: HashMap::new(), hand: 0 }
    }
}

impl CachePolicy for Clock {
    fn access(&mut self, key: u64) -> bool {
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].1 = true;
            return true;
        }
        if self.slots.len() < self.cap {
            self.index.insert(key, self.slots.len());
            self.slots.push((key, false));
            return false;
        }
        // Advance the hand until a clear reference bit is found.
        loop {
            let (victim, referenced) = self.slots[self.hand];
            if referenced {
                self.slots[self.hand].1 = false;
                self.hand = (self.hand + 1) % self.cap;
            } else {
                self.index.remove(&victim);
                self.slots[self.hand] = (key, false);
                self.index.insert(key, self.hand);
                self.hand = (self.hand + 1) % self.cap;
                return false;
            }
        }
    }

    fn name(&self) -> &'static str {
        "CLOCK"
    }
}

/// The HybridLog caching behavior (§6.4, §7.5).
///
/// A logical log of `cap` slots; `head = tail − cap`; the read-only marker
/// sits at `tail − mutable_lag`. An access to a key whose newest copy is:
/// * at/above the marker (mutable): hit, no movement (in-place update);
/// * between head and marker (read-only): hit, **copied to the tail**
///   (second chance — and the source of key replication);
/// * below head (evicted): miss, appended at the tail.
pub struct HLog {
    cap: u64,
    mutable_lag: u64,
    tail: u64,
    newest: HashMap<u64, u64>,
    /// Log positions -> key, for head eviction bookkeeping.
    log: VecDeque<(u64, u64)>, // (position, key)
}

impl HLog {
    /// `mutable_fraction` is the paper's IPU split (default 0.9).
    pub fn new(cap: usize, mutable_fraction: f64) -> Self {
        assert!(cap > 0);
        assert!((0.0..=1.0).contains(&mutable_fraction));
        Self {
            cap: cap as u64,
            mutable_lag: ((cap as f64) * mutable_fraction).round().max(1.0) as u64,
            tail: 0,
            newest: HashMap::new(),
            log: VecDeque::new(),
        }
    }

    fn append(&mut self, key: u64) {
        let pos = self.tail;
        self.tail += 1;
        self.log.push_back((pos, key));
        self.newest.insert(key, pos);
        // Evict below the head.
        let head = self.tail.saturating_sub(self.cap);
        while let Some(&(p, k)) = self.log.front() {
            if p >= head {
                break;
            }
            self.log.pop_front();
            if self.newest.get(&k) == Some(&p) {
                self.newest.remove(&k);
            }
        }
    }
}

impl CachePolicy for HLog {
    fn access(&mut self, key: u64) -> bool {
        let head = self.tail.saturating_sub(self.cap);
        let ro = self.tail.saturating_sub(self.mutable_lag);
        match self.newest.get(&key) {
            Some(&pos) if pos >= ro => true, // mutable: in-place
            Some(&pos) if pos >= head => {
                // Read-only: second chance — copy to tail.
                self.append(key);
                true
            }
            _ => {
                self.append(key);
                false
            }
        }
    }

    fn name(&self) -> &'static str {
        "HLOG"
    }
}

/// Runs `trace` through `policy` and returns the miss ratio.
pub fn miss_ratio<P: CachePolicy + ?Sized>(policy: &mut P, trace: impl Iterator<Item = u64>) -> f64 {
    let mut total = 0u64;
    let mut misses = 0u64;
    for key in trace {
        total += 1;
        if !policy.access(key) {
            misses += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        misses as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(keys: &[u64]) -> impl Iterator<Item = u64> + '_ {
        keys.iter().copied()
    }

    #[test]
    fn fifo_evicts_in_order() {
        let mut f = Fifo::new(2);
        assert!(!f.access(1));
        assert!(!f.access(2));
        assert!(f.access(1));
        assert!(!f.access(3)); // evicts 1 (FIFO ignores recency)
        assert!(!f.access(1));
        assert!(f.access(3));
    }

    #[test]
    fn lru_respects_recency() {
        let mut l = Lru::new(2);
        l.access(1);
        l.access(2);
        l.access(1); // 1 is now most recent
        assert!(!l.access(3)); // evicts 2
        assert!(l.access(1));
        assert!(!l.access(2));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut c = Clock::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // ref bit set on 1
        assert!(!c.access(3)); // hand clears 1's bit, evicts 2
        assert!(c.access(1), "referenced key survived");
    }

    #[test]
    fn hlog_second_chance_and_replication() {
        // cap 4, mutable lag 2 => positions [tail-2, tail) are mutable.
        let mut h = HLog::new(4, 0.5);
        for k in 1..=4u64 {
            assert!(!h.access(k)); // cold fills: positions 0..3
        }
        // Key 1 (pos 0) is in the read-only region: hit + copy to pos 4.
        assert!(h.access(1));
        // Miss on 5 appends pos 5; the head advance evicts key 2's only copy
        // - key 1's second chance (replication) displaced it.
        assert!(!h.access(5));
        assert!(!h.access(2), "1's second chance displaced 2");
    }


    #[test]
    fn miss_ratio_counts() {
        let mut f = Fifo::new(10);
        let trace = [1u64, 2, 3, 1, 2, 3];
        assert!((miss_ratio(&mut f, seq(&trace)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn all_policies_perfect_when_cache_fits() {
        let keys: Vec<u64> = (0..50).chain(0..50).collect();
        let policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(Fifo::new(64)),
            Box::new(Lru::new(64)),
            Box::new(LruK::new(64, 2)),
            Box::new(Clock::new(64)),
        ];
        for mut p in policies {
            let mut misses = 0;
            for &k in &keys {
                if !p.access(k) {
                    misses += 1;
                }
            }
            assert_eq!(misses, 50, "{} must only miss cold accesses", p.name());
        }
        // HLOG replicates, so give it 2x slack and it still holds 50 keys.
        let mut h = HLog::new(128, 0.9);
        let mut misses = 0;
        for &k in &keys {
            if !h.access(k) {
                misses += 1;
            }
        }
        assert_eq!(misses, 50);
    }

    #[test]
    fn lru2_scan_resistance() {
        // LRU-2's claim to fame: a sequential scan does not flush the hot
        // set, because scanned-once keys have infinite K-distance.
        let mut l2 = LruK::new(8, 2);
        let mut l1 = Lru::new(8);
        // Warm 4 hot keys with two accesses each.
        for _ in 0..2 {
            for k in 0..4u64 {
                l2.access(k);
                l1.access(k);
            }
        }
        // Scan 100 cold keys.
        for k in 1000..1100u64 {
            l2.access(k);
            l1.access(k);
        }
        // Hot keys survive under LRU-2, died under LRU-1.
        let l2_hits = (0..4u64).filter(|&k| l2.access(k)).count();
        let l1_hits = (0..4u64).filter(|&k| l1.access(k)).count();
        assert!(l2_hits > l1_hits, "LRU-2 {l2_hits} vs LRU-1 {l1_hits}");
        assert_eq!(l2_hits, 4);
    }
}
