//! # faster-stress
//!
//! A deterministic concurrency stress harness in the spirit of `loom` /
//! `shuttle`, but dependency-free (this workspace builds offline). Instead of
//! intercepting atomics, the harness runs *virtual threads* — closures that
//! perform one bounded protocol step per call — under a seeded cooperative
//! [`Scheduler`]. Because every interleaving decision comes from the seed (or
//! from a replayed script), a failing schedule is a pure value: it can be
//! printed, [shrunk](shrink_schedule) to a minimal reproducer with ddmin, and
//! replayed forever as a regression test.
//!
//! This is how the index-resize livelock (Appendix B claim protocol; see
//! `faster-index`'s resize module) is kept fixed: the regression test drives
//! the *legacy* freeze rule (`CAS 0 → −∞`, no claim intent) and the
//! production [`faster_index::ChunkPins`] protocol under identical replayed
//! schedules, asserting the former starves and the latter completes.
//!
//! ## Model
//!
//! * A **virtual thread** is `FnMut() -> Step`. Each call performs one step
//!   and reports [`Step::Progress`] (did real work), [`Step::Stalled`]
//!   (spinning/waiting on another thread), or [`Step::Done`].
//! * The [`Scheduler`] repeatedly picks one live thread — scripted choices
//!   first, then seeded-random — and steps it, recording the choice in a
//!   trace, until every thread is done or a step budget is exhausted.
//! * Budget exhaustion with live threads is how a livelock manifests: the
//!   report says which threads were still live and how little progress each
//!   made.
//!
//! Virtual threads run on the *caller's* OS thread, one at a time — data
//! races are impossible by construction and every run with the same seed,
//! script, and budget is bit-identical. The price is that only schedules at
//! protocol-step granularity are explored (not instruction interleavings);
//! steps should therefore be kept as small as the protocol allows.

use faster_util::XorShift64;

/// What one virtual-thread step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Real work happened (resets livelock suspicion for this thread).
    Progress,
    /// The thread is waiting on another thread (spin/backoff iteration).
    Stalled,
    /// The thread finished; it will not be scheduled again.
    Done,
}

/// A virtual thread: performs one bounded protocol step per call.
pub type VThread<'a> = Box<dyn FnMut() -> Step + 'a>;

/// Why a [`Scheduler::run`] ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every virtual thread reported [`Step::Done`].
    Completed,
    /// The step budget ran out with these threads still live — the harness's
    /// definition of a livelock/starvation failure.
    BudgetExhausted { live: Vec<usize> },
}

/// The result of one scheduled run.
#[derive(Debug, Clone)]
pub struct Report {
    pub outcome: Outcome,
    /// Total steps executed.
    pub steps: usize,
    /// The schedule: which thread was chosen at each step. Feed back into
    /// [`Scheduler::replay`] to reproduce the run exactly.
    pub trace: Vec<usize>,
    /// Per-thread count of [`Step::Progress`] steps.
    pub progress: Vec<usize>,
}

impl Report {
    /// True if the run ended with live threads (budget exhausted).
    pub fn starved(&self) -> bool {
        matches!(self.outcome, Outcome::BudgetExhausted { .. })
    }
}

/// A deterministic cooperative scheduler over virtual threads.
pub struct Scheduler {
    rng: XorShift64,
    script: Vec<usize>,
    pos: usize,
}

impl Scheduler {
    /// Fully seeded-random scheduling.
    pub fn from_seed(seed: u64) -> Self {
        // XorShift64 must not be seeded with 0.
        Self { rng: XorShift64::new(seed | 1), script: Vec::new(), pos: 0 }
    }

    /// Follows `script` (a trace from a previous [`Report`]) verbatim, then
    /// falls back to seeded-random choices if the run outlives the script.
    /// A scripted choice naming a finished (or out-of-range) thread is
    /// remapped deterministically onto the live set, so shrunk scripts stay
    /// meaningful.
    pub fn replay(script: &[usize], tail_seed: u64) -> Self {
        Self { rng: XorShift64::new(tail_seed | 1), script: script.to_vec(), pos: 0 }
    }

    fn choose(&mut self, live: &[usize]) -> usize {
        debug_assert!(!live.is_empty());
        if self.pos < self.script.len() {
            let want = self.script[self.pos];
            self.pos += 1;
            if live.contains(&want) {
                want
            } else {
                live[want % live.len()]
            }
        } else {
            live[self.rng.next_below(live.len() as u64) as usize]
        }
    }

    /// Runs the virtual threads until all are done or `budget` steps elapse.
    pub fn run(&mut self, threads: &mut [VThread<'_>], budget: usize) -> Report {
        let n = threads.len();
        let mut live: Vec<usize> = (0..n).collect();
        let mut progress = vec![0usize; n];
        let mut trace = Vec::new();
        let mut steps = 0usize;
        while !live.is_empty() && steps < budget {
            let tid = self.choose(&live);
            trace.push(tid);
            steps += 1;
            match threads[tid]() {
                Step::Progress => progress[tid] += 1,
                Step::Stalled => {}
                Step::Done => live.retain(|&t| t != tid),
            }
        }
        let outcome = if live.is_empty() {
            Outcome::Completed
        } else {
            Outcome::BudgetExhausted { live }
        };
        Report { outcome, steps, trace, progress }
    }
}

/// Minimizes a failing schedule with ddmin (delta debugging): repeatedly
/// removes chunks of the trace while `fails` keeps returning true for the
/// remainder. `fails` must rebuild its virtual threads and replay the
/// candidate script from scratch on every call (the harness guarantees
/// replays are deterministic, so the predicate is too).
///
/// Returns a (locally) 1-minimal script: removing any single remaining chunk
/// of the final granularity makes the failure disappear.
pub fn shrink_schedule(trace: &[usize], mut fails: impl FnMut(&[usize]) -> bool) -> Vec<usize> {
    let mut current: Vec<usize> = trace.to_vec();
    debug_assert!(fails(&current), "shrink_schedule needs a failing input");
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<usize> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .copied()
                .collect();
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                reduced = true;
                // Re-test from the start at the same granularity.
                start = 0;
            } else {
                start = end;
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// Searches seeds for one whose run fails `check`; returns the first failing
/// seed with its report. Drives CI-style seed sweeps.
pub fn find_failure(
    seeds: impl IntoIterator<Item = u64>,
    mut run: impl FnMut(u64) -> Report,
    mut is_failure: impl FnMut(&Report) -> bool,
) -> Option<(u64, Report)> {
    for seed in seeds {
        let report = run(seed);
        if is_failure(&report) {
            return Some((seed, report));
        }
    }
    None
}

/// The seed range for this process: `FASTER_STRESS_SEED_BASE ..
/// FASTER_STRESS_SEED_BASE + FASTER_STRESS_SEEDS`, defaulting to
/// `0 .. default_count`. CI shards the sweep by setting the base per job.
pub fn seed_range_from_env(default_count: u64) -> std::ops::Range<u64> {
    let base = std::env::var("FASTER_STRESS_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let count = std::env::var("FASTER_STRESS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_count);
    base..base + count
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn same_seed_same_trace() {
        let mk = || {
            let counts: Vec<Cell<usize>> = (0..3).map(|_| Cell::new(0)).collect();
            let mut sched = Scheduler::from_seed(42);
            let mut threads: Vec<VThread<'_>> = counts
                .iter()
                .map(|c| {
                    Box::new(move || {
                        c.set(c.get() + 1);
                        if c.get() >= 10 {
                            Step::Done
                        } else {
                            Step::Progress
                        }
                    }) as VThread<'_>
                })
                .collect();
            let report = sched.run(&mut threads, 1000);
            drop(threads);
            (report.trace, counts.iter().map(Cell::get).collect::<Vec<_>>())
        };
        let (t1, c1) = mk();
        let (t2, c2) = mk();
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
        assert_eq!(c1, vec![10, 10, 10]);
    }

    #[test]
    fn replay_reproduces_and_remaps() {
        let script = vec![0, 1, 2, 7, 1, 0];
        let mut sched = Scheduler::replay(&script, 9);
        let hits = Cell::new(0usize);
        let mut threads: Vec<VThread<'_>> = (0..2)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.set(hits.get() + 1);
                    if hits.get() >= 6 {
                        Step::Done
                    } else {
                        Step::Progress
                    }
                }) as VThread<'_>
            })
            .collect();
        let report = sched.run(&mut threads, 100);
        // Choices 2 and 7 are out of range and remap onto the live set; the
        // run is still fully deterministic and completes.
        assert_eq!(report.trace.len(), report.steps);
        assert!(!report.starved());
    }

    #[test]
    fn shrink_finds_minimal_script() {
        // Failure predicate: the script schedules thread 1 at least twice.
        let fails =
            |script: &[usize]| script.iter().filter(|&&t| t == 1).count() >= 2;
        let noisy: Vec<usize> = vec![0, 0, 1, 0, 2, 2, 1, 0, 1, 2, 0, 1];
        let minimal = shrink_schedule(&noisy, |s| fails(s));
        assert_eq!(minimal, vec![1, 1]);
    }
}
