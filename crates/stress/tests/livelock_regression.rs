//! The resize-claim livelock as a failing-before / passing-after regression.
//!
//! Before the prioritized-claim protocol, a migrator froze a chunk with a
//! bare `CAS(pin_count: 0 → −∞)`. Under continuous traffic the count is
//! almost never zero at the instant of the CAS, so the migrator starves —
//! the livelock recorded in ROADMAP.md. This test:
//!
//! 1. models the *legacy* rule and searches seeds for a schedule where the
//!    migrator is scheduled many times, every pinner keeps completing
//!    pin/unpin cycles, and the claim still never succeeds (a livelock
//!    witness, not a mere blocked thread);
//! 2. shrinks that schedule with ddmin to a minimal reproducer;
//! 3. asserts the minimal schedule still starves the legacy protocol
//!    (failing-before);
//! 4. replays the same schedule against the production
//!    [`faster_index::ChunkPins`] protocol and asserts the migrator claims
//!    the chunk within a bounded number of extra steps (passing-after):
//!    its first claim attempt announces intent, pinners are refused from
//!    then on, and the pin count can only drain.

use faster_index::ChunkPins;
use faster_stress::{find_failure, shrink_schedule, Outcome, Report, Scheduler, Step, VThread};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, Ordering};

/// Pin-word operations, abstracted so the same actors can drive the legacy
/// and the production protocol.
trait PinModel {
    fn try_pin(&self) -> bool;
    fn unpin(&self);
    fn try_freeze(&self) -> bool;
}

/// The pre-fix protocol: freeze is a bare CAS(0 → −∞); pins have priority.
struct LegacyPins(AtomicI64);

impl LegacyPins {
    fn new() -> Self {
        Self(AtomicI64::new(0))
    }
}

impl PinModel for LegacyPins {
    fn try_pin(&self) -> bool {
        let mut v = self.0.load(Ordering::SeqCst);
        loop {
            if v < 0 {
                return false;
            }
            match self.0.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(cur) => v = cur,
            }
        }
    }

    fn unpin(&self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }

    fn try_freeze(&self) -> bool {
        self.0.compare_exchange(0, i64::MIN, Ordering::SeqCst, Ordering::SeqCst).is_ok()
    }
}

/// The production protocol (single chunk of the real implementation).
impl PinModel for ChunkPins {
    fn try_pin(&self) -> bool {
        ChunkPins::try_pin(self, 0)
    }

    fn unpin(&self) {
        ChunkPins::unpin(self, 0)
    }

    fn try_freeze(&self) -> bool {
        ChunkPins::try_freeze(self, 0)
    }
}

const N_PINNERS: usize = 2;
/// Steps a pinner works while holding its pin before releasing it.
const HOLD_STEPS: usize = 2;

#[derive(Default)]
struct PinnerStats {
    /// Completed pin → hold → unpin cycles.
    cycles: Cell<usize>,
    /// The pinner was refused a pin (migration announced priority).
    refused: Cell<bool>,
}

#[derive(Default)]
struct MigratorStats {
    attempts: Cell<usize>,
    claimed: Cell<bool>,
}

/// Builds the actor set: `N_PINNERS` operation threads that pin, work
/// `HOLD_STEPS` steps, then release-and-immediately-re-pin *within one step*
/// — modelling a saturated operation stream, where the gap between one op's
/// unpin and the next op's pin is a few instructions and is never observable
/// at the freeze CAS — plus one migrator that attempts to claim the chunk
/// every time it is scheduled.
fn build_threads<'a, M: PinModel>(
    model: &'a M,
    pinners: &'a [PinnerStats],
    migrator: &'a MigratorStats,
) -> Vec<VThread<'a>> {
    let mut threads: Vec<VThread<'a>> = pinners
        .iter()
        .map(|stats| {
            let mut holding = false;
            let mut held = 0usize;
            Box::new(move || {
                if holding && held < HOLD_STEPS {
                    held += 1;
                    return Step::Progress;
                }
                if holding {
                    // End of one operation, start of the next: the unpin and
                    // the re-pin land in the same scheduler step.
                    model.unpin();
                    holding = false;
                    stats.cycles.set(stats.cycles.get() + 1);
                }
                if model.try_pin() {
                    holding = true;
                    held = 0;
                    Step::Progress
                } else {
                    // Refused: in the real index the operation re-reads the
                    // status and takes the resizing path.
                    stats.refused.set(true);
                    Step::Done
                }
            }) as VThread<'a>
        })
        .collect();
    threads.push(Box::new(move || {
        migrator.attempts.set(migrator.attempts.get() + 1);
        if model.try_freeze() {
            migrator.claimed.set(true);
            Step::Done
        } else {
            Step::Stalled
        }
    }));
    threads
}

/// A report witnesses the livelock if the migrator tried often and never
/// claimed while every pinner kept making full cycles (so nothing was merely
/// blocked — the system was busy and the claim still starved).
fn is_livelock(report: &Report, pinners: &[PinnerStats], migrator: &MigratorStats) -> bool {
    report.starved()
        && !migrator.claimed.get()
        && migrator.attempts.get() >= 5
        && pinners.iter().all(|p| p.cycles.get() >= 2)
}

fn run_legacy(mut sched: Scheduler, budget: usize) -> (Report, Vec<PinnerStats>, MigratorStats) {
    let model = LegacyPins::new();
    let pinners: Vec<PinnerStats> = (0..N_PINNERS).map(|_| PinnerStats::default()).collect();
    let migrator = MigratorStats::default();
    let report = {
        let mut threads = build_threads(&model, &pinners, &migrator);
        sched.run(&mut threads, budget)
    };
    (report, pinners, migrator)
}

#[test]
fn legacy_claim_livelocks_and_prioritized_claim_completes() {
    const BUDGET: usize = 400;

    // 1. Find a schedule that starves the legacy protocol.
    let found = find_failure(
        faster_stress::seed_range_from_env(64),
        |seed| {
            let (report, pinners, migrator) = run_legacy(Scheduler::from_seed(seed), BUDGET);
            // Fold the actor-stats part of the livelock predicate into the
            // report: a starved-but-not-livelocked run is downgraded so the
            // `is_failure` check below only fires on true witnesses.
            if is_livelock(&report, &pinners, &migrator) {
                report
            } else {
                Report { outcome: Outcome::Completed, ..report }
            }
        },
        |report| report.starved(),
    );
    let (seed, report) = found.expect(
        "no livelock schedule found for the legacy claim protocol — \
         widen the seed range or the model has changed",
    );

    // 2. Shrink the witness to a minimal schedule. Replays are pure-script
    // (budget = script length), so the predicate is deterministic.
    let minimal = shrink_schedule(&report.trace, |script| {
        let (r, p, m) = run_legacy(Scheduler::replay(script, seed), script.len());
        is_livelock(&r, &p, &m)
    });
    assert!(!minimal.is_empty());

    // 3. Failing-before: the minimal schedule still starves the legacy rule.
    let (legacy_report, legacy_pinners, legacy_migrator) =
        run_legacy(Scheduler::replay(&minimal, seed), minimal.len());
    assert!(
        is_livelock(&legacy_report, &legacy_pinners, &legacy_migrator),
        "shrunk schedule no longer reproduces the legacy livelock: {minimal:?}"
    );

    // 4. Passing-after: the same schedule (plus a bounded seeded tail for the
    // drain) lets the prioritized protocol claim the chunk.
    let model = ChunkPins::new(1);
    let pinners: Vec<PinnerStats> = (0..N_PINNERS).map(|_| PinnerStats::default()).collect();
    let migrator = MigratorStats::default();
    let budget = minimal.len() + 64;
    let prio_report = {
        let mut threads = build_threads(&model, &pinners, &migrator);
        Scheduler::replay(&minimal, seed).run(&mut threads, budget)
    };
    assert_eq!(
        prio_report.outcome,
        Outcome::Completed,
        "prioritized protocol must complete under the legacy livelock schedule \
         (minimal schedule {minimal:?}, migrator attempts {})",
        migrator.attempts.get()
    );
    assert!(migrator.claimed.get(), "migrator must win the chunk");
    // Priority is real: every pinner was eventually refused (intent stuck).
    assert!(pinners.iter().all(|p| p.refused.get()));
}

/// Direct protocol-invariant check, step by step, no scheduler: once intent
/// is announced, pins only drain; freeze succeeds exactly at zero.
#[test]
fn intent_drains_pins_deterministically() {
    let pins = ChunkPins::new(1);
    assert!(PinModel::try_pin(&pins));
    assert!(PinModel::try_pin(&pins));
    assert_eq!(pins.pin_count(0), 2);

    // Claim attempt with pinners present: announces intent, cannot freeze.
    assert!(!PinModel::try_freeze(&pins));
    assert!(pins.has_intent(0));
    assert!(!pins.is_frozen(0));

    // New pins are refused from now on — the count is non-increasing.
    assert!(!PinModel::try_pin(&pins));
    PinModel::unpin(&pins);
    assert!(!PinModel::try_freeze(&pins), "one pin still outstanding");
    assert!(!PinModel::try_pin(&pins));
    PinModel::unpin(&pins);
    assert_eq!(pins.pin_count(0), 0);

    // Drained: the freeze lands; a second claimant must lose.
    assert!(PinModel::try_freeze(&pins));
    assert!(pins.is_frozen(0));
    assert!(!PinModel::try_freeze(&pins));
    assert!(!PinModel::try_pin(&pins));
}
