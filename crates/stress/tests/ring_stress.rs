//! Seeded stress of the completion ring's submit/reap protocol: several
//! producer vthreads complete ring-routed SQEs (success and failure
//! results interleaved) while a reaper vthread drains the ring, all under
//! the deterministic scheduler. Every schedule must deliver every CQE
//! exactly once, preserve each producer's submission order in the reaped
//! sequence (the Treiber-stack grab-all reverses back to FIFO), and carry
//! error results through unchanged.
//!
//! A second, free-running test hammers the same ring from real OS threads
//! — the interleavings are no longer deterministic, but the exactly-once
//! and per-producer-FIFO invariants still must hold, and the blocking
//! `wait_nonempty` consumer path gets exercised under genuine contention.

use faster_storage::{CompletionRing, Cqe, IoError, Sqe};
use faster_stress::{seed_range_from_env, Scheduler, Step, VThread};
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Duration;

const PRODUCERS: usize = 4;
const ITEMS_PER_PRODUCER: u64 = 64;

/// Producer `p`'s `i`-th completion gets this globally unique SQE id.
fn sqe_id(p: usize, i: u64) -> u64 {
    (p as u64) << 32 | i
}

/// Completes one ring-routed SQE the way a device would: build the SQE,
/// split it, and call `complete` — odd ids fail, even ids succeed with a
/// payload that encodes the id.
fn complete_one(ring: &Arc<CompletionRing>, id: u64) {
    let sqe = Sqe::read(id, id * 8, 8, ring);
    let (_op, completion) = sqe.into_parts();
    if id % 2 == 1 {
        completion.complete(Err(IoError::Failed(format!("injected #{id}"))));
    } else {
        completion.complete(Ok(id.to_le_bytes().to_vec()));
    }
}

/// Checks the reaped sequence: every expected id exactly once, each
/// producer's ids in submission order, payloads/errors intact.
fn check_reaped(reaped: &[Cqe]) {
    assert_eq!(reaped.len(), PRODUCERS * ITEMS_PER_PRODUCER as usize, "lost or duplicated CQEs");
    let mut next = [0u64; PRODUCERS];
    for cqe in reaped {
        let (p, i) = ((cqe.id >> 32) as usize, cqe.id & u32::MAX as u64);
        assert_eq!(i, next[p], "producer {p} CQEs reaped out of submission order");
        next[p] += 1;
        match &cqe.result {
            Ok(bytes) => {
                assert_eq!(cqe.id % 2, 0);
                assert_eq!(bytes.as_slice(), &cqe.id.to_le_bytes());
            }
            Err(IoError::Failed(msg)) => {
                assert_eq!(cqe.id % 2, 1);
                assert_eq!(msg, &format!("injected #{}", cqe.id));
            }
            Err(other) => panic!("unexpected error kind through the ring: {other:?}"),
        }
    }
    assert!(next.iter().all(|&n| n == ITEMS_PER_PRODUCER));
}

/// One seeded schedule: producers push, the reaper drains, invariants hold.
fn run_schedule(seed: u64) -> usize {
    let ring = Arc::new(CompletionRing::new());
    let total = PRODUCERS * ITEMS_PER_PRODUCER as usize;
    let reaped: RefCell<Vec<Cqe>> = RefCell::new(Vec::new());
    let scratch: RefCell<Vec<Cqe>> = RefCell::new(Vec::new());

    let mut threads: Vec<VThread<'_>> = Vec::new();
    for p in 0..PRODUCERS {
        let ring = Arc::clone(&ring);
        let i = Cell::new(0u64);
        threads.push(Box::new(move || {
            if i.get() == ITEMS_PER_PRODUCER {
                return Step::Done;
            }
            complete_one(&ring, sqe_id(p, i.get()));
            i.set(i.get() + 1);
            Step::Progress
        }));
    }
    {
        let ring = Arc::clone(&ring);
        let reaped = &reaped;
        let scratch = &scratch;
        threads.push(Box::new(move || {
            if reaped.borrow().len() == total {
                return Step::Done;
            }
            let mut buf = scratch.borrow_mut();
            if ring.reap(&mut buf) == 0 {
                return Step::Stalled;
            }
            reaped.borrow_mut().append(&mut buf);
            Step::Progress
        }));
    }

    let report = Scheduler::from_seed(seed).run(&mut threads, total * 40);
    drop(threads);
    assert!(!report.starved(), "seed {seed}: ring schedule starved ({report:?})");
    check_reaped(&reaped.borrow());
    report.steps
}

#[test]
fn seeded_schedules_deliver_every_cqe_exactly_once() {
    for seed in seed_range_from_env(64) {
        run_schedule(seed);
    }
}

#[test]
fn same_seed_same_schedule() {
    assert_eq!(run_schedule(7), run_schedule(7));
}

#[test]
fn real_threads_hammer_submit_reap() {
    let ring = Arc::new(CompletionRing::new());
    let per_thread = 5_000u64;
    let total = PRODUCERS * per_thread as usize;
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    complete_one(&ring, sqe_id(p, i));
                }
            })
        })
        .collect();

    let mut reaped = Vec::with_capacity(total);
    let mut buf = Vec::new();
    while reaped.len() < total {
        if ring.reap(&mut buf) == 0 {
            ring.wait_nonempty(Duration::from_millis(1));
            continue;
        }
        reaped.append(&mut buf);
    }
    for h in producers {
        h.join().expect("producer");
    }
    assert!(ring.is_empty());

    assert_eq!(reaped.len(), total);
    let mut next = [0u64; PRODUCERS];
    for cqe in &reaped {
        let (p, i) = ((cqe.id >> 32) as usize, cqe.id & u32::MAX as u64);
        assert_eq!(i, next[p], "producer {p} CQEs reaped out of submission order");
        next[p] += 1;
        assert_eq!(cqe.result.is_ok(), cqe.id % 2 == 0);
    }
}
