//! Seeded op-granular stress of the real `HashIndex`: writers, a reader, a
//! tentative-insert straddler, and a resizer (grow ⇄ shrink) interleaved by
//! the deterministic scheduler. Every inserted key must stay reachable
//! through every interleaving, including tentative claims that straddle a
//! full resize (the `collect_entries` displacement case fixed by
//! finalize-time validation).
//!
//! Each virtual-thread step is one complete index operation, so no step ever
//! holds a chunk pin across a scheduler switch — which is what lets the
//! resizer run `grow`/`shrink` to completion synchronously inside its own
//! step (no other actor holds an epoch guard either; all ops are guardless).
//! The one state carried across steps is the straddler's tentative
//! `CreatedEntry`, deliberately spanning resizes.

use faster_epoch::Epoch;
use faster_index::{CreateOutcome, HashIndex, IndexConfig, RecordAccess};
use faster_stress::{Scheduler, Step, VThread};
use faster_util::{Address, KeyHash};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Minimal in-memory record allocator: every record stays resident, so
/// migration relinks chains without disk tails or meta records.
#[derive(Default)]
struct MemRecords {
    next: AtomicU64,
    recs: Mutex<HashMap<u64, (KeyHash, Address)>>,
}

impl MemRecords {
    fn alloc(&self, hash: KeyHash, prev: Address) -> Address {
        let raw = self.next.fetch_add(1, Ordering::SeqCst) + 1;
        self.recs.lock().unwrap().insert(raw, (hash, prev));
        Address::new(raw)
    }

    fn chain(&self, head: Address) -> Vec<Address> {
        let recs = self.recs.lock().unwrap();
        let mut out = Vec::new();
        let mut cur = head;
        while cur.is_valid() {
            out.push(cur);
            cur = recs.get(&cur.raw()).expect("resident record").1;
        }
        out
    }
}

impl RecordAccess for MemRecords {
    fn record_hash(&self, addr: Address) -> Option<KeyHash> {
        self.recs.lock().unwrap().get(&addr.raw()).map(|r| r.0)
    }

    fn record_prev(&self, addr: Address) -> Address {
        self.recs.lock().unwrap()[&addr.raw()].1
    }

    fn set_record_prev(&self, addr: Address, prev: Address) {
        self.recs.lock().unwrap().get_mut(&addr.raw()).expect("resident record").1 = prev;
    }

    fn try_alloc_merge_meta(&self, _guard: Option<&faster_epoch::EpochGuard>) -> Option<Address> {
        unreachable!("all records mutable in this stress test")
    }
    fn set_merge_meta(&self, _meta: Address, _a: Address, _b: Address) {
        unreachable!("all records mutable in this stress test")
    }
}

/// Upsert `key` as one atomic step: route, link the new record ahead of any
/// existing chain head, publish.
fn upsert(index: &HashIndex, recs: &MemRecords, key: u64) -> Address {
    let hash = KeyHash::of_u64(key);
    loop {
        match index.find_or_create_tag(hash, None) {
            CreateOutcome::Found(slot) => {
                let cur = slot.load();
                let addr = recs.alloc(hash, cur.address());
                if slot.cas_address(cur, addr).is_ok() {
                    return addr;
                }
            }
            CreateOutcome::Created(created) => {
                let addr = recs.alloc(hash, Address::INVALID);
                created.finalize(addr);
                return addr;
            }
        }
    }
}

fn assert_reachable(index: &HashIndex, recs: &MemRecords, key: u64, addr: Address, ctx: &str) {
    let hash = KeyHash::of_u64(key);
    let slot = index
        .find_tag(hash, None)
        .unwrap_or_else(|| panic!("{ctx}: no index entry for key {key}"));
    let chain = recs.chain(slot.load().address());
    assert!(
        chain.contains(&addr),
        "{ctx}: key {key} record {addr:?} unreachable (chain {chain:?})"
    );
}

fn run_case(seed: u64) -> Vec<usize> {
    let epoch = Epoch::new(16);
    let index =
        HashIndex::new(IndexConfig { k_bits: 3, tag_bits: 15, max_resize_chunks: 4 }, epoch);
    let recs = std::sync::Arc::new(MemRecords::default());
    // key -> latest record address, shared by writers/reader/straddler.
    let committed: RefCell<HashMap<u64, Address>> = RefCell::new(HashMap::new());
    let mut rng = faster_util::XorShift64::new(seed.wrapping_mul(0x9e3779b9) | 1);

    let report = {
        let mut threads: Vec<VThread<'_>> = Vec::new();
        // Two writers on disjoint key spaces.
        for w in 0..2u64 {
            let index = &index;
            let recs = &recs;
            let committed = &committed;
            let mut next = 0u64;
            threads.push(Box::new(move || {
                if next >= 40 {
                    return Step::Done;
                }
                let key = w * 1_000 + next;
                next += 1;
                let addr = upsert(index, recs, key);
                committed.borrow_mut().insert(key, addr);
                Step::Progress
            }));
        }
        // A reader validating a pseudo-random committed key each step.
        {
            let index = &index;
            let recs = &recs;
            let committed = &committed;
            let mut picks = rng.next_u64() | 1;
            let mut reads = 0u32;
            threads.push(Box::new(move || {
                if reads >= 60 {
                    return Step::Done;
                }
                reads += 1;
                let map = committed.borrow();
                if map.is_empty() {
                    return Step::Stalled;
                }
                picks ^= picks << 13;
                picks ^= picks >> 7;
                picks ^= picks << 17;
                let (key, addr) = map
                    .iter()
                    .nth((picks % map.len() as u64) as usize)
                    .map(|(k, a)| (*k, *a))
                    .expect("nonempty");
                drop(map);
                assert_reachable(index, recs, key, addr, "mid-run read");
                Step::Progress
            }));
        }
        // The straddler: claims a tentative entry in one step, finalizes it
        // in a later one — spanning whatever resizes the scheduler interleaves.
        {
            let index = &index;
            let recs = &recs;
            let committed = &committed;
            let mut pending: Option<(u64, faster_index::CreatedEntry<'_>)> = None;
            let mut next = 0u64;
            threads.push(Box::new(move || {
                match pending.take() {
                    Some((key, created)) => {
                        let hash = KeyHash::of_u64(key);
                        let addr = recs.alloc(hash, Address::INVALID);
                        created.finalize(addr);
                        committed.borrow_mut().insert(key, addr);
                        Step::Progress
                    }
                    None => {
                        if next >= 15 {
                            return Step::Done;
                        }
                        let key = 5_000 + next;
                        next += 1;
                        let hash = KeyHash::of_u64(key);
                        match index.find_or_create_tag(hash, None) {
                            CreateOutcome::Created(created) => {
                                pending = Some((key, created));
                                Step::Progress
                            }
                            CreateOutcome::Found(slot) => {
                                // Tag collision with an earlier key: treat as
                                // a plain upsert instead.
                                let cur = slot.load();
                                let addr = recs.alloc(hash, cur.address());
                                slot.cas_address(cur, addr).expect("single-threaded step");
                                committed.borrow_mut().insert(key, addr);
                                Step::Progress
                            }
                        }
                    }
                }
            }));
        }
        // The resizer: each step completes one full grow or shrink.
        {
            let index = &index;
            let recs = recs.clone();
            let mut resizes = 0u32;
            let mut grow_next = true;
            threads.push(Box::new(move || {
                if resizes >= 6 {
                    return Step::Done;
                }
                resizes += 1;
                let access: std::sync::Arc<dyn RecordAccess> = recs.clone();
                let ok = if grow_next {
                    index.grow(access, None)
                } else {
                    index.shrink(access, None)
                };
                assert!(ok, "resize must start from a stable phase between steps");
                grow_next = !grow_next;
                Step::Progress
            }));
        }

        Scheduler::from_seed(seed).run(&mut threads, 5_000)
    };
    assert!(!report.starved(), "index stress starved at seed {seed}: {:?}", report.outcome);

    // Quiesced: every committed key must be reachable in the final table.
    for (key, addr) in committed.borrow().iter() {
        assert_reachable(&index, &recs, *key, *addr, &format!("final check (seed {seed})"));
    }
    report.trace
}

#[test]
fn seeded_ops_with_resizes_preserve_all_keys() {
    for seed in faster_stress::seed_range_from_env(16) {
        run_case(seed);
    }
}

#[test]
fn index_stress_is_deterministic() {
    let a = run_case(7);
    let b = run_case(7);
    assert_eq!(a, b, "same seed must give an identical schedule");
}
