//! # faster-hlog
//!
//! **HybridLog** (§5–§6): a log-structured record allocator spanning main
//! memory and storage that supports latch-free in-place updates of the hot
//! tail, read-copy-update of the warm read-only region, and asynchronous
//! retrieval of cold records from storage.
//!
//! ## Logical address space (§5.1, Fig 4/5)
//!
//! Records live at 48-bit logical addresses. The *tail offset* points at the
//! next free address; the *head offset* tracks the lowest address resident in
//! the in-memory circular buffer of page frames. Between them, HybridLog adds
//! the *read-only offset* and — to defeat the lost-update anomaly of §6.2 —
//! the *safe read-only offset*, giving four regions:
//!
//! ```text
//!  begin      head      safe_ro        ro           tail
//!    |  disk   |  read-only  |  fuzzy   |  mutable   |
//! ```
//!
//! * **mutable** (`addr ≥ ro`): update in place, latch-free;
//! * **fuzzy** (`safe_ro ≤ addr < ro`): some threads may still believe the
//!   address is mutable — RMWs must go pending, blind updates may RCU (§6.3);
//! * **read-only** (`head ≤ addr < safe_ro`): immutable in memory; update via
//!   copy to tail (RCU); pages here flush to storage and become evictable;
//! * **disk** (`addr < head`): retrieve with an asynchronous device read.
//!
//! ## Maintenance is epoch-triggered (§5.2)
//!
//! Crossing a page boundary advances the read-only offset and announces, via
//! an epoch trigger action, the advance of the *safe* read-only offset —
//! which in turn issues page flushes. Flush completions raise the
//! flushed-until frontier, which allows the head offset to advance; the head
//! advance's trigger action marks frames closed for reuse. No page is ever
//! flushed while a thread could still write it, and no frame is reused while
//! a thread could still read it — both guaranteed by epoch safety, with no
//! page latches anywhere.
//!
//! Setting the mutable fraction to zero yields exactly the append-only log
//! allocator of §5; setting it to one (with a large buffer) yields a pure
//! in-memory store. The same code path serves all three tables of Fig 1.

pub mod checksum;
mod flush;
mod frame;
pub mod scan;

pub use scan::LogScanner;

use checksum::ParsedFooter;
use faster_epoch::{Epoch, EpochGuard};
use faster_metrics::HlogMetrics;
use faster_storage::{CompletionRing, Cqe, Device, IoError, ReadCallback, Sqe};
use faster_util::{Address, Backoff};
use flush::FlushTracker;
use frame::Frame;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Flush attempts per page before the page is quarantined (mirrors the read
/// path's `MAX_IO_RETRIES` in the session pending-op machinery).
const MAX_FLUSH_RETRIES: u32 = 8;

/// A storage fault the log survived but the store layer must hear about
/// (see [`HybridLog::set_fault_hook`]).
#[derive(Debug, Clone)]
pub enum LogFault {
    /// A page flush exhausted its retry budget (or hit a permanent error
    /// such as device-full): the frontier advanced past the page so
    /// allocation never wedges, but its on-disk bytes are untrusted and
    /// reads of it return [`IoError::Corrupt`]. The store should stop
    /// accepting new mutations.
    PageQuarantined { page: u64, error: IoError },
    /// A cold read's bytes failed checksum verification at this logical
    /// address; the read returned [`IoError::Corrupt`] instead of data.
    CorruptRead { offset: u64 },
}

/// Callback invoked when the log detects a storage fault.
type FaultHook = Box<dyn Fn(&LogFault) + Send + Sync>;

/// Flush-machinery state for diagnosis: when the frontier stalls or jumps,
/// this names the pages responsible (satellite of the resilience work —
/// previously `FlushTracker`'s internals were `#[cfg(test)]`-only).
#[derive(Debug, Clone)]
pub struct FlushDebug {
    /// Next page whose completion would advance the contiguous frontier.
    pub frontier_page: u64,
    /// Pages completed out of order above the frontier; a stalled frontier
    /// means pages in `frontier_page..min(pending)` are still in flight.
    pub pending_above_frontier: Vec<u64>,
    /// Pages quarantined after flush-retry exhaustion (untrusted on disk).
    pub quarantined: Vec<u64>,
    /// Flush attempts currently in flight (including retry chains).
    pub inflight: u64,
}

/// Issue-time plan for a verified cold read (built by
/// [`HybridLog::make_read_sqe`]): the device span is group-aligned so the
/// returned bytes can be checked against the page's checksum footer before
/// the record is extracted. Opaque to callers — hold it next to the pending
/// op and hand it back to [`HybridLog::verify_extract`] with the CQE bytes.
#[derive(Debug)]
pub struct ReadSpan {
    page: u64,
    /// Page offset of the first byte read (group-aligned).
    span_start: u64,
    /// Record position within the returned bytes.
    rec_off: usize,
    rec_len: usize,
    /// Footer cached at issue time; `None` = the span extends through the
    /// on-disk footer (first cold read of a recovered page).
    footer: Option<Arc<ParsedFooter>>,
}

/// Which region of the hybrid log an address falls in (Table 1 / Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `addr >= read_only`: update in place.
    Mutable,
    /// `safe_read_only <= addr < read_only`: handle per update type (§6.3).
    Fuzzy,
    /// `head <= addr < safe_read_only`: immutable in memory; RCU to tail.
    ReadOnly,
    /// `addr < head`: issue an asynchronous I/O request.
    OnDisk,
}

/// Configuration of a [`HybridLog`].
#[derive(Debug, Clone, Copy)]
pub struct HLogConfig {
    /// Page size is `2^page_bits` bytes (the paper evaluates 4 MB = 22).
    pub page_bits: u32,
    /// Number of page frames in the circular buffer (power of two).
    pub buffer_pages: u64,
    /// Pages of lag between the tail and the read-only offset: the size of
    /// the mutable (in-place update, "IPU") region. `0` = append-only log
    /// (§5); `buffer_pages` = fully mutable / pure in-memory.
    pub mutable_pages: u64,
    /// I/O worker threads (informational; the device owns its own pool).
    pub io_threads: usize,
}

impl HLogConfig {
    /// A small configuration suitable for tests.
    pub fn small() -> Self {
        Self { page_bits: 16, buffer_pages: 8, mutable_pages: 6, io_threads: 2 }
    }

    /// Sets the mutable region from a fraction of the buffer (§6.4 talks of
    /// a 90:10 mutable:read-only split of memory).
    pub fn with_mutable_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.mutable_pages = ((self.buffer_pages as f64) * f).round() as u64;
        self
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        1 << self.page_bits
    }

    fn validate(&self) {
        assert!(self.page_bits >= 6 && self.page_bits <= 30, "page_bits in [6, 30]");
        assert!(self.buffer_pages.is_power_of_two(), "buffer_pages must be a power of two");
        assert!(self.buffer_pages >= 2, "need at least two frames");
        assert!(
            self.mutable_pages <= self.buffer_pages,
            "mutable region cannot exceed the buffer"
        );
    }
}

impl Default for HLogConfig {
    fn default() -> Self {
        // 1 MB pages, 64 MB buffer, 90% mutable.
        Self { page_bits: 20, buffer_pages: 64, mutable_pages: 58, io_threads: 2 }
    }
}

/// Frame lifecycle states.
const FRAME_CLOSED: u8 = 0; // reusable
const FRAME_OPENING: u8 = 1; // claimed, being zeroed
const FRAME_OPEN: u8 = 2; // holds a live page

/// Offset field of the packed tail word (low 32 bits; page in the high 32).
const OFFSET_BITS: u32 = 32;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// A snapshot of every log marker, in address order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSnapshot {
    pub begin: Address,
    pub head: Address,
    pub flushed_until: Address,
    pub safe_read_only: Address,
    pub read_only: Address,
    pub tail: Address,
}

struct Inner {
    cfg: HLogConfig,
    epoch: Epoch,
    device: Arc<dyn Device>,
    frames: Vec<Frame>,
    frame_status: Vec<AtomicU8>,
    /// Packed (page << 32 | offset) tail.
    tail: AtomicU64,
    read_only: AtomicU64,
    safe_read_only: AtomicU64,
    head: AtomicU64,
    flushed_until: AtomicU64,
    begin: AtomicU64,
    /// Page-flush device writes that completed with an error. The frontier
    /// never advances past a failed flush; this counter lets the checkpoint
    /// path additionally *detect* the failure (an untracked partial-page
    /// flush stalls nothing, so the counter is the only signal it failed).
    flush_failures: AtomicU64,
    /// In-memory page budget currently allowed, in `[2, cfg.buffer_pages]`.
    /// Starts at `cfg.buffer_pages`; the maintenance service shrinks it to
    /// give memory back (head advances sooner, frames evict earlier) and
    /// grows it again when the workload wants residency. Frames are never
    /// deallocated — this only moves the head/read-only targets.
    active_pages: AtomicU64,
    /// Highest page whose seal actions (read-only/head advance) have run.
    sealed_through: AtomicU64,
    flush_tracker: Mutex<FlushTracker>,
    /// Flush attempts in flight, counting retry chains until their terminal
    /// outcome (success or quarantine). `wait_flush_quiesced` spins on zero
    /// so a durability barrier can't be satisfied under a live retry chain.
    flush_inflight: AtomicU64,
    /// Pages whose flush was abandoned: their device bytes are untrusted,
    /// reads of them short-circuit to [`IoError::Corrupt`].
    quarantined: Mutex<BTreeSet<u64>>,
    /// Parsed checksum footers of flushed pages, so record-sized cold reads
    /// verify without re-reading the footer (populated at flush issue and on
    /// first cold read of a recovered page; evicted below `begin`). Costs
    /// ~`footer_len/stride` (≈1.6% for 4 MB pages) of the on-disk log in RAM.
    footers: Mutex<HashMap<u64, Arc<ParsedFooter>>>,
    /// Called when the log detects a storage fault (quarantine, corruption).
    fault_hook: Mutex<Option<FaultHook>>,
    /// Called with an address range `[from, to)` after the head passed it
    /// (epoch-safe: no thread can still read it) and before its frames are
    /// recycled. Used by the Appendix D read cache to restore index entries
    /// for evicted cache records.
    evict_hook: Mutex<Option<EvictHook>>,
    metrics: Arc<HlogMetrics>,
}

/// Callback invoked as pages leave the buffer (see `set_evict_hook`).
type EvictHook = Box<dyn Fn(u64, u64) + Send + Sync>;

/// The hybrid log allocator. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct HybridLog {
    inner: Arc<Inner>,
}

impl HybridLog {
    /// Creates a log over `device`, coordinated by `epoch`, with a private
    /// metrics group.
    pub fn new(cfg: HLogConfig, epoch: Epoch, device: Arc<dyn Device>) -> Self {
        Self::with_metrics(cfg, epoch, device, Arc::new(HlogMetrics::default()))
    }

    /// Like [`HybridLog::new`], but events are recorded into the caller's
    /// shared metrics group (the store's registry).
    pub fn with_metrics(
        cfg: HLogConfig,
        epoch: Epoch,
        device: Arc<dyn Device>,
        metrics: Arc<HlogMetrics>,
    ) -> Self {
        cfg.validate();
        let page_size = cfg.page_size() as usize;
        let frames: Vec<Frame> = (0..cfg.buffer_pages).map(|_| Frame::new(page_size)).collect();
        let frame_status: Vec<AtomicU8> =
            (0..cfg.buffer_pages).map(|i| AtomicU8::new(if i == 0 { FRAME_OPEN } else { FRAME_CLOSED })).collect();
        let first = Address::FIRST_VALID.raw();
        Self {
            inner: Arc::new(Inner {
                cfg,
                epoch,
                device,
                frames,
                frame_status,
                tail: AtomicU64::new(first), // page 0, offset 64
                read_only: AtomicU64::new(0),
                safe_read_only: AtomicU64::new(0),
                head: AtomicU64::new(0),
                flushed_until: AtomicU64::new(0),
                begin: AtomicU64::new(first),
                flush_failures: AtomicU64::new(0),
                active_pages: AtomicU64::new(cfg.buffer_pages),
                sealed_through: AtomicU64::new(0),
                flush_tracker: Mutex::new(FlushTracker::new(0)),
                flush_inflight: AtomicU64::new(0),
                quarantined: Mutex::new(BTreeSet::new()),
                footers: Mutex::new(HashMap::new()),
                fault_hook: Mutex::new(None),
                evict_hook: Mutex::new(None),
                metrics,
            }),
        }
    }

    /// Re-opens a log whose prefix `[begin, tail)` already lives on `device`
    /// (recovery, §6.5). The in-memory buffer restarts empty at the next page
    /// boundary at/after `tail`.
    pub fn recover(cfg: HLogConfig, epoch: Epoch, device: Arc<dyn Device>, begin: Address, tail: Address) -> Self {
        Self::recover_with_metrics(cfg, epoch, device, begin, tail, Arc::new(HlogMetrics::default()))
    }

    /// Like [`HybridLog::recover`], but with a shared metrics group.
    pub fn recover_with_metrics(
        cfg: HLogConfig,
        epoch: Epoch,
        device: Arc<dyn Device>,
        begin: Address,
        tail: Address,
        metrics: Arc<HlogMetrics>,
    ) -> Self {
        cfg.validate();
        let page_size = cfg.page_size();
        // Resume at a fresh page: everything below is disk-resident.
        let resume_page = tail.raw().div_ceil(page_size);
        let resume = resume_page * page_size;
        let page_size_us = page_size as usize;
        let frames: Vec<Frame> = (0..cfg.buffer_pages).map(|_| Frame::new(page_size_us)).collect();
        let frame_status: Vec<AtomicU8> = (0..cfg.buffer_pages)
            .map(|i| {
                AtomicU8::new(if i == resume_page % cfg.buffer_pages { FRAME_OPEN } else { FRAME_CLOSED })
            })
            .collect();
        Self {
            inner: Arc::new(Inner {
                cfg,
                epoch,
                device,
                frames,
                frame_status,
                tail: AtomicU64::new(resume_page << OFFSET_BITS),
                read_only: AtomicU64::new(resume),
                safe_read_only: AtomicU64::new(resume),
                head: AtomicU64::new(resume),
                flushed_until: AtomicU64::new(resume),
                begin: AtomicU64::new(begin.raw()),
                flush_failures: AtomicU64::new(0),
                active_pages: AtomicU64::new(cfg.buffer_pages),
                sealed_through: AtomicU64::new(resume_page),
                flush_tracker: Mutex::new(FlushTracker::new(resume_page)),
                flush_inflight: AtomicU64::new(0),
                quarantined: Mutex::new(BTreeSet::new()),
                footers: Mutex::new(HashMap::new()),
                fault_hook: Mutex::new(None),
                evict_hook: Mutex::new(None),
                metrics,
            }),
        }
    }

    /// The metrics group this log records into.
    pub fn metrics(&self) -> &Arc<HlogMetrics> {
        &self.inner.metrics
    }

    /// The log's configuration.
    pub fn config(&self) -> &HLogConfig {
        &self.inner.cfg
    }

    /// The coordinating epoch framework.
    pub fn epoch(&self) -> &Epoch {
        &self.inner.epoch
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.inner.device
    }

    // ------------------------------------------------------------ markers --

    /// Next address to be allocated.
    pub fn tail_address(&self) -> Address {
        let t = self.inner.tail.load(Ordering::SeqCst);
        let page = t >> OFFSET_BITS;
        let offset = (t & OFFSET_MASK).min(self.inner.cfg.page_size());
        Address::new(page * self.inner.cfg.page_size() + offset)
    }

    /// The read-only offset (start of the mutable region).
    pub fn read_only_address(&self) -> Address {
        Address::new(self.inner.read_only.load(Ordering::SeqCst))
    }

    /// The safe read-only offset: the read-only offset every thread has seen
    /// (§6.2). Start of the fuzzy region.
    pub fn safe_read_only_address(&self) -> Address {
        Address::new(self.inner.safe_read_only.load(Ordering::SeqCst))
    }

    /// Lowest address resident in memory.
    pub fn head_address(&self) -> Address {
        Address::new(self.inner.head.load(Ordering::SeqCst))
    }

    /// Contiguous flush frontier: everything below is durable.
    pub fn flushed_until_address(&self) -> Address {
        Address::new(self.inner.flushed_until.load(Ordering::SeqCst))
    }

    /// Count of *terminal* flush failures: pages quarantined after retry
    /// exhaustion, plus failed flush barriers. Transient faults whose retry
    /// landed are excluded — they feed the `flushes_failed` metric only.
    /// Monotone; the checkpoint path compares before/after snapshots to
    /// detect durability actually lost inside its window.
    pub fn flush_failures(&self) -> u64 {
        self.inner.flush_failures.load(Ordering::SeqCst)
    }

    /// Earliest valid address (raised by log GC, Appendix C).
    pub fn begin_address(&self) -> Address {
        Address::new(self.inner.begin.load(Ordering::SeqCst))
    }

    /// All markers at once.
    pub fn regions(&self) -> RegionSnapshot {
        RegionSnapshot {
            begin: self.begin_address(),
            head: self.head_address(),
            flushed_until: self.flushed_until_address(),
            safe_read_only: self.safe_read_only_address(),
            read_only: self.read_only_address(),
            tail: self.tail_address(),
        }
    }

    /// Start of the in-place-updatable region as seen by update operations.
    ///
    /// Normally the read-only offset; in the pure append-only configuration
    /// (`mutable_pages == 0`, the §5 allocator) it is the tail itself, so no
    /// existing record is ever updated in place — even on the still-open
    /// tail page.
    #[inline]
    pub fn ipu_boundary(&self) -> Address {
        if self.inner.cfg.mutable_pages == 0 {
            self.tail_address()
        } else {
            Address::new(self.inner.read_only.load(Ordering::SeqCst))
        }
    }

    /// Start of the fuzzy region as seen by operations (the safe read-only
    /// offset, or the tail in append-only mode where no fuzzy region exists).
    #[inline]
    pub fn safe_ipu_boundary(&self) -> Address {
        if self.inner.cfg.mutable_pages == 0 {
            self.tail_address()
        } else {
            Address::new(self.inner.safe_read_only.load(Ordering::SeqCst))
        }
    }

    /// Classifies `addr` per the HybridLog update scheme (Tables 1 and 2).
    #[inline]
    pub fn classify(&self, addr: Address) -> Region {
        let a = addr.raw();
        if a >= self.ipu_boundary().raw() {
            Region::Mutable
        } else if a >= self.safe_ipu_boundary().raw() {
            Region::Fuzzy
        } else if a >= self.inner.head.load(Ordering::SeqCst) {
            Region::ReadOnly
        } else {
            Region::OnDisk
        }
    }

    // ----------------------------------------------------------- allocate --

    /// Allocates `size` bytes at the tail (Alg 1). Returns `None` when the
    /// allocation cannot proceed yet (new page's frame still flushing or
    /// evicting) — the caller must `refresh()` its epoch and retry, which is
    /// exactly what lets the blocking maintenance triggers fire.
    pub fn try_allocate(&self, size: u32, guard: &EpochGuard) -> Option<Address> {
        let inner = &*self.inner;
        let size = size as u64;
        debug_assert!(size > 0 && size.is_multiple_of(8), "record sizes are 8-byte aligned");
        assert!(size <= inner.cfg.page_size(), "allocation exceeds page size");
        let old = inner.tail.fetch_add(size, Ordering::SeqCst);
        let page = old >> OFFSET_BITS;
        let offset = old & OFFSET_MASK;
        if offset + size <= inner.cfg.page_size() {
            inner.metrics.appends.inc();
            return Some(Address::new(page * inner.cfg.page_size() + offset));
        }
        // Overflow: run the (exactly-once) seal actions for this page, then
        // try to open the next page; succeed or not, the caller retries.
        inner.metrics.alloc_retries.inc();
        self.seal_page(page, Some(guard));
        self.try_open_page(page);
        None
    }

    /// Allocates `size` bytes, refreshing the guard while the log catches up
    /// on flush/eviction. This is the `BlockAllocate` loop of the C++ code.
    pub fn allocate(&self, size: u32, guard: &EpochGuard) -> Address {
        loop {
            if let Some(a) = self.try_allocate(size, guard) {
                return a;
            }
            guard.refresh();
            std::hint::spin_loop();
        }
    }

    /// Runs the page-boundary maintenance for `page` exactly once: advance
    /// the read-only offset (with its safe-read-only trigger) and the head
    /// offset (with its frame-close trigger).
    fn seal_page(&self, page: u64, guard: Option<&EpochGuard>) {
        let inner = &*self.inner;
        if inner
            .sealed_through
            .compare_exchange(page, page + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return; // someone else sealed it (or it's already sealed)
        }
        inner.metrics.page_seals.inc();
        let new_tail_page = page + 1;
        // Advance the read-only offset to maintain the mutable-region lag.
        // The lag never exceeds the active residency budget: a shrunk buffer
        // must be able to seal/flush pages early enough to evict them.
        let active = inner.active_pages.load(Ordering::SeqCst);
        let ro_lag = active.min(inner.cfg.mutable_pages);
        if new_tail_page > ro_lag {
            let desired = (new_tail_page - ro_lag) * inner.cfg.page_size();
            let old = inner.read_only.fetch_max(desired, Ordering::SeqCst);
            if desired > old {
                let weak = inner_weak(&self.inner);
                let action = move || {
                    if let Some(inner) = weak.upgrade() {
                        Inner::update_safe_ro(&inner, desired);
                    }
                };
                match guard {
                    Some(g) => g.bump_with(action),
                    None => inner.epoch.bump_with(action),
                }
            }
        }
        self.maybe_advance_head(guard);
    }

    /// Advances the head offset toward `tail_page + 1 - buffer_pages`, capped
    /// by the flushed frontier (§5.2: never evict an unflushed page), and
    /// announces frame closure via an epoch trigger.
    fn maybe_advance_head(&self, guard: Option<&EpochGuard>) {
        let inner = &*self.inner;
        // Target residency for the *incoming* page (tail_page + 1): frames
        // for pages [head_page, tail_page + 1] must fit in the buffer.
        let tail_page = inner.tail.load(Ordering::SeqCst) >> OFFSET_BITS;
        let active = inner.active_pages.load(Ordering::SeqCst).clamp(2, inner.cfg.buffer_pages);
        let needed = (tail_page + 2).saturating_sub(active);
        if needed == 0 {
            return;
        }
        let desired = (needed * inner.cfg.page_size()).min(inner.flushed_until.load(Ordering::SeqCst));
        let old = inner.head.fetch_max(desired, Ordering::SeqCst);
        if desired > old {
            let weak = inner_weak(&self.inner);
            let action = move || {
                if let Some(inner) = weak.upgrade() {
                    inner.close_frames(old, desired);
                }
            };
            match guard {
                Some(g) => g.bump_with(action),
                None => inner.epoch.bump_with(action),
            }
        }
    }

    /// Attempts to open `page + 1`'s frame and flip the tail to it.
    fn try_open_page(&self, page: u64) {
        let inner = &*self.inner;
        let next = page + 1;
        if inner.tail.load(Ordering::SeqCst) >> OFFSET_BITS != page {
            return; // stale caller: the tail has already moved on
        }
        let fidx = (next % inner.cfg.buffer_pages) as usize;
        if inner.frame_status[fidx]
            .compare_exchange(FRAME_CLOSED, FRAME_OPENING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return; // frame busy (another opener, or not yet evictable)
        }
        // Re-verify under the Opening claim: only the holder of this claim
        // can flip page -> page+1, so a stale claim is detectable.
        if inner.tail.load(Ordering::SeqCst) >> OFFSET_BITS != page {
            inner.frame_status[fidx].store(FRAME_CLOSED, Ordering::SeqCst);
            return;
        }
        inner.frames[fidx].zero();
        inner.frame_status[fidx].store(FRAME_OPEN, Ordering::SeqCst);
        // Flip the tail to (next, 0). Concurrent fetch_adds only bump the
        // offset field, so retry until the CAS lands.
        loop {
            let cur = inner.tail.load(Ordering::SeqCst);
            if cur >> OFFSET_BITS != page {
                break; // already flipped (should not happen: we own Opening)
            }
            if inner
                .tail
                .compare_exchange(cur, next << OFFSET_BITS, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
    }

    // ------------------------------------------------------------- access --

    /// Raw pointer to the record bytes at `addr`, if resident in memory.
    ///
    /// # Safety contract for callers
    ///
    /// The returned pointer is valid until the caller's epoch guard is
    /// refreshed or dropped (§4: "A thread has guaranteed access to the
    /// memory location of a record, as long as it does not refresh its
    /// epoch"). Concurrent readers/writers of the same record must be
    /// coordinated by the caller's record-level logic.
    #[inline]
    pub fn get(&self, addr: Address) -> Option<*mut u8> {
        let inner = &*self.inner;
        let a = addr.raw();
        if a < inner.head.load(Ordering::SeqCst) || addr >= self.tail_address() {
            return None;
        }
        let page = a >> inner.cfg.page_bits;
        let offset = (a & (inner.cfg.page_size() - 1)) as usize;
        let fidx = (page % inner.cfg.buffer_pages) as usize;
        // Safety: in-bounds by construction; liveness by epoch protection.
        Some(unsafe { inner.frames[fidx].as_ptr().add(offset) })
    }

    /// Issues a software prefetch for the record at `addr` if it is resident
    /// in the buffer. Stage two of the batched pipeline (DESIGN.md §3): once
    /// a batch's index probes resolve, every record address is prefetched
    /// before the first record header is dereferenced, so the record-line
    /// misses overlap. Purely a hint — safe to call with any address; below
    /// head or beyond tail it does nothing.
    #[inline]
    pub fn prefetch(&self, addr: Address) {
        if let Some(p) = self.get(addr) {
            faster_util::prefetch_read(p as *const u8);
        }
    }

    /// Bytes remaining on `addr`'s page (records never span pages).
    pub fn bytes_to_page_end(&self, addr: Address) -> u64 {
        self.inner.cfg.page_size() - (addr.raw() & (self.inner.cfg.page_size() - 1))
    }

    /// Asynchronously reads `len` bytes at `addr` from storage (§5.3: "Being
    /// a record log, we retrieve only the record and not the entire logical
    /// page").
    pub fn read_async(&self, addr: Address, len: usize, cb: ReadCallback) {
        let metrics = Arc::clone(&self.inner.metrics);
        metrics.reads_issued.inc();
        if addr < self.begin_address() {
            metrics.reads_completed.inc();
            cb(Err(IoError::Truncated { offset: addr.raw() }));
            return;
        }
        if self.inner.is_quarantined(addr.raw() / self.inner.cfg.page_size()) {
            self.inner.note_corrupt_read(addr.raw());
            metrics.reads_completed.inc();
            cb(Err(IoError::Corrupt { offset: addr.raw() }));
            return;
        }
        let (phys, read_len, span) = self.inner.plan_read(addr.raw(), len);
        let inner = Arc::clone(&self.inner);
        self.inner.device.read_async(
            phys,
            read_len,
            Box::new(move |r| {
                inner.metrics.reads_completed.inc();
                cb(r.and_then(|bytes| inner.verify_extract(&span, bytes)));
            }),
        );
    }

    /// Builds a ring-routed read SQE for `addr` (the continuation-driven
    /// pending-op path): the CQE echoing `id` lands in `ring` once the
    /// device services it, and the returned [`ReadSpan`] must be handed to
    /// [`HybridLog::verify_extract`] with the CQE bytes. A read below the
    /// begin address (Truncated) or into a quarantined page (Corrupt)
    /// short-circuits — the error CQE is pushed into `ring` immediately and
    /// no SQE is returned. Either way `reads_issued` is counted here; the
    /// reaper owns the matching `reads_completed` increment.
    pub fn make_read_sqe(
        &self,
        id: u64,
        addr: Address,
        len: usize,
        ring: &Arc<CompletionRing>,
    ) -> Option<(Sqe, ReadSpan)> {
        self.inner.metrics.reads_issued.inc();
        if addr < self.begin_address() {
            ring.push(Cqe { id, result: Err(IoError::Truncated { offset: addr.raw() }) });
            return None;
        }
        if self.inner.is_quarantined(addr.raw() / self.inner.cfg.page_size()) {
            self.inner.note_corrupt_read(addr.raw());
            ring.push(Cqe { id, result: Err(IoError::Corrupt { offset: addr.raw() }) });
            return None;
        }
        let (phys, read_len, span) = self.inner.plan_read(addr.raw(), len);
        Some((Sqe::read(id, phys, read_len, ring), span))
    }

    /// Verifies a completed cold read's bytes against the page's checksum
    /// footer (per the plan built at issue time) and extracts the record
    /// bytes. Returns [`IoError::Corrupt`] on any covered-group mismatch —
    /// corrupted device bytes are never handed to a continuation.
    pub fn verify_extract(&self, span: &ReadSpan, bytes: Vec<u8>) -> Result<Vec<u8>, IoError> {
        self.inner.verify_extract(span, bytes)
    }

    /// Installs the storage-fault hook: called when a page is quarantined
    /// or a cold read fails verification. Call before traffic; later
    /// installs only see future faults.
    pub fn set_fault_hook<H: Fn(&LogFault) + Send + Sync + 'static>(&self, hook: H) {
        *self.inner.fault_hook.lock() = Some(Box::new(hook));
    }

    /// Flush-machinery diagnosis: the contiguous frontier page, the
    /// out-of-order completions above it (a stalled frontier names its
    /// blocking pages), quarantined pages, and in-flight attempts.
    pub fn flush_debug(&self) -> FlushDebug {
        let (frontier_page, pending_above_frontier) = {
            let t = self.inner.flush_tracker.lock();
            (t.frontier(), t.pending_above_frontier())
        };
        FlushDebug {
            frontier_page,
            pending_above_frontier,
            quarantined: self.inner.quarantined.lock().iter().copied().collect(),
            inflight: self.inner.flush_inflight.load(Ordering::SeqCst),
        }
    }

    /// Blocks until no flush attempt — including retry chains — is in
    /// flight. Retry budgets are bounded, so this terminates even on a dead
    /// device. Durability protocols must call this before their flush
    /// barrier: a barrier only covers writes already submitted, and a retry
    /// chain re-submits *after* a barrier it raced with.
    pub fn wait_flush_quiesced(&self) {
        let mut pace = Backoff::new();
        while self.inner.flush_inflight.load(Ordering::SeqCst) != 0 {
            pace.snooze();
        }
    }

    /// Installs the eviction hook (see `Inner::close_frames`). Call before
    /// any traffic; later installs only affect future evictions.
    pub fn set_eviction_hook<H: Fn(u64, u64) + Send + Sync + 'static>(&self, hook: H) {
        *self.inner.evict_hook.lock() = Some(Box::new(hook));
    }

    /// Raw pointer to `addr`'s bytes during the eviction window.
    ///
    /// # Safety
    ///
    /// Only callable from inside an eviction hook, for addresses within the
    /// hook's `[from, to)` range: those frames are past the head (no reader
    /// can race) but not yet recycled.
    pub unsafe fn get_evicting(&self, addr: Address) -> *mut u8 {
        let inner = &*self.inner;
        let page = addr.raw() >> inner.cfg.page_bits;
        let offset = (addr.raw() & (inner.cfg.page_size() - 1)) as usize;
        let fidx = (page % inner.cfg.buffer_pages) as usize;
        inner.frames[fidx].as_ptr().add(offset)
    }

    // -------------------------------------------------------- maintenance --

    /// Blocks until every issued page flush has completed on the device and
    /// is durable. A barrier failure means durability of already-acked page
    /// writes is unknown; it is latched into [`HybridLog::flush_failures`]
    /// (and the metrics counter) so `checkpoint_durable`-style protocols
    /// that sample the counter also observe it.
    pub fn flush_barrier(&self) -> Result<(), faster_storage::IoError> {
        let res = self.inner.device.flush_barrier();
        if res.is_err() {
            self.inner.flush_failures.fetch_add(1, Ordering::SeqCst);
            self.inner.metrics.flushes_failed.inc();
        }
        res
    }

    /// Forces the read-only offset up to the current tail and synchronously
    /// waits for the resulting flushes (checkpoint path, §6.5; also the §7.3
    /// sequential-bandwidth experiment). Requires that no thread holds an
    /// un-refreshed guard, e.g. quiesced sessions or cooperative refresh.
    pub fn shift_read_only_to_tail(&self) -> Address {
        let inner = &*self.inner;
        let tail = self.tail_address();
        let old = inner.read_only.fetch_max(tail.raw(), Ordering::SeqCst);
        if tail.raw() > old {
            let weak = inner_weak(&self.inner);
            let t = tail.raw();
            inner.epoch.bump_with(move || {
                if let Some(inner) = weak.upgrade() {
                    Inner::update_safe_ro(&inner, t);
                }
            });
        }
        tail
    }

    /// Garbage collection by expiration (Appendix C): drops all log content
    /// below `addr`. Reads below the new begin address fail with
    /// [`IoError::Truncated`], which the store layer treats as "key absent".
    pub fn shift_begin_address(&self, addr: Address) {
        let inner = &*self.inner;
        let old = inner.begin.fetch_max(addr.raw(), Ordering::SeqCst);
        if addr.raw() > old {
            inner.metrics.bytes_truncated.add(addr.raw() - old);
        }
        // Footers and quarantine marks of fully-truncated pages are moot;
        // drop them so the caches don't grow with log lifetime.
        let first_page = addr.raw() / inner.cfg.page_size();
        inner.footers.lock().retain(|&p, _| p >= first_page);
        inner.quarantined.lock().retain(|&p| p >= first_page);
        // Device truncation is page-granular: checksum-span reads of records
        // on the first live page start at its group-aligned page start, so
        // the whole stride (data + footer) of that page must stay readable
        // even when `begin` points mid-page. Logical reads below `begin` are
        // already refused above the device layer.
        inner.device.truncate_below(first_page * inner.stride());
    }

    /// Reports `bytes` of log content made dead by the store layer (a record
    /// superseded by RCU, shadowed by a tombstone, or abandoned after a lost
    /// insert race). Feeds the `dead_bytes` counter the maintenance policy
    /// uses to estimate reclaimable space (`dead_bytes - bytes_truncated`).
    pub fn note_dead_bytes(&self, bytes: u64) {
        self.inner.metrics.dead_bytes.add(bytes);
    }

    /// Current in-memory residency budget in pages (≤ `config().buffer_pages`).
    pub fn active_pages(&self) -> u64 {
        self.inner.active_pages.load(Ordering::SeqCst)
    }

    /// Adjusts the in-memory residency budget. `pages` is clamped to
    /// `[2, config().buffer_pages]`; frames beyond the budget are evicted as
    /// the head advances (shrinking is asynchronous — it takes effect as the
    /// flush frontier allows). Growing takes effect lazily as new pages open.
    pub fn set_active_pages(&self, pages: u64) -> u64 {
        let clamped = pages.clamp(2, self.inner.cfg.buffer_pages);
        self.inner.active_pages.store(clamped, Ordering::SeqCst);
        // A shrink should bite without waiting for the next page seal.
        self.maybe_advance_head(None);
        clamped
    }

    /// True if the page holding `addr` is resident in the buffer.
    pub fn is_resident(&self, addr: Address) -> bool {
        addr.raw() >= self.inner.head.load(Ordering::SeqCst) && addr < self.tail_address()
    }

    /// Copies a full page image, from memory if resident, otherwise from the
    /// device (blocking, checksum-verified). Used by the log scanner
    /// (Appendix F).
    pub fn page_image(&self, page: u64) -> Result<Vec<u8>, IoError> {
        let inner = &*self.inner;
        let page_size = inner.cfg.page_size();
        let start = page * page_size;
        if start >= inner.head.load(Ordering::SeqCst)
            && start < self.tail_address().raw()
        {
            let fidx = (page % inner.cfg.buffer_pages) as usize;
            return Ok(inner.frames[fidx].snapshot());
        }
        if inner.is_quarantined(page) {
            inner.note_corrupt_read(start);
            return Err(IoError::Corrupt { offset: start });
        }
        let (tx, rx) = std::sync::mpsc::channel();
        // Read the full stride (data + footer) so the image verifies in one
        // round trip even when the footer isn't cached.
        self.inner.device.read_async(
            page * inner.stride(),
            inner.stride() as usize,
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        );
        let mut bytes =
            rx.recv().map_err(|_| IoError::Failed("device dropped request".into()))??;
        let g = checksum::group_size(page_size);
        // Bind the cache probe first: a `match` on the locked temporary
        // would hold the guard across the arm that re-locks to insert.
        let cached = inner.footers.lock().get(&page).cloned();
        let footer = match cached {
            Some(f) => Some(f),
            None => bytes
                .get(page_size as usize..)
                .and_then(|fb| checksum::parse(page, page_size, fb))
                .map(|p| {
                    let p = Arc::new(p);
                    inner.footers.lock().insert(page, Arc::clone(&p));
                    p
                }),
        };
        if let Some(f) = footer {
            for gi in 0..checksum::group_count(page_size) as usize {
                if !f.covers(gi, g) {
                    continue;
                }
                let lo = gi * g as usize;
                if faster_util::hash_bytes(&bytes[lo..lo + g as usize]) != f.sums[gi] {
                    let offset = start + (gi as u64) * g;
                    inner.note_corrupt_read(offset);
                    return Err(IoError::Corrupt { offset });
                }
            }
        }
        bytes.truncate(page_size as usize);
        Ok(bytes)
    }
}

impl Inner {
    /// Epoch trigger: advance the safe read-only offset and flush the pages
    /// that just became immutable-to-everyone (Alg 1 `update_safe_ro`).
    fn update_safe_ro(self: &Arc<Inner>, new: u64) {
        let old = self.safe_read_only.fetch_max(new, Ordering::SeqCst);
        if new <= old {
            return;
        }
        let page_size = self.cfg.page_size();
        // Full pages advance the flush frontier; a trailing partial page
        // (checkpoint path: read-only shifted to a mid-page tail) is written
        // for durability but does not advance the frontier — it will be
        // re-flushed in full when the page fills. `sealed` records how much
        // of the frame snapshot is immutable, bounding what the checksum
        // footer covers (see the `checksum` module docs).
        for page in (old / page_size)..(new / page_size) {
            self.flush_page(page, true, page_size);
        }
        if !new.is_multiple_of(page_size) {
            self.flush_page(new / page_size, false, new % page_size);
        }
    }

    /// Issues the asynchronous flush of `page` (§5.2). When `track` is set,
    /// completion advances the flushed-until frontier. `sealed` is the
    /// immutable (safe-read-only-covered) prefix of the page in bytes.
    fn flush_page(self: &Arc<Inner>, page: u64, track: bool, sealed: u64) {
        self.flush_inflight.fetch_add(1, Ordering::SeqCst);
        self.flush_page_attempt(page, track, sealed, 0);
    }

    /// One flush attempt. Transient device errors re-submit with `Backoff`
    /// pacing up to [`MAX_FLUSH_RETRIES`]; budget exhaustion (or a permanent
    /// error such as device-full) quarantines the page instead of wedging
    /// the frontier. The frame is re-snapshotted per attempt — sealed bytes
    /// are immutable, so every attempt agrees on the bytes the footer covers.
    fn flush_page_attempt(self: &Arc<Inner>, page: u64, track: bool, sealed: u64, attempt: u32) {
        let fidx = (page % self.cfg.buffer_pages) as usize;
        if attempt > 0 {
            self.metrics.flush_retries.inc();
            let mut pace = Backoff::new();
            for _ in 0..attempt {
                pace.snooze();
            }
        }
        let mut data = self.frames[fidx].snapshot();
        let (footer, parsed) = checksum::build(page, sealed, &data);
        self.footers.lock().insert(page, Arc::new(parsed));
        data.extend_from_slice(&footer);
        let weak = Arc::downgrade(self);
        self.metrics.flushes_issued.inc();
        // Submitted as an SQE on the device ring interface; the callback
        // route keeps completion on an I/O worker thread (flush_complete
        // re-enters the epoch machinery, which must not run on the
        // submitting FASTER thread).
        self.device.submit(Sqe::write_cb(
            page * self.stride(),
            data,
            Box::new(move |res| {
                if let Some(inner) = weak.upgrade() {
                    match res {
                        Ok(()) => {
                            inner.metrics.flushes_completed.inc();
                            if track {
                                inner.flush_complete(page);
                            }
                            inner.flush_inflight.fetch_sub(1, Ordering::SeqCst);
                        }
                        // Failed attempts feed the `flushes_failed` metric
                        // but NOT `flush_failures`: a transient fault whose
                        // retry lands leaves the device bytes intact, and
                        // `checkpoint_durable` quiesces before sampling, so
                        // only *terminal* outcomes (quarantine, barrier
                        // failure) may poison its durability window.
                        Err(err) => {
                            inner.metrics.flushes_failed.inc();
                            let transient = matches!(err, IoError::Failed(_));
                            if transient && attempt + 1 < MAX_FLUSH_RETRIES {
                                inner.flush_page_attempt(page, track, sealed, attempt + 1);
                            } else {
                                inner.quarantine_page(page, track, err);
                            }
                        }
                    }
                }
            }),
        ));
    }

    /// Terminal flush failure: quarantine `page`. The frontier advances past
    /// it — allocation and head advancement never wedge on a dead device —
    /// but the page's bytes are untrusted: reads of it return
    /// [`IoError::Corrupt`], `flush_failures` stays latched (no checkpoint
    /// can declare the window durable), and the fault hook tells the store
    /// to degrade to read-only.
    fn quarantine_page(self: &Arc<Inner>, page: u64, track: bool, error: IoError) {
        self.quarantined.lock().insert(page);
        self.metrics.pages_quarantined.inc();
        self.flush_failures.fetch_add(1, Ordering::SeqCst);
        if track {
            self.flush_complete(page);
        }
        self.flush_inflight.fetch_sub(1, Ordering::SeqCst);
        if let Some(hook) = self.fault_hook.lock().as_ref() {
            hook(&LogFault::PageQuarantined { page, error });
        }
    }

    /// Device byte span per page (data + checksum footer).
    fn stride(&self) -> u64 {
        checksum::stride(self.cfg.page_size())
    }

    /// True when `page` was quarantined by a terminal flush failure.
    fn is_quarantined(&self, page: u64) -> bool {
        self.quarantined.lock().contains(&page)
    }

    fn note_corrupt_read(&self, offset: u64) {
        self.metrics.corrupt_reads.inc();
        if let Some(hook) = self.fault_hook.lock().as_ref() {
            hook(&LogFault::CorruptRead { offset });
        }
    }

    /// Plans a verified cold read of `len` record bytes at logical `a`:
    /// returns the device offset, the read length, and the [`ReadSpan`] that
    /// extracts/verifies the record from the returned bytes. The span is
    /// widened to whole checksum groups; when the page's footer is not
    /// cached (first cold read after recovery) the read extends through the
    /// on-disk footer so verification needs no second I/O.
    fn plan_read(&self, a: u64, len: usize) -> (u64, usize, ReadSpan) {
        let page_size = self.cfg.page_size();
        let g = checksum::group_size(page_size);
        let page = a / page_size;
        let offset = a % page_size;
        let span_start = (offset / g) * g;
        let footer = self.footers.lock().get(&page).cloned();
        let read_len = match &footer {
            Some(_) => {
                let span_end = ((offset + len as u64).div_ceil(g) * g).min(page_size);
                (span_end - span_start) as usize
            }
            None => ((page_size - span_start) + checksum::footer_len(page_size)) as usize,
        };
        (
            page * self.stride() + span_start,
            read_len,
            ReadSpan { page, span_start, rec_off: (offset - span_start) as usize, rec_len: len, footer },
        )
    }

    /// Checks a completed read's bytes against the page footer (cached at
    /// issue time, or parsed from the tail of an extended read) and extracts
    /// the record. Only *covered* groups — entirely below the footer's
    /// sealed prefix — are verified; a mismatch there is genuine corruption
    /// (sealed bytes never change in memory, see the `checksum` module) and
    /// returns [`IoError::Corrupt`] instead of the bytes.
    fn verify_extract(&self, span: &ReadSpan, bytes: Vec<u8>) -> Result<Vec<u8>, IoError> {
        let page_size = self.cfg.page_size();
        let g = checksum::group_size(page_size);
        let footer = match &span.footer {
            Some(f) => Some(Arc::clone(f)),
            None => {
                let foot_off = (page_size - span.span_start) as usize;
                let parsed = bytes
                    .get(foot_off..foot_off + checksum::footer_len(page_size) as usize)
                    .and_then(|fb| checksum::parse(span.page, page_size, fb));
                // A footer that fails its self-check (crash-torn) leaves the
                // page served unverified — matching pre-checksum behavior.
                parsed.map(|p| {
                    let p = Arc::new(p);
                    self.footers.lock().insert(span.page, Arc::clone(&p));
                    p
                })
            }
        };
        if let Some(f) = footer {
            let data_len = (bytes.len() as u64).min(page_size - span.span_start);
            let first = span.span_start / g;
            for i in 0..data_len / g {
                let gi = (first + i) as usize;
                if !f.covers(gi, g) {
                    continue;
                }
                let lo = (i * g) as usize;
                if faster_util::hash_bytes(&bytes[lo..lo + g as usize]) != f.sums[gi] {
                    let offset = span.page * page_size + (gi as u64) * g;
                    self.note_corrupt_read(offset);
                    return Err(IoError::Corrupt { offset });
                }
            }
        }
        let end = span.rec_off + span.rec_len;
        if end > bytes.len() {
            return Err(IoError::OutOfRange {
                offset: span.page * page_size + span.span_start,
                len: span.rec_len,
            });
        }
        Ok(bytes[span.rec_off..end].to_vec())
    }

    /// Flush-completion callback: advance the contiguous flushed frontier and
    /// retry the head advance it may have been gating.
    fn flush_complete(self: &Arc<Inner>, page: u64) {
        let frontier = {
            let mut t = self.flush_tracker.lock();
            t.complete(page)
        };
        if let Some(pages) = frontier {
            self.flushed_until.fetch_max(pages * self.cfg.page_size(), Ordering::SeqCst);
            // The head may have been capped by the flush frontier; retry.
            let log = HybridLog { inner: self.clone() };
            log.maybe_advance_head(None);
        }
    }

    /// Epoch trigger: frames of pages in `[from, to)` are now unreachable by
    /// every thread; run the eviction hook, then mark them reusable.
    fn close_frames(&self, from: u64, to: u64) {
        if let Some(hook) = self.evict_hook.lock().as_ref() {
            hook(from, to);
        }
        let page_size = self.cfg.page_size();
        for page in (from / page_size)..(to / page_size) {
            let fidx = (page % self.cfg.buffer_pages) as usize;
            self.frame_status[fidx].store(FRAME_CLOSED, Ordering::SeqCst);
            self.metrics.frames_evicted.inc();
        }
    }
}

fn inner_weak(inner: &Arc<Inner>) -> std::sync::Weak<Inner> {
    Arc::downgrade(inner)
}

#[cfg(test)]
mod tests;
