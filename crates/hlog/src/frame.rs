//! Page frames of the in-memory circular buffer (§5.1).
//!
//! "The circular buffer is a linear array of fixed-size page frames, each of
//! size 2^F bytes, that are each allocated sector-aligned with the underlying
//! storage device, in order to allow unbuffered reads and writes without
//! additional memory copies."

use std::alloc::{alloc_zeroed, dealloc, Layout};

/// Alignment of every frame: covers common sector sizes (512/4096).
pub const FRAME_ALIGN: usize = 4096;

/// One sector-aligned, heap-allocated page frame.
pub struct Frame {
    ptr: *mut u8,
    layout: Layout,
}

// Safety: the frame is plain memory; all concurrent-access discipline is
// enforced by the log's epoch machinery, not by this type.
unsafe impl Send for Frame {}
unsafe impl Sync for Frame {}

impl Frame {
    /// Allocates a zeroed frame of `size` bytes.
    pub fn new(size: usize) -> Self {
        let layout = Layout::from_size_align(size, FRAME_ALIGN).expect("valid frame layout");
        // Safety: layout has nonzero size (asserted by config validation).
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "frame allocation failed");
        Self { ptr, layout }
    }

    /// Base pointer of the frame.
    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Frame size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.layout.size()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.layout.size() == 0
    }

    /// Copies the frame contents out (used by the flush path; the frame is
    /// immutable by then, see §5.2).
    pub fn snapshot(&self) -> Vec<u8> {
        // Safety: ptr covers len() bytes, initialized (zeroed at alloc).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len()).to_vec() }
    }

    /// Zeroes the frame for reuse by a new page (single claimant only —
    /// enforced by the Opening state in the frame status array).
    pub fn zero(&self) {
        // Safety: exclusive claim during the Opening state.
        unsafe { std::ptr::write_bytes(self.ptr, 0, self.len()) };
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        // Safety: ptr/layout came from alloc_zeroed above.
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_and_aligned() {
        let f = Frame::new(8192);
        assert_eq!(f.as_ptr() as usize % FRAME_ALIGN, 0);
        assert_eq!(f.len(), 8192);
        assert!(f.snapshot().iter().all(|&b| b == 0));
    }

    #[test]
    fn write_snapshot_zero() {
        let f = Frame::new(1024);
        unsafe { *f.as_ptr().add(10) = 0xAB };
        assert_eq!(f.snapshot()[10], 0xAB);
        f.zero();
        assert_eq!(f.snapshot()[10], 0);
    }
}
