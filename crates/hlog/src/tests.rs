//! Unit and concurrency tests for the hybrid log.

use super::*;
use faster_storage::MemDevice;
use std::sync::atomic::AtomicBool;
use std::sync::Barrier;

fn test_log(cfg: HLogConfig) -> (HybridLog, Epoch, Arc<MemDevice>) {
    let epoch = Epoch::new(32);
    let dev = MemDevice::new(2);
    let log = HybridLog::new(cfg, epoch.clone(), dev.clone());
    (log, epoch, dev)
}

#[test]
fn fresh_log_markers() {
    let (log, _e, _d) = test_log(HLogConfig::small());
    let r = log.regions();
    assert_eq!(r.tail, Address::FIRST_VALID);
    assert_eq!(r.begin, Address::FIRST_VALID);
    assert_eq!(r.head, Address::new(0));
    assert_eq!(r.read_only, Address::new(0));
    assert_eq!(r.safe_read_only, Address::new(0));
}

#[test]
fn allocate_sequential_addresses() {
    let (log, epoch, _d) = test_log(HLogConfig::small());
    let g = epoch.acquire();
    let a = log.allocate(24, &g);
    let b = log.allocate(24, &g);
    let c = log.allocate(48, &g);
    assert_eq!(a, Address::new(64));
    assert_eq!(b, Address::new(88));
    assert_eq!(c, Address::new(112));
    assert_eq!(log.tail_address(), Address::new(160));
}

#[test]
fn write_read_through_pointer() {
    let (log, epoch, _d) = test_log(HLogConfig::small());
    let g = epoch.acquire();
    let addr = log.allocate(16, &g);
    let p = log.get(addr).expect("in memory");
    unsafe {
        std::ptr::write(p as *mut u64, 0xDEAD_BEEF);
        std::ptr::write((p as *mut u64).add(1), 42);
    }
    let p2 = log.get(addr).unwrap();
    unsafe {
        assert_eq!(std::ptr::read(p2 as *const u64), 0xDEAD_BEEF);
        assert_eq!(std::ptr::read((p2 as *const u64).add(1)), 42);
    }
    assert!(log.get(Address::new(1 << 30)).is_none(), "beyond tail");
}

#[test]
fn page_boundary_allocation_never_spans() {
    let cfg = HLogConfig { page_bits: 12, buffer_pages: 16, mutable_pages: 16, io_threads: 1 };
    let (log, epoch, _d) = test_log(cfg);
    let g = epoch.acquire();
    let size = 240u32; // does not divide 4096 evenly
    let mut prev = Address::new(0);
    for _ in 0..200 {
        let a = log.allocate(size, &g);
        assert!(a > prev, "addresses strictly increase");
        let page_of = |x: Address| x.raw() >> 12;
        assert_eq!(
            page_of(a),
            page_of(Address::new(a.raw() + size as u64 - 1)),
            "record must not span pages"
        );
        prev = a;
        g.refresh();
    }
}

#[test]
fn regions_progress_as_tail_grows() {
    // Small pages; mutable region = 2 pages.
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 8, mutable_pages: 2, io_threads: 1 };
    let (log, epoch, _d) = test_log(cfg);
    let g = epoch.acquire();
    let first = log.allocate(64, &g);
    // Fill 4 pages worth.
    for _ in 0..((4 * 1024) / 64) {
        log.allocate(64, &g);
        g.refresh();
    }
    log.flush_barrier().unwrap();
    let r = log.regions();
    assert!(r.read_only.raw() > 0, "read-only advanced");
    assert!(r.safe_read_only <= r.read_only);
    assert!(r.head <= r.safe_read_only);
    assert!(r.read_only < r.tail);
    assert_eq!(log.classify(r.tail), Region::Mutable);
    assert_eq!(log.classify(first), log.classify(Address::new(64)));
}

#[test]
fn classification_matches_markers() {
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 4, mutable_pages: 1, io_threads: 1 };
    let (log, epoch, _d) = test_log(cfg);
    let g = epoch.acquire();
    // Fill many pages to force eviction (buffer 4 pages, so page 0 must go
    // to disk once tail passes page 4).
    for _ in 0..((8 * 1024) / 64) {
        log.allocate(64, &g);
        g.refresh();
    }
    log.flush_barrier().unwrap();
    // Give head-advance triggers a chance (they fire on refresh).
    for _ in 0..4 {
        g.refresh();
    }
    let r = log.regions();
    assert!(r.head.raw() > 0, "eviction must have occurred: {r:?}");
    assert_eq!(log.classify(Address::new(r.head.raw().saturating_sub(1))), Region::OnDisk);
    if r.safe_read_only > r.head {
        assert_eq!(log.classify(r.head), Region::ReadOnly);
    }
    assert_eq!(log.classify(r.tail), Region::Mutable);
    if r.read_only > r.safe_read_only {
        assert_eq!(log.classify(r.safe_read_only), Region::Fuzzy);
    }
}

#[test]
fn evicted_pages_are_durable_and_readable() {
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 4, mutable_pages: 1, io_threads: 1 };
    let (log, epoch, _d) = test_log(cfg);
    let g = epoch.acquire();
    // Write a recognizable record at the start.
    let first = log.allocate(64, &g);
    unsafe { std::ptr::write(log.get(first).unwrap() as *mut u64, 0xABCD_EF00) };
    for i in 0..((8 * 1024) / 64) {
        let a = log.allocate(64, &g);
        if let Some(p) = log.get(a) {
            unsafe { std::ptr::write(p as *mut u64, i as u64) };
        }
        g.refresh();
    }
    log.flush_barrier().unwrap();
    for _ in 0..4 {
        g.refresh();
    }
    assert_eq!(log.classify(first), Region::OnDisk, "first record evicted");
    // Async read returns the original bytes.
    let (tx, rx) = std::sync::mpsc::channel();
    log.read_async(first, 64, Box::new(move |r| tx.send(r).unwrap()));
    let bytes = rx.recv().unwrap().expect("read evicted record");
    assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 0xABCD_EF00);
}

#[test]
fn append_only_mode_read_only_tracks_tail() {
    // mutable_pages = 0: the §5 append-only log.
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 8, mutable_pages: 0, io_threads: 1 };
    let (log, epoch, _d) = test_log(cfg);
    let g = epoch.acquire();
    for _ in 0..((3 * 1024) / 64) {
        log.allocate(64, &g);
        g.refresh();
    }
    let r = log.regions();
    // In append-only mode the read-only offset sits at the last page
    // boundary: only the active tail page is mutable.
    assert_eq!(r.read_only.raw(), (r.tail.raw() >> 10) << 10);
}

#[test]
fn concurrent_allocations_unique_and_valid() {
    let cfg = HLogConfig { page_bits: 14, buffer_pages: 16, mutable_pages: 8, io_threads: 2 };
    let (log, epoch, _d) = test_log(cfg);
    let threads = 8;
    let per_thread = 2000;
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for t in 0..threads {
        let log = log.clone();
        let epoch = epoch.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let g = epoch.acquire();
            barrier.wait();
            let mut addrs = Vec::with_capacity(per_thread);
            for i in 0..per_thread {
                let a = log.allocate(32, &g);
                // Stamp the allocation to catch overlap.
                if let Some(p) = log.get(a) {
                    unsafe { std::ptr::write(p as *mut u64, (t * per_thread + i) as u64) };
                }
                addrs.push(a);
                if i % 64 == 0 {
                    g.refresh();
                }
            }
            addrs
        }));
    }
    let mut all: Vec<Address> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n, "allocations must never overlap");
    for w in all.windows(2) {
        assert!(w[1].raw() - w[0].raw() >= 32 || w[1].raw() >> 14 != w[0].raw() >> 14);
    }
}

#[test]
fn shift_read_only_to_tail_flushes_everything() {
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 8, mutable_pages: 8, io_threads: 1 };
    let (log, epoch, dev) = test_log(cfg);
    let g = epoch.acquire();
    for _ in 0..20 {
        let a = log.allocate(64, &g);
        if let Some(p) = log.get(a) {
            unsafe { std::ptr::write(p as *mut u64, a.raw()) };
        }
    }
    let t = log.shift_read_only_to_tail();
    g.refresh(); // let the safe-ro trigger fire
    log.flush_barrier().unwrap();
    assert_eq!(log.read_only_address(), t);
    assert_eq!(log.safe_read_only_address(), t);
    assert!(dev.stats().bytes_written > 0, "data was flushed");
}

#[test]
fn gc_shift_begin_truncates(){
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 4, mutable_pages: 1, io_threads: 1 };
    let (log, epoch, _d) = test_log(cfg);
    let g = epoch.acquire();
    let first = log.allocate(64, &g);
    for _ in 0..((8 * 1024) / 64) {
        log.allocate(64, &g);
        g.refresh();
    }
    log.flush_barrier().unwrap();
    log.shift_begin_address(Address::new(2048));
    assert_eq!(log.begin_address(), Address::new(2048));
    let (tx, rx) = std::sync::mpsc::channel();
    log.read_async(first, 64, Box::new(move |r| tx.send(r).unwrap()));
    assert!(matches!(rx.recv().unwrap(), Err(IoError::Truncated { .. })));
}

#[test]
fn scanner_covers_memory_and_disk() {
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 4, mutable_pages: 1, io_threads: 1 };
    let (log, epoch, _d) = test_log(cfg);
    let g = epoch.acquire();
    let mut written = Vec::new();
    for i in 0..((6 * 1024) / 64) {
        let a = log.allocate(64, &g);
        if let Some(p) = log.get(a) {
            unsafe { std::ptr::write(p as *mut u64, 1000 + i as u64) };
        }
        written.push((a, 1000 + i as u64));
        g.refresh();
    }
    log.flush_barrier().unwrap();
    for _ in 0..4 {
        g.refresh();
    }
    assert!(log.head_address().raw() > 0, "some pages evicted");
    // Scan the full log and recover every stamp.
    let mut found = std::collections::HashMap::new();
    for page in LogScanner::full(&log) {
        let page = page.expect("scan page");
        let mut off = page.start_offset;
        while off + 8 <= page.end_offset {
            let v = u64::from_le_bytes(page.bytes[off..off + 8].try_into().unwrap());
            if v >= 1000 {
                found.insert(page.base.raw() + off as u64, v);
            }
            off += 64;
        }
    }
    for (a, v) in written {
        assert_eq!(found.get(&a.raw()), Some(&v), "record at {a} in scan");
    }
}

#[test]
fn recover_resumes_past_old_tail() {
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 8, mutable_pages: 8, io_threads: 1 };
    let epoch = Epoch::new(8);
    let dev = MemDevice::new(1);
    let old_tail;
    {
        let log = HybridLog::new(cfg, epoch.clone(), dev.clone());
        let g = epoch.acquire();
        for i in 0..40u64 {
            let a = log.allocate(64, &g);
            if let Some(p) = log.get(a) {
                unsafe { std::ptr::write(p as *mut u64, 7000 + i) };
            }
        }
        old_tail = log.shift_read_only_to_tail();
        g.refresh();
        log.flush_barrier().unwrap();
        drop(g);
    }
    let log2 = HybridLog::recover(cfg, epoch.clone(), dev.clone(), Address::FIRST_VALID, old_tail);
    assert!(log2.tail_address() >= old_tail);
    assert_eq!(log2.tail_address().raw() % 1024, 0, "resume at page boundary");
    // Old data is readable from the device.
    let (tx, rx) = std::sync::mpsc::channel();
    log2.read_async(Address::new(64), 8, Box::new(move |r| tx.send(r).unwrap()));
    let bytes = rx.recv().unwrap().unwrap();
    assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), 7000);
    // And new allocations work.
    let g = epoch.acquire();
    let a = log2.allocate(64, &g);
    assert!(a >= log2.head_address());
    assert_eq!(log2.classify(a), Region::Mutable);
}

#[test]
fn allocation_backpressure_does_not_deadlock() {
    // Tiny buffer + slow flushing would deadlock a blocking design; the
    // refresh-retry loop must make progress.
    let cfg = HLogConfig { page_bits: 9, buffer_pages: 2, mutable_pages: 1, io_threads: 1 };
    let epoch = Epoch::new(8);
    let dev = MemDevice::new(1);
    let log = HybridLog::new(cfg, epoch.clone(), dev);
    let done = Arc::new(AtomicBool::new(false));
    let d2 = done.clone();
    let l2 = log.clone();
    let e2 = epoch.clone();
    let h = std::thread::spawn(move || {
        let g = e2.acquire();
        for _ in 0..200 {
            l2.allocate(64, &g);
        }
        d2.store(true, Ordering::SeqCst);
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !done.load(Ordering::SeqCst) {
        assert!(std::time::Instant::now() < deadline, "allocation deadlocked");
        std::thread::yield_now();
    }
    h.join().unwrap();
}

#[test]
fn config_validation() {
    let epoch = Epoch::new(4);
    let dev = MemDevice::new(1);
    let bad = HLogConfig { page_bits: 10, buffer_pages: 3, mutable_pages: 1, io_threads: 1 };
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        HybridLog::new(bad, epoch.clone(), dev.clone())
    }))
    .is_err());
    let bad2 = HLogConfig { page_bits: 10, buffer_pages: 4, mutable_pages: 9, io_threads: 1 };
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        HybridLog::new(bad2, epoch, dev)
    }))
    .is_err());
}

#[test]
fn mutable_fraction_helper() {
    let cfg = HLogConfig { page_bits: 10, buffer_pages: 16, mutable_pages: 0, io_threads: 1 }
        .with_mutable_fraction(0.9);
    assert_eq!(cfg.mutable_pages, 14); // round(16 * 0.9)
    let cfg0 = cfg.with_mutable_fraction(0.0);
    assert_eq!(cfg0.mutable_pages, 0);
}

#[test]
fn marker_order_invariant_under_concurrency() {
    // begin <= head <= flushed_until <= safe_ro <= ro <= tail, continuously.
    let cfg = HLogConfig { page_bits: 11, buffer_pages: 8, mutable_pages: 4, io_threads: 2 };
    let (log, epoch, _d) = test_log(cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let checker = {
        let log = log.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let r = log.regions();
                assert!(r.head <= r.safe_read_only, "{r:?}");
                assert!(r.safe_read_only <= r.read_only, "{r:?}");
                assert!(r.read_only <= r.tail, "{r:?}");
                assert!(r.flushed_until <= r.safe_read_only, "{r:?}");
            }
        })
    };
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let log = log.clone();
        let epoch = epoch.clone();
        handles.push(std::thread::spawn(move || {
            let g = epoch.acquire();
            for i in 0..3000 {
                let a = log.allocate(64, &g);
                if let Some(p) = log.get(a) {
                    unsafe { std::ptr::write(p as *mut u64, t * 10_000 + i) };
                }
                if i % 32 == 0 {
                    g.refresh();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    checker.join().unwrap();
}
