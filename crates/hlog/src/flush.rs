//! Tracks asynchronous page-flush completions and maintains the contiguous
//! *flushed-until* frontier (§5.2).
//!
//! Flushes are issued in page order but may complete out of order on the
//! device's worker threads. Head-offset advancement (and therefore frame
//! eviction) is gated on the *contiguous* frontier: a page may only be
//! evicted once it — and everything before it — is durable.

use std::collections::BTreeSet;

/// Out-of-order completion tracker.
pub(crate) struct FlushTracker {
    /// Next page whose completion would advance the frontier.
    next: u64,
    /// Completed pages at or above `next` (sparse, small).
    completed: BTreeSet<u64>,
}

impl FlushTracker {
    pub fn new(first_page: u64) -> Self {
        Self { next: first_page, completed: BTreeSet::new() }
    }

    /// Records completion of `page`. Returns the new frontier (in pages) if
    /// it advanced, i.e. all pages `< frontier` are durable. Duplicate and
    /// below-frontier completions are ignored.
    pub fn complete(&mut self, page: u64) -> Option<u64> {
        if page < self.next {
            return None; // duplicate (e.g. partial-then-full flush)
        }
        self.completed.insert(page);
        if page != self.next {
            return None;
        }
        while self.completed.remove(&self.next) {
            self.next += 1;
        }
        Some(self.next)
    }

    /// Current frontier in pages: every page below it is accounted for
    /// (flushed, or quarantined after retry exhaustion).
    pub fn frontier(&self) -> u64 {
        self.next
    }

    /// Pages completed out of order, above the frontier — when the frontier
    /// stalls, the gap `frontier()..min(pending)` names the blocking pages.
    pub fn pending_above_frontier(&self) -> Vec<u64> {
        self.completed.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_completions() {
        let mut t = FlushTracker::new(0);
        assert_eq!(t.complete(0), Some(1));
        assert_eq!(t.complete(1), Some(2));
        assert_eq!(t.frontier(), 2);
    }

    #[test]
    fn out_of_order_completions() {
        let mut t = FlushTracker::new(0);
        assert_eq!(t.complete(2), None);
        assert_eq!(t.complete(1), None);
        assert_eq!(t.complete(0), Some(3), "gap fill advances past all buffered pages");
    }

    #[test]
    fn duplicates_ignored() {
        let mut t = FlushTracker::new(0);
        assert_eq!(t.complete(0), Some(1));
        assert_eq!(t.complete(0), None);
        assert_eq!(t.complete(1), Some(2));
    }

    #[test]
    fn starts_at_recovery_page() {
        let mut t = FlushTracker::new(5);
        assert_eq!(t.complete(4), None, "below-frontier ignored");
        assert_eq!(t.complete(5), Some(6));
    }
}
