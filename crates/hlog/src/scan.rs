//! Sequential log scanning (Appendix F, and the §6.5 recovery replay).
//!
//! "The FASTER record log is a sequence of updates to the state of the
//! application. Such a log can be directly fed into a stream processing
//! engine…" The scanner iterates the raw byte ranges of the log in address
//! order, transparently sourcing each page from the in-memory buffer or from
//! the device. Record framing (headers, sizes, tombstones) belongs to the
//! store layer; the scanner hands out `(page_start_address, page_bytes)`
//! pairs plus a cursor helper for in-page iteration.

use crate::HybridLog;
use faster_storage::IoError;
use faster_util::Address;

/// An iterator over page images in `[from, to)`.
pub struct LogScanner {
    log: HybridLog,
    next_page: u64,
    end: Address,
    from: Address,
}

/// One scanned page: its base address, the valid byte range within it, and
/// the page image.
pub struct ScannedPage {
    /// Address of byte 0 of this page.
    pub base: Address,
    /// First valid byte offset within the page (non-zero on the first page).
    pub start_offset: usize,
    /// One past the last valid byte offset within the page.
    pub end_offset: usize,
    /// The full page image.
    pub bytes: Vec<u8>,
}

impl LogScanner {
    /// Scans `[from, to)`. Addresses below the log's begin address are
    /// skipped (they were garbage-collected).
    pub fn new(log: &HybridLog, from: Address, to: Address) -> Self {
        let begin = log.begin_address();
        let from = from.max(begin);
        let page_bits = log.config().page_bits;
        Self { log: log.clone(), next_page: from.raw() >> page_bits, end: to, from }
    }

    /// Convenience: scan the entire live log.
    pub fn full(log: &HybridLog) -> Self {
        Self::new(log, log.begin_address(), log.tail_address())
    }
}

impl Iterator for LogScanner {
    type Item = Result<ScannedPage, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        let page_size = self.log.config().page_size();
        let base = self.next_page * page_size;
        if base >= self.end.raw() {
            return None;
        }
        let start_offset = self.from.raw().saturating_sub(base).min(page_size) as usize;
        let end_offset = (self.end.raw() - base).min(page_size) as usize;
        self.next_page += 1;
        match self.log.page_image(self.next_page - 1) {
            Ok(bytes) => Some(Ok(ScannedPage {
                base: Address::new(base),
                start_offset,
                end_offset,
                bytes,
            })),
            Err(e) => Some(Err(e)),
        }
    }
}
