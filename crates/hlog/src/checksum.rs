//! Per-sector-group checksum footers for flushed log pages.
//!
//! Checkpoint blobs and WAL records are checksummed; before this module,
//! hlog data pages were not — a torn or bit-rotted page read back from the
//! device was served to continuations as valid records. Every page flush
//! now appends a footer after the page bytes, so the on-disk layout is a
//! fixed *stride* per page:
//!
//! ```text
//! device offset = page * stride(page_size)
//!   [ page_size bytes of record data | footer_len(page_size) bytes footer ]
//! ```
//!
//! The footer (little-endian u64 words, padded to a whole sector):
//!
//! ```text
//! [ MAGIC | page | sealed | ngroups | sum[0] .. sum[ngroups-1] | footer_sum ]
//! ```
//!
//! `sum[i]` hashes the i-th `group_size` bytes of the page; `footer_sum`
//! hashes every preceding footer word, making the footer self-validating —
//! a crash-torn footer parses as absent, not as wrong sums.
//!
//! ## The `sealed` field and verification soundness
//!
//! A *partial* flush (checkpoint path: read-only shifted to a mid-page
//! tail) snapshots the frame while bytes past the safe-read-only offset are
//! still being written by allocators, so their group sums are meaningless.
//! `sealed` records how many leading page bytes were immutable (covered by
//! safe-read-only) when the footer was built; only groups entirely below
//! `sealed` are *covered* and ever verified. Sealed bytes never change in
//! memory, so for any footer version that survives on disk — including a
//! stale partial footer left by a torn partial-then-full rewrite — the
//! covered groups' device bytes either match that footer's own write or a
//! later rewrite that agrees byte-for-byte below its `sealed`. A covered-
//! group mismatch is therefore always genuine corruption; strict
//! verification of covered groups is sound for every surviving footer.

use faster_util::hash_bytes;

/// First footer word; versioned so a layout change is detectable.
pub const MAGIC: u64 = 0xFA57_E21F_007E_0001;

/// Checksum granularity: one sum per sector-sized group (or per page for
/// sub-sector pages).
pub fn group_size(page_size: u64) -> u64 {
    page_size.min(512)
}

/// Number of checksum groups per page.
pub fn group_count(page_size: u64) -> u64 {
    page_size / group_size(page_size)
}

/// On-disk footer length: the words above, padded to a whole 512-byte
/// sector so page strides stay sector-aligned.
pub fn footer_len(page_size: u64) -> u64 {
    ((5 + group_count(page_size)) * 8).next_multiple_of(512)
}

/// Device bytes occupied per page: data plus footer. Logical address
/// `page * page_size + offset` lives at device offset
/// `page * stride + offset`.
pub fn stride(page_size: u64) -> u64 {
    page_size + footer_len(page_size)
}

/// A validated footer: the sums and how much of the page they cover.
#[derive(Debug, Clone)]
pub struct ParsedFooter {
    /// Leading page bytes that were sealed (immutable) at flush time; only
    /// groups entirely below this are covered by `sums`.
    pub sealed: u64,
    /// Per-group hashes of the page bytes (all groups; use `covered`).
    pub sums: Vec<u64>,
}

impl ParsedFooter {
    /// True when group `g` is covered (entirely within the sealed prefix).
    pub fn covers(&self, g: usize, group_size: u64) -> bool {
        (g as u64 + 1) * group_size <= self.sealed
    }
}

/// Builds the on-disk footer for `data` (a full page snapshot) and the
/// parsed form for the in-memory cache.
pub fn build(page: u64, sealed: u64, data: &[u8]) -> (Vec<u8>, ParsedFooter) {
    let page_size = data.len() as u64;
    let g = group_size(page_size) as usize;
    let sums: Vec<u64> = data.chunks_exact(g).map(hash_bytes).collect();
    let mut footer = Vec::with_capacity(footer_len(page_size) as usize);
    for word in [MAGIC, page, sealed, sums.len() as u64] {
        footer.extend_from_slice(&word.to_le_bytes());
    }
    for s in &sums {
        footer.extend_from_slice(&s.to_le_bytes());
    }
    let self_sum = hash_bytes(&footer);
    footer.extend_from_slice(&self_sum.to_le_bytes());
    footer.resize(footer_len(page_size) as usize, 0);
    (footer, ParsedFooter { sealed, sums })
}

/// Parses and self-validates a footer read back from the device. `None`
/// means the footer is absent or torn (crash between data and footer
/// writes) — the page must then be served unverified, never rejected.
pub fn parse(page: u64, page_size: u64, bytes: &[u8]) -> Option<ParsedFooter> {
    let ngroups = group_count(page_size) as usize;
    let words_len = (4 + ngroups) * 8;
    if bytes.len() < words_len + 8 {
        return None;
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
    if word(0) != MAGIC || word(1) != page || word(3) != ngroups as u64 {
        return None;
    }
    let sealed = word(2);
    if sealed > page_size {
        return None;
    }
    if hash_bytes(&bytes[..words_len]) != word(4 + ngroups) {
        return None;
    }
    let sums = (0..ngroups).map(|i| word(4 + i)).collect();
    Some(ParsedFooter { sealed, sums })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footer_round_trips() {
        let page_size = 4096u64;
        let data: Vec<u8> = (0..page_size).map(|i| (i % 251) as u8).collect();
        let (footer, built) = build(7, 3000, &data);
        assert_eq!(footer.len() as u64, footer_len(page_size));
        let parsed = parse(7, page_size, &footer).expect("valid footer parses");
        assert_eq!(parsed.sealed, 3000);
        assert_eq!(parsed.sums, built.sums);
        assert_eq!(parsed.sums.len() as u64, group_count(page_size));
        // Sealed = 3000 covers groups 0..5 (group 5 ends at 3072 > 3000).
        assert!(parsed.covers(4, 512) && !parsed.covers(5, 512));
    }

    #[test]
    fn parse_rejects_wrong_page_torn_and_garbage() {
        let page_size = 1024u64;
        let data = vec![0xABu8; page_size as usize];
        let (footer, _) = build(3, page_size, &data);
        assert!(parse(3, page_size, &footer).is_some());
        assert!(parse(4, page_size, &footer).is_none(), "page mismatch");
        assert!(parse(3, page_size, &footer[..40]).is_none(), "truncated");
        let mut flipped = footer.clone();
        flipped[33] ^= 0x10; // corrupt a sum word: self-sum no longer matches
        assert!(parse(3, page_size, &flipped).is_none());
        assert!(parse(3, page_size, &vec![0u8; footer.len()]).is_none());
    }

    #[test]
    fn sums_localize_data_corruption() {
        let page_size = 2048u64;
        let mut data: Vec<u8> = (0..page_size).map(|i| (i % 131) as u8).collect();
        let (_, footer) = build(0, page_size, &data);
        data[700] ^= 1; // group 1
        let g = group_size(page_size) as usize;
        let corrupted: Vec<bool> = data
            .chunks_exact(g)
            .enumerate()
            .map(|(i, chunk)| hash_bytes(chunk) != footer.sums[i])
            .collect();
        assert_eq!(corrupted, vec![false, true, false, false]);
    }

    #[test]
    fn geometry_is_sector_aligned() {
        for bits in [6u32, 10, 16, 20, 22] {
            let ps = 1u64 << bits;
            assert_eq!(footer_len(ps) % 512, 0);
            assert!(footer_len(ps) >= (5 + group_count(ps)) * 8);
            assert_eq!(stride(ps), ps + footer_len(ps));
        }
    }
}
