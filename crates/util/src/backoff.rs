//! Exponential backoff for wait loops.
//!
//! The resize protocol (Appendix B) and I/O completion paths contain loops
//! that wait for *another thread* to make progress — a chunk migrator waiting
//! for prepare-phase pinners to drain, a session waiting for async reads. Hot
//! `yield_now` spinning in those loops starves the very thread being waited
//! on when cores are scarce (a single-core host turns the wait into a
//! livelock). [`Backoff`] escalates spin → yield → capped sleep so a waiter's
//! CPU share decays geometrically while the latency cost on multi-core hosts
//! stays negligible (the first several iterations never leave userspace).

use std::time::Duration;

/// Number of leading iterations that only execute `spin_loop` hints.
const SPIN_LIMIT: u32 = 6;
/// Iterations (after spinning) that yield to the OS scheduler.
const YIELD_LIMIT: u32 = 10;
/// Cap on the sleep interval once the waiter starts sleeping.
const MAX_SLEEP: Duration = Duration::from_millis(1);

/// An exponential-backoff helper: `snooze()` costs ~nothing at first and
/// decays to a capped 1 ms sleep for long waits.
///
/// Unlike everything else in this crate, `snooze` may *block* (sleep); it is
/// meant for slow-path wait loops, never for latch-free operation paths.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh backoff at the cheapest (pure-spin) stage.
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets to the pure-spin stage — call after observing progress, so one
    /// slow interval does not penalize subsequent short waits.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// True once `snooze` has escalated past spinning/yielding to sleeping.
    pub fn is_sleeping(&self) -> bool {
        self.step > SPIN_LIMIT + YIELD_LIMIT
    }

    /// Waits one backoff step: `2^step` spin hints, then OS yields, then
    /// exponentially growing sleeps capped at [`MAX_SLEEP`].
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step <= SPIN_LIMIT + YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            let exp = (self.step - SPIN_LIMIT - YIELD_LIMIT).min(10);
            let sleep = Duration::from_micros(1u64 << exp).min(MAX_SLEEP);
            std::thread::sleep(sleep);
        }
        self.step = self.step.saturating_add(1);
    }
}
