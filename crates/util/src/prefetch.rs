//! Software prefetch hints for the batched-operation pipeline.
//!
//! The batched read path (MICA-style, see DESIGN.md §3) hides DRAM latency by
//! issuing prefetches for every key's hash bucket before the first probe, and
//! for every resolved record address before the first dereference, so the
//! independent cache misses of a batch overlap instead of serializing.
//!
//! These are *hints*: they never fault (the hardware drops prefetches to
//! unmapped addresses), so callers may pass stale or even dangling pointers
//! that were merely valid at some point in the epoch. On architectures
//! without a stable intrinsic the functions compile to nothing.

/// Prefetches the cache line containing `p` into all cache levels for a read.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = p;
    }
}

/// Prefetches the cache line containing `p` anticipating a write (RFO), so a
/// subsequent CAS or store does not pay a second ownership round-trip.
#[inline(always)]
pub fn prefetch_write<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // T0 read prefetch: still overlaps the miss; PREFETCHW has no stable
        // Rust intrinsic and the ownership upgrade is cheap once resident.
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!("prfm pstl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_never_faults() {
        let v = [0u64; 8];
        prefetch_read(v.as_ptr());
        prefetch_write(v.as_ptr());
        // Hints must be safe on null and wild addresses alike.
        prefetch_read::<u64>(std::ptr::null());
        prefetch_write::<u64>(0xDEAD_BEEFusize as *const u64);
    }
}
