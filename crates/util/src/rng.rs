//! A tiny xorshift64* generator for hot paths.
//!
//! Latch-free retry loops (two-phase index insert back-off, §3.2) and cheap
//! workload shuffles want a few random bits without the weight of a full RNG
//! crate on the hot path. xorshift64* has a 2^64−1 period and passes the
//! statistical smoke tests below; it is *not* cryptographic and is never used
//! where distribution quality matters (YCSB uses `rand` via `faster-ycsb`).

/// xorshift64* pseudo-random generator.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped (xorshift has
    /// an all-zero fixed point).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn bounded_values_in_range_and_roughly_uniform() {
        let mut r = XorShift64::new(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64::new(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
