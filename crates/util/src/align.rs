//! Cache-line alignment primitives.
//!
//! FASTER stores one epoch-table entry per thread "with one cache-line per
//! thread" (§2.3) and sizes every hash bucket to exactly one cache line
//! (§3.1). [`CacheAligned`] provides that layout guarantee; the compile-time
//! assertions at the bottom of this module keep it honest.

/// Size (and alignment) of a cache line on every architecture we target.
///
/// The paper assumes "a 64-bit machine with 64-byte cache lines" (§3); all of
/// the index math (7 entries + 1 overflow pointer per bucket) depends on it.
pub const CACHE_LINE_SIZE: usize = 64;

/// Wraps a value so that it occupies at least one full, aligned cache line.
///
/// Used to give each thread's epoch entry and each per-frame status word its
/// own line, eliminating false sharing on the hot refresh path.
///
/// ```
/// use faster_util::{CacheAligned, CACHE_LINE_SIZE};
/// let x = CacheAligned::new(7u64);
/// assert_eq!(*x, 7);
/// assert_eq!(std::mem::align_of::<CacheAligned<u64>>(), CACHE_LINE_SIZE);
/// ```
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct CacheAligned<T>(pub T);

impl<T> CacheAligned<T> {
    /// Wraps `value` in a cache-line aligned cell.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(value)
    }

    /// Consumes the wrapper and returns the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> core::ops::Deref for CacheAligned<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> core::ops::DerefMut for CacheAligned<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: Clone> Clone for CacheAligned<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

const _: () = {
    assert!(core::mem::align_of::<CacheAligned<u8>>() == CACHE_LINE_SIZE);
    assert!(core::mem::size_of::<CacheAligned<u8>>() == CACHE_LINE_SIZE);
    assert!(core::mem::size_of::<CacheAligned<[u64; 8]>>() == CACHE_LINE_SIZE);
};

/// Rounds `n` up to the next multiple of `align` (a power of two).
///
/// Record sizes in the log are 8-byte aligned (§4); page flushes are
/// sector-aligned (§5.1). Both call through here.
#[inline]
pub const fn align_up(n: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

/// Rounds `n` down to the previous multiple of `align` (a power of two).
#[inline]
pub const fn align_down(n: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    n & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_aligned_layout() {
        assert_eq!(std::mem::size_of::<CacheAligned<u64>>(), 64);
        assert_eq!(std::mem::align_of::<CacheAligned<u64>>(), 64);
        // An array of aligned cells keeps each element on its own line.
        let v: Vec<CacheAligned<u64>> = (0..4).map(CacheAligned::new).collect();
        let a0 = &v[0] as *const _ as usize;
        let a1 = &v[1] as *const _ as usize;
        assert_eq!(a1 - a0, 64);
    }

    #[test]
    fn deref_round_trip() {
        let mut c = CacheAligned::new(41u32);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn align_up_down() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(align_down(9, 8), 8);
        assert_eq!(align_down(7, 8), 0);
        assert_eq!(align_up(513, 512), 1024);
    }
}
