//! 64-bit key hashing and the offset/tag decomposition of §3.1.
//!
//! The FASTER index addresses a bucket with the first `k` bits of the hash
//! (the *offset*) and disambiguates entries within the bucket with the next
//! 15 bits (the *tag*), raising the effective resolution to `k + 15` bits.
//! [`KeyHash`] packages a 64-bit hash value together with that decomposition
//! so the index and the store never disagree about which bits mean what.
//!
//! The hash function itself is a from-scratch implementation of the
//! xxHash64-style avalanche mixer: cheap (a handful of multiplies and shifts
//! per 8 bytes), statistically strong (passes the unit-level avalanche checks
//! below), and — critically for the index — with well-mixed *high* bits, since
//! the offset is taken from the top of the word.

/// Default number of tag bits, matching Fig 2 (15 bits + 1 tentative bit).
pub const DEFAULT_TAG_BITS: u8 = 15;

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Final avalanche: every input bit affects every output bit.
#[inline(always)]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// Hashes a single 64-bit word. This is the hot path for the paper's 8-byte
/// YCSB keys, so it is a straight-line sequence with no branches.
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    let mut h = PRIME64_5.wrapping_add(8);
    let k = key.wrapping_mul(PRIME64_2).rotate_left(31).wrapping_mul(PRIME64_1);
    h ^= k;
    h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
    avalanche(h)
}

/// Hashes an arbitrary byte slice (used for variable-length keys).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = PRIME64_5.wrapping_add(bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let k = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        let k = k.wrapping_mul(PRIME64_2).rotate_left(31).wrapping_mul(PRIME64_1);
        h ^= k;
        h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
    }
    for &b in chunks.remainder() {
        h ^= (b as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }
    avalanche(h)
}

/// Hashes a batch of POD keys into `out` (cleared first). Computing every
/// hash before the first index probe is stage one of the batched pipeline:
/// the hashes are pure ALU work, and having them all in hand lets the caller
/// issue one prefetch per target bucket before any dependent load.
#[inline]
pub fn hash_keys<K: crate::pod::Pod>(keys: &[K], out: &mut Vec<KeyHash>) {
    out.clear();
    out.reserve(keys.len());
    out.extend(keys.iter().map(KeyHash::of_pod));
}

/// A 64-bit key hash plus the §3.1 offset/tag views over it.
///
/// The *offset* (bucket index) is taken from the **high** bits and the *tag*
/// from the bits immediately below it, so that growing the index by one bit
/// (Appendix B resizing) splits every bucket into exactly two child buckets —
/// the property the chunked-split algorithm relies on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KeyHash(pub u64);

impl KeyHash {
    /// Wraps a raw 64-bit hash value.
    #[inline]
    pub const fn new(h: u64) -> Self {
        Self(h)
    }

    /// Computes the hash of a 64-bit key.
    #[inline]
    pub fn of_u64(key: u64) -> Self {
        Self(hash_u64(key))
    }

    /// Computes the hash of any fixed-size POD key from its byte image. This
    /// is the canonical key→hash mapping for the store: every component that
    /// hashes a key (scalar ops, batched ops, recovery) must agree with it.
    #[inline]
    pub fn of_pod<K: crate::pod::Pod>(key: &K) -> Self {
        Self(hash_bytes(crate::pod::bytes_of(key)))
    }

    /// The bucket index in a table of `2^k_bits` buckets: top `k_bits` bits.
    #[inline]
    pub fn bucket_index(self, k_bits: u8) -> usize {
        debug_assert!(k_bits as u32 <= 63);
        if k_bits == 0 {
            0
        } else {
            (self.0 >> (64 - k_bits)) as usize
        }
    }

    /// The tag used inside the bucket entry: `tag_bits` bits right below the
    /// offset bits. Returns 0 when `tag_bits == 0` (tags disabled — the
    /// §7.2.2 "0-bit tag" configuration).
    #[inline]
    pub fn tag(self, k_bits: u8, tag_bits: u8) -> u16 {
        debug_assert!(tag_bits <= 15, "entry format reserves 15 bits for the tag");
        if tag_bits == 0 {
            return 0;
        }
        let shift = 64 - k_bits as u32 - tag_bits as u32;
        ((self.0 >> shift) as u16) & ((1u16 << tag_bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
        let set: HashSet<u64> = (0..10_000u64).map(hash_u64).collect();
        assert_eq!(set.len(), 10_000, "no collisions on small sequential keys");
    }

    #[test]
    fn avalanche_quality_high_bits() {
        // Flipping one input bit should flip ~half the output bits; the index
        // uses the *high* bits, so specifically check they move.
        let mut total = 0u32;
        for i in 0..64 {
            let a = hash_u64(0xDEAD_BEEF);
            let b = hash_u64(0xDEAD_BEEF ^ (1 << i));
            let diff = (a ^ b).count_ones();
            assert!(diff >= 16, "bit {i} produced weak diffusion: {diff}");
            assert!((a ^ b) >> 48 != 0, "high bits unaffected by input bit {i}");
            total += diff;
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&avg), "avg flipped bits {avg}");
    }

    #[test]
    fn bytes_hash_matches_width() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abcd"));
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
        // 8-byte slices and hash_u64 need not agree, but must both be stable.
        let k = 0x0102_0304_0506_0708u64;
        assert_eq!(hash_bytes(&k.to_le_bytes()), hash_bytes(&k.to_le_bytes()));
    }

    #[test]
    fn offset_tag_decomposition() {
        let h = KeyHash::new(0xFFFF_0000_0000_0000);
        assert_eq!(h.bucket_index(16), 0xFFFF);
        assert_eq!(h.tag(16, 15), 0);
        let h = KeyHash::new(0x0000_FFFE_0000_0000);
        assert_eq!(h.bucket_index(16), 0);
        // bits 47..33 (15 bits below the 16 offset bits)
        assert_eq!(h.tag(16, 15), 0x7FFF);
        // zero tag bits always yields tag 0
        assert_eq!(h.tag(16, 0), 0);
    }

    #[test]
    fn bucket_index_bounds() {
        for k in [1u8, 4, 8, 20] {
            for key in 0..1000u64 {
                let h = KeyHash::of_u64(key);
                assert!(h.bucket_index(k) < (1usize << k));
                assert!(h.tag(k, 15) <= 0x7FFF);
                assert!(h.tag(k, 4) <= 0xF);
                assert!(h.tag(k, 1) <= 1);
            }
        }
    }

    #[test]
    fn k_bits_zero_single_bucket() {
        assert_eq!(KeyHash::of_u64(123).bucket_index(0), 0);
    }
}
