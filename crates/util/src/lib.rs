//! # faster-util
//!
//! Shared low-level building blocks for the FASTER (SIGMOD 2018) reproduction:
//!
//! * [`align`] — cache-line sized/aligned wrappers used for the epoch table and
//!   hash buckets (the paper lays both out at 64-byte granularity, §2.3/§3.1).
//! * [`hash`] — the 64-bit key hash and its decomposition into the index
//!   *offset* (first `k` bits) and *tag* (next 15 bits) described in §3.1.
//! * [`pod`] — the [`pod::Pod`] marker trait for fixed-size, plain-old-data
//!   keys and values that may live inside log pages.
//! * [`prefetch`] — software prefetch hints (with portable no-op fallback)
//!   used by the batched-operation pipeline to overlap independent misses.
//! * [`rng`] — a tiny, dependency-free xorshift generator for hot paths where
//!   pulling in `rand` would be overkill (e.g. insert back-off jitter).
//! * [`backoff`] — exponential spin/yield/sleep backoff for slow-path wait
//!   loops (resize migration waits, I/O completion waits).
//!
//! Everything in this crate is `no_std`-shaped in spirit (no I/O, no locks)
//! and is used from latch-free code, so nothing here may block — with the one
//! documented exception of [`backoff::Backoff::snooze`], which is exclusively
//! for slow-path waits.

pub mod address;
pub mod align;
pub mod backoff;
pub mod hash;
pub mod pod;
pub mod prefetch;
pub mod rng;

pub use address::Address;
pub use align::{align_down, align_up, CacheAligned, CACHE_LINE_SIZE};
pub use backoff::Backoff;
pub use hash::{hash_bytes, hash_keys, hash_u64, KeyHash};
pub use pod::{bytes_of, pod_from_bytes, Pod};
pub use prefetch::{prefetch_read, prefetch_write};
pub use rng::XorShift64;
