//! Plain-old-data marker for keys and values stored inline in log pages.
//!
//! FASTER records live inside raw log pages and are read/written through
//! pointers while other threads may be doing the same (§4: "user threads read
//! and modify record values in the safety of epoch protection"). To make that
//! sound in Rust, inline keys and values must be types whose bytes can be
//! copied and compared freely: no drop glue, no references, fixed size.
//!
//! Variable-length values are layered on top in `faster-core::varlen` using a
//! length-prefixed byte representation whose header is itself `Pod`.

/// Marker trait for fixed-size plain-old-data types.
///
/// # Safety
///
/// Implementors must guarantee:
/// * the type is `Copy` with no drop glue and contains no references,
///   pointers-with-ownership, or interior mutability;
/// * any bit pattern produced by copying the bytes of a valid value is itself
///   a valid value (the log persists and reloads raw bytes);
/// * `size_of::<Self>()` is the full wire size (padding bytes, if any, are
///   written to storage and must not carry meaning).
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// Safety: primitive integers and fixed arrays of them satisfy every clause.
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for u128 {}
unsafe impl Pod for usize {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for i128 {}
unsafe impl Pod for isize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl Pod for () {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}
unsafe impl<A: Pod, B: Pod> Pod for (A, B) {}

/// Views a `Pod` value as its raw bytes.
#[inline(always)]
pub fn bytes_of<T: Pod>(v: &T) -> &[u8] {
    // Safety: Pod guarantees every byte is initialized and meaningful-to-copy.
    unsafe { core::slice::from_raw_parts(v as *const T as *const u8, core::mem::size_of::<T>()) }
}

/// Reconstructs a `Pod` value from raw bytes.
///
/// # Panics
///
/// Panics if `bytes.len() != size_of::<T>()`.
#[inline]
pub fn pod_from_bytes<T: Pod>(bytes: &[u8]) -> T {
    assert_eq!(bytes.len(), core::mem::size_of::<T>());
    // Safety: Pod guarantees any bit pattern of the right size is valid; we
    // use read_unaligned because callers may pass unaligned log slices.
    unsafe { core::ptr::read_unaligned(bytes.as_ptr() as *const T) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let v = 0xDEAD_BEEF_u64;
        assert_eq!(pod_from_bytes::<u64>(bytes_of(&v)), v);
        let f = 3.5f64;
        assert_eq!(pod_from_bytes::<f64>(bytes_of(&f)), f);
    }

    #[test]
    fn round_trip_arrays_and_tuples() {
        let a = [1u32, 2, 3, 4];
        assert_eq!(pod_from_bytes::<[u32; 4]>(bytes_of(&a)), a);
        let t = (7u64, 9u64);
        assert_eq!(pod_from_bytes::<(u64, u64)>(bytes_of(&t)), t);
    }

    #[test]
    #[should_panic]
    fn wrong_size_panics() {
        let _ = pod_from_bytes::<u64>(&[0u8; 4]);
    }

    #[test]
    fn unaligned_read_ok() {
        let mut buf = [0u8; 12];
        buf[3..11].copy_from_slice(&0xABCD_EF01_2345_6789u64.to_le_bytes());
        let v = pod_from_bytes::<u64>(&buf[3..11]);
        assert_eq!(v, u64::from_le_bytes(buf[3..11].try_into().unwrap()));
    }
}
