//! 48-bit addresses, logical or physical (§3.1, §5.1).
//!
//! A FASTER hash-bucket entry steals 16 of its 64 bits for the tag and the
//! tentative bit, leaving 48 bits of address. With the in-memory allocator
//! the address is a physical pointer; with the log allocators it is a
//! *logical* address into the global log address space. [`Address`] is the
//! common 48-bit currency; the log crate layers a page/offset decomposition
//! on top of it.
//!
//! Address `0` is [`Address::INVALID`]; real log addresses start at
//! [`Address::FIRST_VALID`] (= 64) so that a zeroed hash-bucket entry — which
//! means *empty slot* — can never be confused with an entry pointing at a
//! live record.

/// A 48-bit record address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(u64);

impl Address {
    /// Number of usable address bits.
    pub const BITS: u32 = 48;
    /// Mask of the valid address bits.
    pub const MASK: u64 = (1 << Self::BITS) - 1;
    /// The null address.
    pub const INVALID: Address = Address(0);
    /// Smallest address a log allocator hands out. The first 64 bytes of the
    /// logical address space are reserved, so `entry == 0` unambiguously
    /// means "empty hash-bucket slot".
    pub const FIRST_VALID: Address = Address(64);
    /// Largest representable address.
    pub const MAX: Address = Address(Self::MASK);

    /// Wraps a raw 48-bit value.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `raw` exceeds 48 bits.
    #[inline(always)]
    pub const fn new(raw: u64) -> Self {
        debug_assert!(raw <= Self::MASK);
        Address(raw)
    }

    /// The raw 48-bit value.
    #[inline(always)]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True unless this is [`Address::INVALID`].
    #[inline(always)]
    pub const fn is_valid(self) -> bool {
        self.0 != 0
    }

    /// Address `n` bytes further along.
    #[inline(always)]
    pub const fn offset_by(self, n: u64) -> Address {
        Address::new(self.0 + n)
    }

    /// The page number under a `page_bits`-bit page-offset split (§5.1).
    #[inline(always)]
    pub const fn page(self, page_bits: u32) -> u64 {
        self.0 >> page_bits
    }

    /// The within-page offset under a `page_bits`-bit split.
    #[inline(always)]
    pub const fn offset(self, page_bits: u32) -> u64 {
        self.0 & ((1 << page_bits) - 1)
    }

    /// Builds an address from page number and offset.
    #[inline]
    pub const fn from_page_offset(page: u64, offset: u64, page_bits: u32) -> Address {
        debug_assert!(offset < (1 << page_bits));
        Address::new((page << page_bits) | offset)
    }
}

impl std::fmt::Debug for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_valid() {
            write!(f, "Address({:#x})", self.0)
        } else {
            write!(f, "Address(INVALID)")
        }
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity() {
        assert!(!Address::INVALID.is_valid());
        assert!(Address::FIRST_VALID.is_valid());
        assert!(Address::MAX.is_valid());
        assert_eq!(Address::FIRST_VALID.raw(), 64);
    }

    #[test]
    fn page_offset_round_trip() {
        let page_bits = 22; // 4 MB pages, the paper's configuration
        for (p, o) in [(0u64, 0u64), (1, 0), (3, 12345), (1000, (1 << 22) - 1)] {
            let a = Address::from_page_offset(p, o, page_bits);
            assert_eq!(a.page(page_bits), p);
            assert_eq!(a.offset(page_bits), o);
        }
    }

    #[test]
    fn offset_by_advances() {
        let a = Address::new(100);
        assert_eq!(a.offset_by(28).raw(), 128);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(Address::new(5) < Address::new(6));
        assert!(Address::INVALID < Address::FIRST_VALID);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn oversized_panics_in_debug() {
        let _ = Address::new(1 << 48);
    }
}
