//! Log2-bucketed latency histograms.
//!
//! Values (nanoseconds) land in bucket `⌈log2(v)⌉`: bucket 0 holds {0, 1},
//! bucket `b ≥ 1` holds `[2^(b-1)+1, 2^b]`. 64 buckets cover the full u64
//! range, so recording never saturates. Percentiles are reconstructed from
//! the bucket counts with linear interpolation inside the winning bucket —
//! coarse (≤2x error by construction) but allocation-free and mergeable.
//!
//! Recording an observation is three relaxed atomic RMWs (count, sum, max).
//! The expensive part — `Instant::now()` — lives in [`Timer`] and is
//! compiled out unless the `timing` feature is enabled, so default builds
//! never touch the clock.

use std::sync::atomic::{AtomicU64, Ordering};

pub const HISTOGRAM_BUCKETS: usize = 64;

#[cfg_attr(feature = "off", allow(dead_code))]
#[inline]
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // ⌈log2(v)⌉ for v ≥ 2.
        (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Lower/upper value bounds of a bucket (inclusive).
#[inline]
fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 1)
    } else {
        ((1u64 << (b - 1)) + 1, 1u64 << b)
    }
}

pub struct LatencyHistogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation in nanoseconds.
    #[inline]
    pub fn record(&self, nanos: u64) {
        #[cfg(not(feature = "off"))]
        {
            self.counts[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(nanos, Ordering::Relaxed);
            self.max.fetch_max(nanos, Ordering::Relaxed);
        }
        #[cfg(feature = "off")]
        let _ = nanos;
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            total: counts.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            counts,
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a histogram, with percentile reconstruction.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    pub counts: Vec<u64>,
    pub total: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Reconstruct the `q`-quantile (`q` in [0, 1]) by rank-walking the
    /// buckets and interpolating linearly inside the winning bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target observation.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(b);
                let into = rank - seen; // 1..=c
                let frac = if c <= 1 { 1.0 } else { (into - 1) as f64 / (c - 1) as f64 };
                let v = lo as f64 + frac * (hi - lo) as f64;
                // Never report beyond the observed max.
                return (v as u64).min(self.max.max(lo));
            }
            seen += c;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A scoped latency timer. Zero-sized and free unless the `timing` feature
/// is compiled in; with `timing`, construction reads the monotonic clock
/// when `enabled` is true (a runtime switch from `MetricsConfig`).
#[must_use]
pub struct Timer {
    #[cfg(feature = "timing")]
    start: Option<std::time::Instant>,
}

impl Timer {
    #[inline]
    pub fn start(enabled: bool) -> Timer {
        #[cfg(feature = "timing")]
        {
            Timer {
                start: if enabled {
                    Some(std::time::Instant::now())
                } else {
                    None
                },
            }
        }
        #[cfg(not(feature = "timing"))]
        {
            let _ = enabled;
            Timer {}
        }
    }

    /// Record the elapsed time into `hist`. No-op in non-`timing` builds.
    #[inline]
    pub fn observe(self, hist: &LatencyHistogram) {
        #[cfg(feature = "timing")]
        if let Some(s) = self.start {
            hist.record(s.elapsed().as_nanos() as u64);
        }
        #[cfg(not(feature = "timing"))]
        let _ = hist;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for b in 0..HISTOGRAM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b, "lo of bucket {b}");
            assert_eq!(bucket_of(hi), b, "hi of bucket {b}");
        }
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn quantiles_are_sane() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.total, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.p50();
        // Log2 buckets give ≤2x error.
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        assert!(s.p99() >= s.p50());
        assert!(s.p99() <= s.max);
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn quantile_of_single_observation() {
        let h = LatencyHistogram::new();
        h.record(777);
        let s = h.snapshot();
        assert_eq!(s.total, 1);
        assert!(s.p50() <= 777 + 1024);
        assert_eq!(s.max, 777);
        assert!(s.p99() <= s.max);
    }
}
