//! Lock-free counters.
//!
//! Two flavors:
//!
//! * [`Counter`] — sharded across cache-line-padded atomic cells so that
//!   unrelated threads incrementing the same logical counter never contend
//!   on one cache line. Adds are relaxed load+store on the calling thread's
//!   shard — not an atomic RMW — so the hot path never pays a locked
//!   instruction. Shard choice hashes a stack address, so two threads can
//!   land on the same shard and rarely lose an increment under a race,
//!   which observability tolerates. Reads sum the shards, so a snapshot is
//!   monotone but not a linearizable cut.
//! * [`Cell64`] — a single relaxed atomic for values owned by one writer
//!   (e.g. a per-session recorder) but read concurrently by snapshots.
//!   Single-writer by contract, so it also updates with load+store.
//!
//! With the `off` cargo feature both compile to no-ops so the bench harness
//! can A/B the instrumentation overhead.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of shards per counter. Power of two; bounded so a `Counter` stays
/// at 1 KiB. More threads than shards share shards, which is still mostly
/// uncontended in the common case.
pub const COUNTER_SHARDS: usize = 16;

#[repr(align(64))]
struct PaddedCell(AtomicU64);

/// Picks this thread's shard from the address of a stack local. Thread
/// stacks live in distinct multi-megabyte mappings, so the address's
/// middle bits (256 KiB granularity — coarser than any realistic call
/// depth, finer than stack spacing) discriminate threads without touching
/// TLS: under the default PIE build, `thread_local!` access from a
/// dependency crate compiles to a `__tls_get_addr` call, which costs more
/// than the counter bump itself. Distinct threads can hash to the same
/// shard; the load+store update below then may rarely drop an increment,
/// which observability tolerates (exact counters use [`Cell64`]).
#[cfg_attr(feature = "off", allow(dead_code))]
#[inline]
fn shard_id() -> usize {
    let marker = 0u8;
    let sp = &marker as *const u8 as usize;
    ((sp >> 18).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) & (COUNTER_SHARDS - 1)
}

/// A monotone event counter sharded per thread.
pub struct Counter {
    shards: [PaddedCell; COUNTER_SHARDS],
}

impl Counter {
    pub fn new() -> Self {
        Counter {
            shards: std::array::from_fn(|_| PaddedCell(AtomicU64::new(0))),
        }
    }

    /// Add `n` to the calling thread's shard. A relaxed load+store rather
    /// than `fetch_add`: the shard is thread-private in the common case and
    /// a locked RMW on the hot path costs more than a lost increment on the
    /// rare shared-shard race is worth.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "off"))]
        {
            let cell = &self.shards[shard_id()].0;
            cell.store(cell.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
        }
        #[cfg(feature = "off")]
        let _ = n;
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` here and `m` to `other` with a single shard lookup — for
    /// hot paths that always bump a pair together (e.g. the index's
    /// `probes`/`probe_steps`).
    #[inline]
    pub fn add_two(&self, n: u64, other: &Counter, m: u64) {
        #[cfg(not(feature = "off"))]
        {
            let s = shard_id();
            let a = &self.shards[s].0;
            a.store(a.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
            let b = &other.shards[s].0;
            b.store(b.load(Ordering::Relaxed).wrapping_add(m), Ordering::Relaxed);
        }
        #[cfg(feature = "off")]
        let _ = (n, other, m);
    }

    /// Sum of all shards. Monotone across calls; concurrent adds may or may
    /// not be included.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A single-writer relaxed atomic counter cell (unsharded). Used inside
/// per-session recorders where only the owning session thread writes.
#[derive(Default)]
pub struct Cell64(AtomicU64);

impl Cell64 {
    pub const fn new() -> Self {
        Cell64(AtomicU64::new(0))
    }

    /// Relaxed load+store, not `fetch_add`: the single-writer contract
    /// makes the RMW race impossible, so the lock prefix would be pure cost.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "off"))]
        self.0.store(self.0.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
        #[cfg(feature = "off")]
        let _ = n;
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Cell64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cell64({})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        // Sequential spawn/join: shards may be shared (shard choice hashes
        // stack addresses), but without concurrency the sum stays exact.
        for _ in 0..8 {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            })
            .join()
            .unwrap();
        }
        #[cfg(not(feature = "off"))]
        assert_eq!(c.get(), 80_000);
        #[cfg(feature = "off")]
        assert_eq!(c.get(), 0);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn concurrent_counter_stays_close() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Unlocked shard updates may drop increments only when two threads
        // share a shard; the count is never inflated and stays near-exact.
        let n = c.get();
        assert!(n <= 80_000, "counts never inflate: {n}");
        assert!(n >= 40_000, "loss should be rare, not wholesale: {n}");
    }

    #[test]
    fn cell_add() {
        let c = Cell64::new();
        c.add(3);
        c.inc();
        #[cfg(not(feature = "off"))]
        assert_eq!(c.get(), 4);
        #[cfg(feature = "off")]
        assert_eq!(c.get(), 0);
    }
}
