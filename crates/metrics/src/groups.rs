//! Per-subsystem metric groups.
//!
//! Each runtime crate (epoch, index, hlog, core) holds an `Arc` to its
//! group and bumps counters inline; the registry owns the same `Arc`s and
//! assembles snapshots on demand. Groups never reference the crates they
//! instrument, so `faster-metrics` stays at the bottom of the dependency
//! graph.

use crate::counter::{Cell64, Counter};
use crate::histogram::LatencyHistogram;
use std::sync::{Arc, Mutex};

/// Epoch-protection events.
#[derive(Default, Debug)]
pub struct EpochMetrics {
    /// `EpochGuard::refresh` calls that published a new local epoch.
    pub refreshes: Counter,
    /// Global epoch bumps (`bump` / `bump_with`).
    pub bumps: Counter,
    /// Deferred drain-list actions executed once their epoch became safe.
    pub drain_actions: Counter,
}

/// Hash-index events.
#[derive(Default, Debug)]
pub struct IndexMetrics {
    /// Bucket-chain lookups started (`find`-family calls).
    pub probes: Counter,
    /// Total entry slots inspected across all probes (probe length numerator).
    pub probe_steps: Counter,
    /// Overflow buckets allocated when a chain ran out of slots.
    pub overflow_allocs: Counter,
    /// Two-phase tentative inserts that lost the race and restarted.
    pub tentative_restarts: Counter,
    /// Resize migration chunks claimed (freeze won).
    pub resize_chunk_claims: Counter,
    /// Backoff waits spun during resize coordination.
    pub resize_backoffs: Counter,
}

/// HybridLog events. The read cache's internal log gets its own instance.
#[derive(Default, Debug)]
pub struct HlogMetrics {
    /// Successful record allocations on the tail.
    pub appends: Counter,
    /// `try_allocate` misses (page full / head-lag backpressure) that forced
    /// the caller to retry or refresh.
    pub alloc_retries: Counter,
    /// Pages sealed (closed for further allocation).
    pub page_seals: Counter,
    /// Page flushes issued to the device.
    pub flushes_issued: Counter,
    /// Page flushes whose completion callback reported success.
    pub flushes_completed: Counter,
    /// Page flushes whose completion callback reported an error.
    pub flushes_failed: Counter,
    /// Flush attempts re-submitted after a transient device write error
    /// (each also re-counted in `flushes_issued`).
    pub flush_retries: Counter,
    /// Pages whose flush exhausted its retry budget (or hit a permanent
    /// error) and were quarantined: the frontier advanced past them, their
    /// on-disk bytes are untrusted, and reads of them return `Corrupt`.
    pub pages_quarantined: Counter,
    /// Cold reads whose bytes failed checksum verification (includes reads
    /// short-circuited by a quarantined page).
    pub corrupt_reads: Counter,
    /// In-memory frames evicted when the head advanced.
    pub frames_evicted: Counter,
    /// Record reads issued to the device (`read_async`).
    pub reads_issued: Counter,
    /// Record reads whose completion callback ran.
    pub reads_completed: Counter,
    /// Bytes made dead by the store layer: records superseded by an RCU,
    /// shadowed by a tombstone, or abandoned after a lost insert race. Fed by
    /// `HybridLog::note_dead_bytes`; monotone — truncation is tracked
    /// separately so `dead_bytes - bytes_truncated` estimates reclaimable
    /// space still on the log.
    pub dead_bytes: Counter,
    /// Bytes dropped below `begin` by `shift_begin_address` (GC/compaction).
    pub bytes_truncated: Counter,
}

/// Write-ahead-log events (populated only when the store runs with a WAL).
#[derive(Default)]
pub struct WalMetrics {
    /// Records appended to the WAL.
    pub appends: Counter,
    /// Payload + header bytes appended.
    pub bytes: Counter,
    /// Group commits whose flush barrier succeeded (groups acked).
    pub commits: Counter,
    /// Group commits whose flush barrier failed (groups never acked).
    pub commit_failures: Counter,
    /// Records per acked group ("latency" histogram reused as a size
    /// distribution: record with unit = records, not nanoseconds).
    pub group_size: LatencyHistogram,
    /// Append-to-durable latency per acked group.
    pub commit_latency: LatencyHistogram,
}

/// Read-cache events (populated only when the store has a read cache).
#[derive(Default, Debug)]
pub struct ReadCacheMetrics {
    /// Reads served from a cached record.
    pub hits: Counter,
    /// Reads not served by the cache (counted only while a cache is
    /// configured, so `hits + misses` = reads issued with caching on and
    /// `hit_rate` measures overall cache effectiveness).
    pub misses: Counter,
    /// Second-chance promotions (cold record re-inserted on re-access).
    pub promotions: Counter,
    /// Records inserted into the cache after a cold read completed.
    pub inserts: Counter,
}

/// Per-session operation counts. One recorder per live session; the owning
/// session thread is the only writer, so unsharded relaxed cells suffice.
/// The whole struct is cache-line aligned so two sessions' recorders never
/// share a line.
#[repr(align(64))]
#[derive(Default, Debug)]
pub struct SessionRecorder {
    /// Public read operations started.
    pub reads: Cell64,
    /// Reads whose first synchronous return was served by the read cache.
    pub rc_hits: Cell64,
    /// Reads whose first synchronous return came from the in-memory log
    /// (found or not-found) without going pending.
    pub mem_reads: Cell64,
    /// Reads whose first synchronous return was `Pending` (disk I/O issued).
    pub reads_pending: Cell64,

    /// Public upsert operations.
    pub upserts: Cell64,
    /// Public RMW operations.
    pub rmws: Cell64,
    /// Public delete operations.
    pub deletes: Cell64,
    /// Batch API invocations (each spanning many ops counted above).
    pub batches: Cell64,

    /// Successful mutations (each also counted in exactly one of
    /// `in_place` / `rcu` / `appends` — the consistency-test identity).
    pub writes: Cell64,
    /// Mutations applied in place inside the mutable region.
    pub in_place: Cell64,
    /// Mutations that copied an existing record to the tail (read-copy-update).
    pub rcu: Cell64,
    /// Mutations that appended a fresh record (no prior version updated).
    pub appends: Cell64,
    /// Delta records appended by the CRDT/delta path (subset of `appends`).
    pub deltas: Cell64,
    /// RMWs that found their target in the fuzzy region and went pending.
    pub fuzzy_pending: Cell64,

    /// Disk reads issued on behalf of this session (initial + reissues).
    pub io_issued: Cell64,
    /// Disk-read completions consumed by this session.
    pub io_completed: Cell64,
    /// Pending ops re-issued after a transient I/O failure.
    pub io_retries: Cell64,
    /// Pending ops surfaced as `CompletedOp::Failed` after retry exhaustion.
    pub io_failed: Cell64,
}

/// A plain-data sum of recorder fields; also the retirement accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionTotals {
    pub reads: u64,
    pub rc_hits: u64,
    pub mem_reads: u64,
    pub reads_pending: u64,
    pub upserts: u64,
    pub rmws: u64,
    pub deletes: u64,
    pub batches: u64,
    pub writes: u64,
    pub in_place: u64,
    pub rcu: u64,
    pub appends: u64,
    pub deltas: u64,
    pub fuzzy_pending: u64,
    pub io_issued: u64,
    pub io_completed: u64,
    pub io_retries: u64,
    pub io_failed: u64,
}

impl SessionTotals {
    pub fn accumulate(&mut self, r: &SessionRecorder) {
        self.reads += r.reads.get();
        self.rc_hits += r.rc_hits.get();
        self.mem_reads += r.mem_reads.get();
        self.reads_pending += r.reads_pending.get();
        self.upserts += r.upserts.get();
        self.rmws += r.rmws.get();
        self.deletes += r.deletes.get();
        self.batches += r.batches.get();
        self.writes += r.writes.get();
        self.in_place += r.in_place.get();
        self.rcu += r.rcu.get();
        self.appends += r.appends.get();
        self.deltas += r.deltas.get();
        self.fuzzy_pending += r.fuzzy_pending.get();
        self.io_issued += r.io_issued.get();
        self.io_completed += r.io_completed.get();
        self.io_retries += r.io_retries.get();
        self.io_failed += r.io_failed.get();
    }
}

/// Registry of live session recorders plus the fold of retired ones, and
/// the shared per-op latency histograms.
pub struct SessionHub {
    live: Mutex<Vec<Arc<SessionRecorder>>>,
    retired: Mutex<SessionTotals>,
    /// Runtime switch for the (feature-gated) latency timers.
    pub latency_enabled: bool,
    pub read_latency: LatencyHistogram,
    pub upsert_latency: LatencyHistogram,
    pub rmw_latency: LatencyHistogram,
    pub delete_latency: LatencyHistogram,
    /// In-flight disk-I/O depth sampled at each ring submission (a count,
    /// not a duration; log2 buckets still apply). Unlike the per-op
    /// latencies above, not gated on the `timing` feature — no clock read
    /// is involved.
    pub io_depth: LatencyHistogram,
    /// Disk-read latency, SQE submission to CQE reap, in nanoseconds.
    /// Recorded whenever I/O goes through the ring path (the clock cost is
    /// noise next to an actual disk read), gated only by the `off` feature.
    pub io_latency: LatencyHistogram,
}

impl SessionHub {
    pub fn new(latency_enabled: bool) -> Self {
        SessionHub {
            live: Mutex::new(Vec::new()),
            retired: Mutex::new(SessionTotals::default()),
            latency_enabled,
            read_latency: LatencyHistogram::new(),
            upsert_latency: LatencyHistogram::new(),
            rmw_latency: LatencyHistogram::new(),
            delete_latency: LatencyHistogram::new(),
            io_depth: LatencyHistogram::new(),
            io_latency: LatencyHistogram::new(),
        }
    }

    /// Create and track a fresh recorder for a new session.
    pub fn register(&self) -> Arc<SessionRecorder> {
        let rec = Arc::new(SessionRecorder::default());
        self.live.lock().unwrap().push(Arc::clone(&rec));
        rec
    }

    /// Fold a dropped session's counts into the retired accumulator so the
    /// live list doesn't grow without bound under session churn.
    pub fn retire(&self, rec: &Arc<SessionRecorder>) {
        let mut live = self.live.lock().unwrap();
        if let Some(pos) = live.iter().position(|r| Arc::ptr_eq(r, rec)) {
            let r = live.swap_remove(pos);
            drop(live);
            self.retired.lock().unwrap().accumulate(&r);
        }
    }

    /// Sum over retired and live recorders. Returns the totals and the
    /// number of currently live sessions.
    pub fn totals(&self) -> (SessionTotals, usize) {
        let live = self.live.lock().unwrap();
        let mut t = *self.retired.lock().unwrap();
        for r in live.iter() {
            t.accumulate(r);
        }
        (t, live.len())
    }
}

impl std::fmt::Debug for SessionHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (t, live) = self.totals();
        f.debug_struct("SessionHub")
            .field("live", &live)
            .field("totals", &t)
            .finish()
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn retire_folds_counts() {
        let hub = SessionHub::new(false);
        let a = hub.register();
        let b = hub.register();
        a.reads.add(5);
        b.reads.add(7);
        let (t, live) = hub.totals();
        assert_eq!((t.reads, live), (12, 2));
        hub.retire(&a);
        let (t, live) = hub.totals();
        assert_eq!((t.reads, live), (12, 1));
        // Retiring twice is a no-op (no double count).
        hub.retire(&a);
        assert_eq!(hub.totals().0.reads, 12);
    }
}
