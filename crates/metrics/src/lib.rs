//! faster-metrics — lock-free observability for the FASTER store.
//!
//! Design goals (DESIGN.md §8):
//!
//! * **Zero dependencies.** Sits at the bottom of the workspace graph so
//!   every crate (epoch, index, hlog, core) can hold `Arc`s to its groups.
//! * **Lock-free hot path.** Counters are per-thread-sharded relaxed
//!   atomics ([`Counter`]) or single-writer cells ([`Cell64`]); recording
//!   never takes a lock and never contends across threads.
//! * **Pay only for what you measure.** Latency timers read the clock only
//!   when the `timing` feature is compiled in (exposed as `metrics-timing`
//!   on downstream crates); the default build is counter-only. The `off`
//!   feature no-ops even the counters, existing solely so the bench
//!   harness can measure the counters' own overhead.
//!
//! Snapshots ([`StoreMetrics`]) are plain data with stable text and JSON
//! exports; they are monotone but not linearizable cuts — at quiescence
//! (all sessions drained) they are exact, which is what the
//! counter-identity test asserts.

mod counter;
mod groups;
mod histogram;
mod registry;

pub use counter::{Cell64, Counter, COUNTER_SHARDS};
pub use groups::{
    EpochMetrics, HlogMetrics, IndexMetrics, ReadCacheMetrics, SessionHub, SessionRecorder,
    SessionTotals, WalMetrics,
};
pub use histogram::{HistogramSnapshot, LatencyHistogram, Timer, HISTOGRAM_BUCKETS};
pub use registry::{
    EpochSnapshot, HlogSnapshot, IndexSnapshot, MetricsRegistry, OpLatencies, ReadCacheSnapshot,
    SessionsSnapshot, StorageSnapshot, StoreMetrics, WalSnapshot,
};

/// Runtime metrics configuration, set via `FasterKvConfig::with_metrics`.
#[derive(Clone, Copy, Debug)]
pub struct MetricsConfig {
    /// Runtime switch for per-op latency histograms. Only takes effect in
    /// builds with the `timing` feature (`metrics-timing` downstream);
    /// without it the timers are compiled out regardless of this flag.
    pub latency: bool,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig { latency: true }
    }
}
