//! The store-wide registry and its typed snapshot.
//!
//! `MetricsRegistry` owns one `Arc` per subsystem group; the store hands
//! clones of those `Arc`s to each layer at construction. `snapshot_counters`
//! captures every counter into a plain-data [`StoreMetrics`]; gauge fields
//! (epoch positions, log region addresses, index geometry, device byte
//! totals) are filled in afterwards by `FasterKv::metrics()`, which is the
//! only place that can see the live structures.

use crate::groups::{
    EpochMetrics, HlogMetrics, IndexMetrics, ReadCacheMetrics, SessionHub, SessionTotals,
    WalMetrics,
};
use crate::histogram::HistogramSnapshot;
use crate::MetricsConfig;
use std::sync::Arc;

pub struct MetricsRegistry {
    pub config: MetricsConfig,
    pub epoch: Arc<EpochMetrics>,
    pub index: Arc<IndexMetrics>,
    pub hlog: Arc<HlogMetrics>,
    /// The read cache's internal log (separate so rc churn doesn't pollute
    /// main-log flush/eviction counts).
    pub rc_log: Arc<HlogMetrics>,
    pub read_cache: Arc<ReadCacheMetrics>,
    pub sessions: Arc<SessionHub>,
    /// Write-ahead-log counters (all zero when the store runs without one).
    pub wal: Arc<WalMetrics>,
}

impl MetricsRegistry {
    pub fn new(config: MetricsConfig) -> Self {
        let latency = config.latency;
        MetricsRegistry {
            config,
            epoch: Arc::new(EpochMetrics::default()),
            index: Arc::new(IndexMetrics::default()),
            hlog: Arc::new(HlogMetrics::default()),
            rc_log: Arc::new(HlogMetrics::default()),
            read_cache: Arc::new(ReadCacheMetrics::default()),
            sessions: Arc::new(SessionHub::new(latency)),
            wal: Arc::new(WalMetrics::default()),
        }
    }

    /// Capture all counters. Gauge fields are left zero for the caller
    /// (the store) to fill from live structures.
    pub fn snapshot_counters(&self, with_read_cache: bool) -> StoreMetrics {
        let (totals, live_sessions) = self.sessions.totals();
        StoreMetrics {
            epoch: EpochSnapshot {
                refreshes: self.epoch.refreshes.get(),
                bumps: self.epoch.bumps.get(),
                drain_actions: self.epoch.drain_actions.get(),
                current: 0,
                safe: 0,
            },
            index: IndexSnapshot {
                probes: self.index.probes.get(),
                probe_steps: self.index.probe_steps.get(),
                overflow_allocs: self.index.overflow_allocs.get(),
                tentative_restarts: self.index.tentative_restarts.get(),
                resize_chunk_claims: self.index.resize_chunk_claims.get(),
                resize_backoffs: self.index.resize_backoffs.get(),
                k_bits: 0,
                buckets: 0,
                resize_active: 0,
            },
            hlog: hlog_snapshot(&self.hlog),
            rc_log: hlog_snapshot(&self.rc_log),
            read_cache: if with_read_cache {
                Some(ReadCacheSnapshot {
                    hits: self.read_cache.hits.get(),
                    misses: self.read_cache.misses.get(),
                    promotions: self.read_cache.promotions.get(),
                    inserts: self.read_cache.inserts.get(),
                })
            } else {
                None
            },
            sessions: SessionsSnapshot {
                totals,
                live_sessions: live_sessions as u64,
                io_inflight: totals.io_issued.saturating_sub(totals.io_completed),
                io_depth: self.sessions.io_depth.snapshot(),
                io_latency: self.sessions.io_latency.snapshot(),
                latency: if cfg!(feature = "timing") && self.config.latency {
                    Some(OpLatencies {
                        read: self.sessions.read_latency.snapshot(),
                        upsert: self.sessions.upsert_latency.snapshot(),
                        rmw: self.sessions.rmw_latency.snapshot(),
                        delete: self.sessions.delete_latency.snapshot(),
                    })
                } else {
                    None
                },
            },
            storage: StorageSnapshot::default(),
            wal: WalSnapshot {
                appends: self.wal.appends.get(),
                bytes: self.wal.bytes.get(),
                commits: self.wal.commits.get(),
                commit_failures: self.wal.commit_failures.get(),
                group_size: self.wal.group_size.snapshot(),
                commit_latency: self.wal.commit_latency.snapshot(),
            },
            health: HealthSnapshot::default(),
        }
    }
}

fn hlog_snapshot(m: &HlogMetrics) -> HlogSnapshot {
    HlogSnapshot {
        appends: m.appends.get(),
        alloc_retries: m.alloc_retries.get(),
        page_seals: m.page_seals.get(),
        flushes_issued: m.flushes_issued.get(),
        flushes_completed: m.flushes_completed.get(),
        flushes_failed: m.flushes_failed.get(),
        flush_retries: m.flush_retries.get(),
        pages_quarantined: m.pages_quarantined.get(),
        corrupt_reads: m.corrupt_reads.get(),
        frames_evicted: m.frames_evicted.get(),
        reads_issued: m.reads_issued.get(),
        reads_completed: m.reads_completed.get(),
        dead_bytes: m.dead_bytes.get(),
        bytes_truncated: m.bytes_truncated.get(),
        begin: 0,
        head: 0,
        safe_read_only: 0,
        read_only: 0,
        flushed_until: 0,
        tail: 0,
        active_pages: 0,
    }
}

#[derive(Clone, Debug, Default)]
pub struct EpochSnapshot {
    pub refreshes: u64,
    pub bumps: u64,
    pub drain_actions: u64,
    /// Gauge: current global epoch.
    pub current: u64,
    /// Gauge: safe-to-reclaim epoch.
    pub safe: u64,
}

impl EpochSnapshot {
    /// How far reclamation trails the current epoch.
    pub fn lag(&self) -> u64 {
        self.current.saturating_sub(self.safe)
    }
}

#[derive(Clone, Debug, Default)]
pub struct IndexSnapshot {
    pub probes: u64,
    pub probe_steps: u64,
    pub overflow_allocs: u64,
    pub tentative_restarts: u64,
    pub resize_chunk_claims: u64,
    pub resize_backoffs: u64,
    /// Gauge: table size exponent.
    pub k_bits: u64,
    /// Gauge: main bucket count.
    pub buckets: u64,
    /// Gauge: 1 while a chunked resize (grow or shrink) is in progress —
    /// the maintenance policy must not stack another grow on the inflated
    /// probe signal mid-migration (DESIGN.md §11).
    pub resize_active: u64,
}

impl IndexSnapshot {
    /// Mean entry slots inspected per probe.
    pub fn avg_probe_len(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.probe_steps as f64 / self.probes as f64
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct HlogSnapshot {
    pub appends: u64,
    pub alloc_retries: u64,
    pub page_seals: u64,
    pub flushes_issued: u64,
    pub flushes_completed: u64,
    pub flushes_failed: u64,
    pub flush_retries: u64,
    pub pages_quarantined: u64,
    pub corrupt_reads: u64,
    pub frames_evicted: u64,
    pub reads_issued: u64,
    pub reads_completed: u64,
    /// Bytes superseded/tombstoned/abandoned on the log (monotone).
    pub dead_bytes: u64,
    /// Bytes reclaimed by begin-address truncation (monotone).
    pub bytes_truncated: u64,
    /// Gauges: region boundaries at snapshot time.
    pub begin: u64,
    pub head: u64,
    pub safe_read_only: u64,
    pub read_only: u64,
    pub flushed_until: u64,
    pub tail: u64,
    /// Gauge: in-memory page budget currently allowed (≤ configured
    /// `buffer_pages`; shrunk/grown by the maintenance service).
    pub active_pages: u64,
}

impl HlogSnapshot {
    /// Estimated dead bytes still occupying log space. Truncation reclaims
    /// both live and dead bytes, so subtracting `bytes_truncated` makes this
    /// an under-estimate right after a compaction — exactly the conservative
    /// direction a compaction trigger wants.
    pub fn dead_space(&self) -> u64 {
        self.dead_bytes.saturating_sub(self.bytes_truncated)
    }

    /// Addressable log span (begin → tail).
    pub fn log_size(&self) -> u64 {
        self.tail.saturating_sub(self.begin)
    }
}

#[derive(Clone, Debug, Default)]
pub struct ReadCacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub promotions: u64,
    pub inserts: u64,
}

impl ReadCacheSnapshot {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct OpLatencies {
    pub read: HistogramSnapshot,
    pub upsert: HistogramSnapshot,
    pub rmw: HistogramSnapshot,
    pub delete: HistogramSnapshot,
}

#[derive(Clone, Debug, Default)]
pub struct SessionsSnapshot {
    pub totals: SessionTotals,
    /// Gauge: sessions currently registered.
    pub live_sessions: u64,
    /// Gauge: disk reads in flight at snapshot time (issued − completed
    /// across all sessions, live and retired).
    pub io_inflight: u64,
    /// In-flight depth sampled at each ring submission (log2 buckets;
    /// values are counts, not nanoseconds). Not gated on `timing`.
    pub io_depth: HistogramSnapshot,
    /// Disk-read latency (SQE submission → CQE reap), nanoseconds. Not
    /// gated on `timing` — the clock read is noise next to the I/O itself.
    pub io_latency: HistogramSnapshot,
    /// Per-op latency histograms; `None` unless built with the timing
    /// feature and enabled in `MetricsConfig`.
    pub latency: Option<OpLatencies>,
}

impl SessionsSnapshot {
    /// Disk reads in flight at snapshot time (issued − completed).
    pub fn queue_depth(&self) -> u64 {
        self.totals.io_issued.saturating_sub(self.totals.io_completed)
    }
}

/// Write-ahead-log counters and group-commit distributions.
#[derive(Clone, Debug, Default)]
pub struct WalSnapshot {
    pub appends: u64,
    pub bytes: u64,
    pub commits: u64,
    pub commit_failures: u64,
    /// Records per acked group (counts, not nanoseconds).
    pub group_size: HistogramSnapshot,
    /// Append-to-durable latency per acked group, nanoseconds.
    pub commit_latency: HistogramSnapshot,
}

/// Store health (the degradation ladder), filled by `FasterKv::metrics()`
/// from the live health cell — the registry itself has no health state.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// 0 = healthy, 1 = degraded, 2 = read-only.
    pub state: u64,
    /// Token naming the reason for the current state (`none` when healthy;
    /// e.g. `flush_quarantine`, `device_full`, `wal_failed`, `corrupt_read`).
    pub reason: String,
}

impl Default for HealthSnapshot {
    fn default() -> Self {
        Self { state: 0, reason: "none".to_string() }
    }
}

/// Device byte/op totals, pulled from `DeviceStats` at snapshot time.
#[derive(Clone, Debug, Default)]
pub struct StorageSnapshot {
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub device_writes: u64,
    pub device_reads: u64,
}

/// The full typed snapshot returned by `FasterKv::metrics()`.
#[derive(Clone, Debug, Default)]
pub struct StoreMetrics {
    pub epoch: EpochSnapshot,
    pub index: IndexSnapshot,
    pub hlog: HlogSnapshot,
    pub rc_log: HlogSnapshot,
    pub read_cache: Option<ReadCacheSnapshot>,
    pub sessions: SessionsSnapshot,
    pub storage: StorageSnapshot,
    pub wal: WalSnapshot,
    pub health: HealthSnapshot,
}

impl StoreMetrics {
    /// Stable `section.key value` text export, one metric per line, sorted
    /// within each section in declaration order.
    pub fn to_text(&self) -> String {
        fn push_line(out: &mut String, k: &str, v: u64) {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        let mut out = String::with_capacity(2048);
        let t = &self.sessions.totals;
        push_line(&mut out, "sessions.live", self.sessions.live_sessions);
        push_line(&mut out, "sessions.reads", t.reads);
        push_line(&mut out, "sessions.rc_hits", t.rc_hits);
        push_line(&mut out, "sessions.mem_reads", t.mem_reads);
        push_line(&mut out, "sessions.reads_pending", t.reads_pending);
        push_line(&mut out, "sessions.upserts", t.upserts);
        push_line(&mut out, "sessions.rmws", t.rmws);
        push_line(&mut out, "sessions.deletes", t.deletes);
        push_line(&mut out, "sessions.batches", t.batches);
        push_line(&mut out, "sessions.writes", t.writes);
        push_line(&mut out, "sessions.in_place", t.in_place);
        push_line(&mut out, "sessions.rcu", t.rcu);
        push_line(&mut out, "sessions.appends", t.appends);
        push_line(&mut out, "sessions.deltas", t.deltas);
        push_line(&mut out, "sessions.fuzzy_pending", t.fuzzy_pending);
        push_line(&mut out, "sessions.io_issued", t.io_issued);
        push_line(&mut out, "sessions.io_completed", t.io_completed);
        push_line(&mut out, "sessions.io_retries", t.io_retries);
        push_line(&mut out, "sessions.io_failed", t.io_failed);
        push_line(&mut out, "sessions.queue_depth", self.sessions.queue_depth());
        push_line(&mut out, "sessions.io_inflight", self.sessions.io_inflight);
        for (name, h, unit) in [
            ("io_depth", &self.sessions.io_depth, ""),
            ("io_latency", &self.sessions.io_latency, "_ns"),
        ] {
            push_line(&mut out, &format!("sessions.{name}.count"), h.total);
            push_line(&mut out, &format!("sessions.{name}.p50{unit}"), h.p50());
            push_line(&mut out, &format!("sessions.{name}.p95{unit}"), h.p95());
            push_line(&mut out, &format!("sessions.{name}.p99{unit}"), h.p99());
            push_line(&mut out, &format!("sessions.{name}.max{unit}"), h.max);
            out.push_str(&format!("sessions.{name}.mean{unit} {:.1}\n", h.mean()));
        }
        push_line(&mut out, "epoch.refreshes", self.epoch.refreshes);
        push_line(&mut out, "epoch.bumps", self.epoch.bumps);
        push_line(&mut out, "epoch.drain_actions", self.epoch.drain_actions);
        push_line(&mut out, "epoch.current", self.epoch.current);
        push_line(&mut out, "epoch.safe", self.epoch.safe);
        push_line(&mut out, "epoch.lag", self.epoch.lag());
        push_line(&mut out, "index.probes", self.index.probes);
        push_line(&mut out, "index.probe_steps", self.index.probe_steps);
        push_line(&mut out, "index.overflow_allocs", self.index.overflow_allocs);
        push_line(&mut out, "index.tentative_restarts", self.index.tentative_restarts);
        push_line(&mut out, "index.resize_chunk_claims", self.index.resize_chunk_claims);
        push_line(&mut out, "index.resize_backoffs", self.index.resize_backoffs);
        push_line(&mut out, "index.k_bits", self.index.k_bits);
        push_line(&mut out, "index.buckets", self.index.buckets);
        push_line(&mut out, "index.resize_active", self.index.resize_active);
        for (prefix, h) in [("hlog", &self.hlog), ("rc_log", &self.rc_log)] {
            push_line(&mut out, &format!("{prefix}.appends"), h.appends);
            push_line(&mut out, &format!("{prefix}.alloc_retries"), h.alloc_retries);
            push_line(&mut out, &format!("{prefix}.page_seals"), h.page_seals);
            push_line(&mut out, &format!("{prefix}.flushes_issued"), h.flushes_issued);
            push_line(&mut out, &format!("{prefix}.flushes_completed"), h.flushes_completed);
            push_line(&mut out, &format!("{prefix}.flushes_failed"), h.flushes_failed);
            push_line(&mut out, &format!("{prefix}.flush_retries"), h.flush_retries);
            push_line(&mut out, &format!("{prefix}.pages_quarantined"), h.pages_quarantined);
            push_line(&mut out, &format!("{prefix}.corrupt_reads"), h.corrupt_reads);
            push_line(&mut out, &format!("{prefix}.frames_evicted"), h.frames_evicted);
            push_line(&mut out, &format!("{prefix}.reads_issued"), h.reads_issued);
            push_line(&mut out, &format!("{prefix}.reads_completed"), h.reads_completed);
            push_line(&mut out, &format!("{prefix}.dead_bytes"), h.dead_bytes);
            push_line(&mut out, &format!("{prefix}.bytes_truncated"), h.bytes_truncated);
            push_line(&mut out, &format!("{prefix}.dead_space"), h.dead_space());
            push_line(&mut out, &format!("{prefix}.begin"), h.begin);
            push_line(&mut out, &format!("{prefix}.head"), h.head);
            push_line(&mut out, &format!("{prefix}.read_only"), h.read_only);
            push_line(&mut out, &format!("{prefix}.tail"), h.tail);
            push_line(&mut out, &format!("{prefix}.active_pages"), h.active_pages);
        }
        if let Some(rc) = &self.read_cache {
            push_line(&mut out, "read_cache.hits", rc.hits);
            push_line(&mut out, "read_cache.misses", rc.misses);
            push_line(&mut out, "read_cache.promotions", rc.promotions);
            push_line(&mut out, "read_cache.inserts", rc.inserts);
            out.push_str(&format!("read_cache.hit_rate {:.4}\n", rc.hit_rate()));
        }
        push_line(&mut out, "health.state", self.health.state);
        out.push_str(&format!("health.reason {}\n", self.health.reason));
        push_line(&mut out, "storage.bytes_written", self.storage.bytes_written);
        push_line(&mut out, "storage.bytes_read", self.storage.bytes_read);
        push_line(&mut out, "storage.device_writes", self.storage.device_writes);
        push_line(&mut out, "storage.device_reads", self.storage.device_reads);
        push_line(&mut out, "wal.appends", self.wal.appends);
        push_line(&mut out, "wal.bytes", self.wal.bytes);
        push_line(&mut out, "wal.commits", self.wal.commits);
        push_line(&mut out, "wal.commit_failures", self.wal.commit_failures);
        for (name, h, unit) in [
            ("group_size", &self.wal.group_size, ""),
            ("commit_latency", &self.wal.commit_latency, "_ns"),
        ] {
            push_line(&mut out, &format!("wal.{name}.count"), h.total);
            push_line(&mut out, &format!("wal.{name}.p50{unit}"), h.p50());
            push_line(&mut out, &format!("wal.{name}.p95{unit}"), h.p95());
            push_line(&mut out, &format!("wal.{name}.p99{unit}"), h.p99());
            push_line(&mut out, &format!("wal.{name}.max{unit}"), h.max);
            out.push_str(&format!("wal.{name}.mean{unit} {:.1}\n", h.mean()));
        }
        if let Some(lat) = &self.sessions.latency {
            for (name, h) in [
                ("read", &lat.read),
                ("upsert", &lat.upsert),
                ("rmw", &lat.rmw),
                ("delete", &lat.delete),
            ] {
                push_line(&mut out, &format!("latency.{name}.count"), h.total);
                push_line(&mut out, &format!("latency.{name}.p50_ns"), h.p50());
                push_line(&mut out, &format!("latency.{name}.p95_ns"), h.p95());
                push_line(&mut out, &format!("latency.{name}.p99_ns"), h.p99());
                push_line(&mut out, &format!("latency.{name}.max_ns"), h.max);
                out.push_str(&format!("latency.{name}.mean_ns {:.1}\n", h.mean()));
            }
        }
        out
    }

    /// JSON export (hand-rolled; the workspace has no serde). Object keys
    /// mirror `to_text` sections.
    pub fn to_json(&self) -> String {
        fn obj(pairs: &[(&str, String)]) -> String {
            let body: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect();
            format!("{{{}}}", body.join(","))
        }
        fn hist_unit(h: &HistogramSnapshot, unit: &str) -> String {
            obj(&[
                ("count", h.total.to_string()),
                (&format!("p50{unit}"), h.p50().to_string()),
                (&format!("p95{unit}"), h.p95().to_string()),
                (&format!("p99{unit}"), h.p99().to_string()),
                (&format!("max{unit}"), h.max.to_string()),
                (&format!("mean{unit}"), format!("{:.1}", h.mean())),
            ])
        }
        fn hist(h: &HistogramSnapshot) -> String {
            hist_unit(h, "_ns")
        }
        fn hlog(h: &HlogSnapshot) -> String {
            obj(&[
                ("appends", h.appends.to_string()),
                ("alloc_retries", h.alloc_retries.to_string()),
                ("page_seals", h.page_seals.to_string()),
                ("flushes_issued", h.flushes_issued.to_string()),
                ("flushes_completed", h.flushes_completed.to_string()),
                ("flushes_failed", h.flushes_failed.to_string()),
                ("flush_retries", h.flush_retries.to_string()),
                ("pages_quarantined", h.pages_quarantined.to_string()),
                ("corrupt_reads", h.corrupt_reads.to_string()),
                ("frames_evicted", h.frames_evicted.to_string()),
                ("reads_issued", h.reads_issued.to_string()),
                ("reads_completed", h.reads_completed.to_string()),
                ("dead_bytes", h.dead_bytes.to_string()),
                ("bytes_truncated", h.bytes_truncated.to_string()),
                ("dead_space", h.dead_space().to_string()),
                ("begin", h.begin.to_string()),
                ("head", h.head.to_string()),
                ("read_only", h.read_only.to_string()),
                ("tail", h.tail.to_string()),
                ("active_pages", h.active_pages.to_string()),
            ])
        }
        let t = &self.sessions.totals;
        let mut sections: Vec<(&str, String)> = vec![
            (
                "sessions",
                obj(&[
                    ("live", self.sessions.live_sessions.to_string()),
                    ("reads", t.reads.to_string()),
                    ("rc_hits", t.rc_hits.to_string()),
                    ("mem_reads", t.mem_reads.to_string()),
                    ("reads_pending", t.reads_pending.to_string()),
                    ("upserts", t.upserts.to_string()),
                    ("rmws", t.rmws.to_string()),
                    ("deletes", t.deletes.to_string()),
                    ("batches", t.batches.to_string()),
                    ("writes", t.writes.to_string()),
                    ("in_place", t.in_place.to_string()),
                    ("rcu", t.rcu.to_string()),
                    ("appends", t.appends.to_string()),
                    ("deltas", t.deltas.to_string()),
                    ("fuzzy_pending", t.fuzzy_pending.to_string()),
                    ("io_issued", t.io_issued.to_string()),
                    ("io_completed", t.io_completed.to_string()),
                    ("io_retries", t.io_retries.to_string()),
                    ("io_failed", t.io_failed.to_string()),
                    ("queue_depth", self.sessions.queue_depth().to_string()),
                    ("io_inflight", self.sessions.io_inflight.to_string()),
                    ("io_depth", hist_unit(&self.sessions.io_depth, "")),
                    ("io_latency", hist_unit(&self.sessions.io_latency, "_ns")),
                ]),
            ),
            (
                "epoch",
                obj(&[
                    ("refreshes", self.epoch.refreshes.to_string()),
                    ("bumps", self.epoch.bumps.to_string()),
                    ("drain_actions", self.epoch.drain_actions.to_string()),
                    ("current", self.epoch.current.to_string()),
                    ("safe", self.epoch.safe.to_string()),
                    ("lag", self.epoch.lag().to_string()),
                ]),
            ),
            (
                "index",
                obj(&[
                    ("probes", self.index.probes.to_string()),
                    ("probe_steps", self.index.probe_steps.to_string()),
                    ("avg_probe_len", format!("{:.3}", self.index.avg_probe_len())),
                    ("overflow_allocs", self.index.overflow_allocs.to_string()),
                    ("tentative_restarts", self.index.tentative_restarts.to_string()),
                    ("resize_chunk_claims", self.index.resize_chunk_claims.to_string()),
                    ("resize_backoffs", self.index.resize_backoffs.to_string()),
                    ("k_bits", self.index.k_bits.to_string()),
                    ("buckets", self.index.buckets.to_string()),
                    ("resize_active", self.index.resize_active.to_string()),
                ]),
            ),
            ("hlog", hlog(&self.hlog)),
            ("rc_log", hlog(&self.rc_log)),
            (
                "health",
                obj(&[
                    ("state", self.health.state.to_string()),
                    ("reason", format!("\"{}\"", self.health.reason)),
                ]),
            ),
            (
                "storage",
                obj(&[
                    ("bytes_written", self.storage.bytes_written.to_string()),
                    ("bytes_read", self.storage.bytes_read.to_string()),
                    ("device_writes", self.storage.device_writes.to_string()),
                    ("device_reads", self.storage.device_reads.to_string()),
                ]),
            ),
            (
                "wal",
                obj(&[
                    ("appends", self.wal.appends.to_string()),
                    ("bytes", self.wal.bytes.to_string()),
                    ("commits", self.wal.commits.to_string()),
                    ("commit_failures", self.wal.commit_failures.to_string()),
                    ("group_size", hist_unit(&self.wal.group_size, "")),
                    ("commit_latency", hist_unit(&self.wal.commit_latency, "_ns")),
                ]),
            ),
        ];
        if let Some(rc) = &self.read_cache {
            sections.push((
                "read_cache",
                obj(&[
                    ("hits", rc.hits.to_string()),
                    ("misses", rc.misses.to_string()),
                    ("promotions", rc.promotions.to_string()),
                    ("inserts", rc.inserts.to_string()),
                    ("hit_rate", format!("{:.4}", rc.hit_rate())),
                ]),
            ));
        }
        if let Some(lat) = &self.sessions.latency {
            sections.push((
                "latency",
                obj(&[
                    ("read", hist(&lat.read)),
                    ("upsert", hist(&lat.upsert)),
                    ("rmw", hist(&lat.rmw)),
                    ("delete", hist(&lat.delete)),
                ]),
            ));
        }
        obj(&sections
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_exports_are_stable() {
        let reg = MetricsRegistry::new(MetricsConfig::default());
        reg.index.probes.add(3);
        reg.index.probe_steps.add(7);
        let mut snap = reg.snapshot_counters(true);
        snap.index.k_bits = 13;
        let text = snap.to_text();
        #[cfg(not(feature = "off"))]
        {
            assert!(text.contains("index.probes 3\n"), "{text}");
            assert!(text.contains("index.probe_steps 7\n"));
        }
        assert!(text.contains("index.k_bits 13\n"));
        assert!(text.contains("health.state 0\n"));
        assert!(text.contains("health.reason none\n"));
        let json = snap.to_json();
        assert!(json.contains("\"health\":{\"state\":0,\"reason\":\"none\"}"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"k_bits\":13"));
        assert!(json.contains("\"read_cache\""));

        let no_rc = reg.snapshot_counters(false);
        assert!(!no_rc.to_json().contains("read_cache"));
    }
}
