//! Operation-mix generation: the `R:BU` workloads of §7.1 plus 100 % RMW.

use crate::distribution::{Distribution, KeyChooser, ZipfianGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What an operation does (keys are chosen separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Read,
    /// Blind update (YCSB "update"): replace the value.
    Upsert,
    /// Read-modify-write: increment by an input (the paper's per-key "sum").
    Rmw,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    pub kind: OpKind,
    pub key: u64,
    /// RMW input: "increment a value by a number from a user-provided input
    /// array with 8 entries" (§7.1).
    pub input: u64,
}

/// Operation mix. `read + upsert + rmw` must equal 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    pub read: f64,
    pub upsert: f64,
    pub rmw: f64,
}

impl Mix {
    /// The `R:BU` notation of the paper: e.g. `Mix::r_bu(50, 50)`.
    pub fn r_bu(read_pct: u32, update_pct: u32) -> Self {
        assert_eq!(read_pct + update_pct, 100);
        Self { read: read_pct as f64 / 100.0, upsert: update_pct as f64 / 100.0, rmw: 0.0 }
    }

    /// The paper's 0:100 RMW workload.
    pub fn rmw_only() -> Self {
        Self { read: 0.0, upsert: 0.0, rmw: 1.0 }
    }

    fn validate(&self) {
        let sum = self.read + self.upsert + self.rmw;
        assert!((sum - 1.0).abs() < 1e-9, "mix must sum to 1, got {sum}");
    }
}

/// Full workload description.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of distinct keys (paper: 250 M; benches scale down).
    pub keys: u64,
    pub mix: Mix,
    pub distribution: Distribution,
    pub seed: u64,
}

impl WorkloadConfig {
    pub fn new(keys: u64, mix: Mix, distribution: Distribution) -> Self {
        mix.validate();
        Self { keys, mix, distribution, seed: 0x5EED }
    }
}

/// Per-thread operation stream. Deterministic given `(config.seed, thread)`.
pub struct WorkloadGenerator {
    mix: Mix,
    chooser: KeyChooser,
    rng: StdRng,
    /// The 8-entry input array of §7.1.
    inputs: [u64; 8],
    cursor: usize,
}

impl WorkloadGenerator {
    pub fn new(config: &WorkloadConfig, thread: u64) -> Self {
        config.mix.validate();
        Self {
            mix: config.mix,
            chooser: KeyChooser::new(config.keys, config.distribution),
            rng: StdRng::seed_from_u64(config.seed ^ (thread.wrapping_mul(0x9E37_79B9))),
            inputs: [1, 2, 3, 4, 5, 6, 7, 8],
            cursor: 0,
        }
    }

    /// Like [`WorkloadGenerator::new`] but reusing a precomputed Zipfian
    /// (zeta(n) costs O(n); share it across threads).
    pub fn with_shared_zipf(config: &WorkloadConfig, thread: u64, zipf: ZipfianGenerator) -> Self {
        Self {
            mix: config.mix,
            chooser: KeyChooser::with_zipf(config.keys, zipf),
            rng: StdRng::seed_from_u64(config.seed ^ (thread.wrapping_mul(0x9E37_79B9))),
            inputs: [1, 2, 3, 4, 5, 6, 7, 8],
            cursor: 0,
        }
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.chooser.next_key(&mut self.rng);
        let p: f64 = self.rng.gen();
        let kind = if p < self.mix.read {
            OpKind::Read
        } else if p < self.mix.read + self.mix.upsert {
            OpKind::Upsert
        } else {
            OpKind::Rmw
        };
        self.cursor = (self.cursor + 1) % self.inputs.len();
        Op { kind, key, input: self.inputs[self.cursor] }
    }

    /// Fills `out` with the next `n` operations (clearing it first), for
    /// batch-issue harnesses: identical op stream to `n` calls of
    /// [`WorkloadGenerator::next_op`], just delivered as a slice so the
    /// store's batched entry points can pipeline them.
    pub fn next_batch(&mut self, n: usize, out: &mut Vec<Op>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_op());
        }
    }

    /// Keys for the load phase (0..keys, sequential — the store hashes).
    pub fn load_keys(config: &WorkloadConfig) -> impl Iterator<Item = u64> {
        0..config.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_ratios_respected() {
        let cfg = WorkloadConfig::new(1000, Mix::r_bu(50, 50), Distribution::Uniform);
        let mut g = WorkloadGenerator::new(&cfg, 0);
        let (mut r, mut u, mut m) = (0, 0, 0);
        for _ in 0..100_000 {
            match g.next_op().kind {
                OpKind::Read => r += 1,
                OpKind::Upsert => u += 1,
                OpKind::Rmw => m += 1,
            }
        }
        assert_eq!(m, 0);
        assert!((45_000..55_000).contains(&r), "reads {r}");
        assert!((45_000..55_000).contains(&u), "upserts {u}");
    }

    #[test]
    fn rmw_only_mix() {
        let cfg = WorkloadConfig::new(1000, Mix::rmw_only(), Distribution::Uniform);
        let mut g = WorkloadGenerator::new(&cfg, 0);
        for _ in 0..1000 {
            let op = g.next_op();
            assert_eq!(op.kind, OpKind::Rmw);
            assert!((1..=8).contains(&op.input), "input from the 8-entry array");
        }
    }

    #[test]
    fn next_batch_matches_next_op() {
        let cfg = WorkloadConfig::new(1 << 16, Mix::r_bu(50, 50), Distribution::Uniform);
        let scalar: Vec<Op> = {
            let mut g = WorkloadGenerator::new(&cfg, 3);
            (0..96).map(|_| g.next_op()).collect()
        };
        let mut g = WorkloadGenerator::new(&cfg, 3);
        let mut batched = Vec::new();
        let mut buf = Vec::new();
        for _ in 0..3 {
            g.next_batch(32, &mut buf);
            assert_eq!(buf.len(), 32);
            batched.extend_from_slice(&buf);
        }
        assert_eq!(scalar, batched, "batched stream identical to scalar");
    }

    #[test]
    fn per_thread_streams_deterministic_and_distinct() {
        let cfg = WorkloadConfig::new(1 << 20, Mix::r_bu(100, 0), Distribution::Uniform);
        let s1: Vec<u64> = {
            let mut g = WorkloadGenerator::new(&cfg, 1);
            (0..100).map(|_| g.next_op().key).collect()
        };
        let s1b: Vec<u64> = {
            let mut g = WorkloadGenerator::new(&cfg, 1);
            (0..100).map(|_| g.next_op().key).collect()
        };
        let s2: Vec<u64> = {
            let mut g = WorkloadGenerator::new(&cfg, 2);
            (0..100).map(|_| g.next_op().key).collect()
        };
        assert_eq!(s1, s1b, "deterministic per (seed, thread)");
        assert_ne!(s1, s2, "different threads see different streams");
    }

    #[test]
    #[should_panic(expected = "mix must sum to 1")]
    fn bad_mix_panics() {
        WorkloadConfig::new(10, Mix { read: 0.5, upsert: 0.2, rmw: 0.1 }, Distribution::Uniform);
    }

    #[test]
    fn shared_zipf_generator() {
        let cfg = WorkloadConfig::new(10_000, Mix::rmw_only(), Distribution::zipf_default());
        let z = ZipfianGenerator::new(10_000, 0.99);
        let mut g = WorkloadGenerator::with_shared_zipf(&cfg, 0, z);
        for _ in 0..1000 {
            assert!(g.next_op().key < 10_000);
        }
    }
}
