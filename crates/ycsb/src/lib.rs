//! # faster-ycsb
//!
//! Workload generation for the paper's evaluation (§7.1): an extended
//! YCSB-A with
//!
//! * 8-byte keys over a configurable key space (the paper uses 250 M keys),
//! * operation mixes described as `R:BU` (reads : blind updates) plus the
//!   paper's added 100 % RMW variant,
//! * three key distributions: **uniform**, **Zipfian** (θ = 0.99, scrambled),
//!   and the paper's **hot-set** distribution — "a hot and cold set of keys,
//!   with items moving from cold to hot, staying hot for a while, and then
//!   becoming cold".
//!
//! The Zipfian generator is the standard Gray et al. rejection-free
//! construction used by the original YCSB, with FNV scrambling so that
//! popular keys are spread across the key space (and across hash buckets).

mod distribution;
mod workload;

pub use distribution::{Distribution, HotSetConfig, KeyChooser, ZipfianGenerator};
pub use workload::{Mix, Op, OpKind, WorkloadConfig, WorkloadGenerator};
