//! Key-choice distributions: uniform, scrambled Zipfian, shifting hot set.

use rand::Rng;

/// Which distribution to draw keys from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with parameter θ (the paper uses θ = 0.99), scrambled.
    Zipfian { theta: f64 },
    /// Shifting hot set (§7.1, §7.5): a contiguous window of `hot_fraction`
    /// of the key space receives `hot_prob` of accesses; the window rotates
    /// by one hot-set length every `shift_every` draws.
    HotSet(HotSetConfig),
}

impl Distribution {
    /// The paper's default Zipfian.
    pub fn zipf_default() -> Self {
        Distribution::Zipfian { theta: 0.99 }
    }

    /// The paper's §7.5 hot-set: 1/5 of keys hot, 90 % hot traffic.
    pub fn hot_set_default(keys: u64) -> Self {
        Distribution::HotSet(HotSetConfig {
            hot_fraction: 0.2,
            hot_prob: 0.9,
            shift_every: (keys / 2).max(1),
        })
    }
}

/// Parameters of the hot-set distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSetConfig {
    /// Fraction of the key space that is hot at any instant (paper: 1/5).
    pub hot_fraction: f64,
    /// Probability an access goes to the hot set (paper: 0.9).
    pub hot_prob: f64,
    /// Draws between hot-window shifts ("the hot set may drift over time").
    pub shift_every: u64,
}

/// Gray et al. Zipfian generator over `[0, n)`, as used by YCSB.
///
/// `zeta(n)` is computed once at construction (O(n)); draws are O(1).
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianGenerator {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self { n, theta, alpha, zetan, eta, zeta2theta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn next_rank<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// `zeta(2, θ)` — exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// FNV-1a scramble so hot Zipf ranks are spread over the key space.
#[inline]
fn fnv_scramble(v: u64, n: u64) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h % n
}

/// Stateful key chooser for one generator thread.
pub struct KeyChooser {
    n: u64,
    dist: Distribution,
    zipf: Option<ZipfianGenerator>,
    // hot-set state
    draws: u64,
    hot_start: u64,
    hot_len: u64,
}

impl KeyChooser {
    pub fn new(n: u64, dist: Distribution) -> Self {
        assert!(n > 0);
        let zipf = match dist {
            Distribution::Zipfian { theta } => Some(ZipfianGenerator::new(n, theta)),
            _ => None,
        };
        let hot_len = match dist {
            Distribution::HotSet(c) => ((n as f64 * c.hot_fraction) as u64).max(1),
            _ => 0,
        };
        Self { n, dist, zipf, draws: 0, hot_start: 0, hot_len }
    }

    /// Creates a chooser sharing `zipf`'s precomputed constants (zeta(n) is
    /// expensive for large n; threads should share it).
    pub fn with_zipf(n: u64, zipf: ZipfianGenerator) -> Self {
        assert_eq!(zipf.n, n);
        Self {
            n,
            dist: Distribution::Zipfian { theta: zipf.theta },
            zipf: Some(zipf),
            draws: 0,
            hot_start: 0,
            hot_len: 0,
        }
    }

    /// Number of keys in the space.
    pub fn key_space(&self) -> u64 {
        self.n
    }

    /// Draws the next key.
    pub fn next_key<R: Rng>(&mut self, rng: &mut R) -> u64 {
        match self.dist {
            Distribution::Uniform => rng.gen_range(0..self.n),
            Distribution::Zipfian { .. } => {
                let rank = self.zipf.as_ref().expect("zipf configured").next_rank(rng);
                fnv_scramble(rank, self.n)
            }
            Distribution::HotSet(c) => {
                self.draws += 1;
                if self.draws.is_multiple_of(c.shift_every) {
                    // Shift the hot window ("items moving from cold to hot").
                    self.hot_start = (self.hot_start + self.hot_len) % self.n;
                }
                if rng.gen::<f64>() < c.hot_prob {
                    (self.hot_start + rng.gen_range(0..self.hot_len)) % self.n
                } else {
                    // Cold access: uniform over the whole space.
                    rng.gen_range(0..self.n)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_space() {
        let mut c = KeyChooser::new(100, Distribution::Uniform);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let k = c.next_key(&mut rng);
            assert!(k < 100);
            seen.insert(k);
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let n = 10_000u64;
        let mut c = KeyChooser::new(n, Distribution::zipf_default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        let draws = 200_000;
        for _ in 0..draws {
            let k = c.next_key(&mut rng);
            assert!(k < n);
            *counts.entry(k).or_insert(0u64) += 1;
        }
        // Top key should dominate: for theta=0.99, rank 0 has probability
        // 1/zeta(n) which for n=10k is about 10%.
        let max = *counts.values().max().unwrap();
        assert!(max as f64 / draws as f64 > 0.05, "zipf not skewed: max share {max}");
        // And far fewer than n distinct keys dominate half the mass.
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        let mut i = 0;
        while acc < draws / 2 {
            acc += v[i];
            i += 1;
        }
        assert!(i < (n as usize) / 20, "half the mass needs < 5% of keys, used {i}");
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let g = ZipfianGenerator::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rank_counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            rank_counts[g.next_rank(&mut rng) as usize] += 1;
        }
        assert!(rank_counts[0] > rank_counts[1]);
        assert!(rank_counts[1] > rank_counts[50]);
    }

    #[test]
    fn zipf_matches_theory_for_top_rank() {
        let n = 1000u64;
        let theta = 0.99;
        let g = ZipfianGenerator::new(n, theta);
        let mut rng = StdRng::seed_from_u64(11);
        let draws = 500_000;
        let mut zero = 0u64;
        for _ in 0..draws {
            if g.next_rank(&mut rng) == 0 {
                zero += 1;
            }
        }
        let expected = 1.0 / ZipfianGenerator::zeta(n, theta);
        let observed = zero as f64 / draws as f64;
        assert!(
            (observed - expected).abs() < 0.01,
            "rank-0 share {observed:.4} vs theory {expected:.4}"
        );
    }

    #[test]
    fn hot_set_concentrates_and_shifts() {
        let n = 10_000u64;
        let cfg = HotSetConfig { hot_fraction: 0.2, hot_prob: 0.9, shift_every: 50_000 };
        let mut c = KeyChooser::new(n, Distribution::HotSet(cfg));
        let mut rng = StdRng::seed_from_u64(5);
        // First window: hot keys in [0, 2000).
        let mut hot_hits = 0;
        for _ in 0..20_000 {
            if c.next_key(&mut rng) < 2000 {
                hot_hits += 1;
            }
        }
        // 90% hot + 20% of the cold mass also lands there: ~92%.
        assert!(hot_hits > 17_000, "hot window hits {hot_hits}");
        // Push past the shift boundary; window moves to [2000, 4000).
        for _ in 0..40_000 {
            c.next_key(&mut rng);
        }
        let mut new_hot = 0;
        for _ in 0..20_000 {
            let k = c.next_key(&mut rng);
            if (2000..4000).contains(&k) {
                new_hot += 1;
            }
        }
        assert!(new_hot > 15_000, "after shift, hits in new window: {new_hot}");
    }

    #[test]
    fn scramble_is_a_stable_spread() {
        let a = fnv_scramble(0, 1 << 20);
        let b = fnv_scramble(1, 1 << 20);
        assert_ne!(a, b);
        assert_eq!(fnv_scramble(0, 1 << 20), a);
    }
}
