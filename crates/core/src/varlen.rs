//! Variable-length values (§2.1: "Keys and values may be fixed or
//! variable-sized").
//!
//! FASTER's log records are stored inline; this module provides
//! [`VarValue`], a length-prefixed byte value with a fixed *capacity* `CAP`
//! (its wire size), so variable-length application payloads ride on the
//! fixed-stride record machinery unchanged. This is the same trade the C#
//! implementation's `SpanByte`-with-max-length configuration makes; fully
//! elastic record sizes (per-record stride discovered from a length header)
//! are a possible extension and would only touch the allocation-size and
//! scan-stride call sites, since all traversal already goes through
//! `RecordRef`.
//!
//! [`VarKv`] is a ready-made [`Functions`] implementation storing `VarValue`
//! blobs with blind-replace RMW semantics.

use crate::functions::{Functions, ValueCell};
use faster_util::Pod;

/// A variable-length byte string with fixed capacity `CAP`.
#[derive(Clone, Copy)]
pub struct VarValue<const CAP: usize> {
    len: u32,
    data: [u8; CAP],
}

// Safety: len + fixed byte array; any bit pattern is valid (len is clamped
// on every read access).
unsafe impl<const CAP: usize> Pod for VarValue<CAP> {}

impl<const CAP: usize> VarValue<CAP> {
    /// Maximum payload length.
    pub const CAPACITY: usize = CAP;

    /// Creates a value from `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > CAP`.
    pub fn new(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= CAP, "payload {} exceeds capacity {CAP}", bytes.len());
        let mut data = [0u8; CAP];
        data[..bytes.len()].copy_from_slice(bytes);
        Self { len: bytes.len() as u32, data }
    }

    /// Empty value.
    pub fn empty() -> Self {
        Self { len: 0, data: [0u8; CAP] }
    }

    /// Current payload length (clamped to capacity: values read back from
    /// raw log bytes are validated here rather than trusted).
    #[inline]
    pub fn len(&self) -> usize {
        (self.len as usize).min(CAP)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..self.len()]
    }

    /// Copies the payload out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
}

impl<const CAP: usize> std::fmt::Debug for VarValue<CAP> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VarValue<{CAP}>({} bytes)", self.len())
    }
}

impl<const CAP: usize> PartialEq for VarValue<CAP> {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}
impl<const CAP: usize> Eq for VarValue<CAP> {}

/// Blind-replace store functions over [`VarValue`] blobs.
#[derive(Debug, Default, Clone)]
pub struct VarKv<const CAP: usize>;

impl<K: Pod, const CAP: usize> Functions<K, VarValue<CAP>> for VarKv<CAP> {
    type Input = VarValue<CAP>;
    type Output = VarValue<CAP>;

    fn single_reader(&self, _k: &K, _i: &Self::Input, v: &VarValue<CAP>) -> VarValue<CAP> {
        *v
    }

    fn initial_updater(&self, _k: &K, input: &Self::Input, v: &mut VarValue<CAP>) {
        *v = *input;
    }

    fn in_place_updater(&self, _k: &K, input: &Self::Input, v: &ValueCell<VarValue<CAP>>) {
        // Partial update of a larger value (§6: "updating parts of a larger
        // value is efficient"): only `input.len()` bytes + the length word
        // change; the rest of the record is untouched.
        v.store(*input);
    }

    fn copy_updater(
        &self,
        _k: &K,
        input: &Self::Input,
        _old: &VarValue<CAP>,
        new: &mut VarValue<CAP>,
    ) {
        *new = *input;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FasterKv, FasterKvConfig, OpError, Outcome};
    use faster_storage::MemDevice;

    #[test]
    fn var_value_round_trip() {
        let v: VarValue<32> = VarValue::new(b"hello");
        assert_eq!(v.as_bytes(), b"hello");
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert!(VarValue::<8>::empty().is_empty());
        assert_eq!(v, VarValue::new(b"hello"));
        assert_ne!(v, VarValue::new(b"hellx"));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversize_panics() {
        let _: VarValue<4> = VarValue::new(b"too long");
    }

    #[test]
    fn corrupt_len_is_clamped() {
        let mut v: VarValue<8> = VarValue::new(b"abc");
        v.len = 1000; // simulate garbage from a torn read
        assert_eq!(v.len(), 8);
        assert_eq!(v.as_bytes().len(), 8);
    }

    #[test]
    fn store_with_variable_values() {
        let store: FasterKv<u64, VarValue<64>, VarKv<64>> =
            FasterKv::new(FasterKvConfig::small(), VarKv, MemDevice::new(1));
        let s = store.start_session();
        s.upsert(&1, &VarValue::new(b"short")).unwrap();
        s.upsert(&2, &VarValue::new(&[7u8; 64])).unwrap();
        s.upsert(&1, &VarValue::new(b"a considerably longer replacement")).unwrap();
        match s.read(&1, &VarValue::empty()) {
            Ok(Outcome::Value(v)) => {
                assert_eq!(v.as_bytes(), b"a considerably longer replacement")
            }
            other => panic!("{other:?}"),
        }
        match s.read(&2, &VarValue::empty()) {
            Ok(Outcome::Value(v)) => assert_eq!(v.as_bytes(), &[7u8; 64][..]),
            other => panic!("{other:?}"),
        }
        s.delete(&1).unwrap();
        assert!(matches!(s.read(&1, &VarValue::empty()), Err(OpError::NotFound)));
    }
}
