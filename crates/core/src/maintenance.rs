//! Store-side actuators for the background maintenance service
//! (DESIGN.md §11).
//!
//! `faster-maintenance` owns the pure [`Policy`] engine and the service
//! thread; this module supplies the [`Actuators`] implementation that maps
//! its decisions onto the store's existing maintenance APIs:
//!
//! | [`Action`]            | store call                                       |
//! |-----------------------|--------------------------------------------------|
//! | `GrowIndex`           | [`FasterKv::grow_index`] (sessionless)           |
//! | `ShrinkIndex`         | [`FasterKv::shrink_index`] (sessionless)         |
//! | `Compact { until }`   | [`FasterKv::compact_until_clamped`] under a transient session: rolls up to `until`, truncates no higher than the checkpoint manager's safe truncation bound |
//! | `ResizeReadCache`     | `set_active_pages` on the cache's HybridLog      |
//! | `Checkpoint`          | [`CheckpointManager::checkpoint_store`]          |
//!
//! ## Epoch interaction
//!
//! The service thread must hold **no idle session** across a tick:
//! `checkpoint_store`'s durability wait is epoch-gated, and an idle guard on
//! this thread would stall the very trigger it waits for. Every actuator
//! therefore acquires whatever session it needs *inside* the call and drops
//! it before returning — `compact` uses a transient session (released before
//! a `Checkpoint` action in the same tick runs), the resizes and the
//! checkpoint run sessionless and let the store APIs take their own guards.

use crate::{CheckpointManager, FasterKv, Functions};
use faster_maintenance::{Actuators, MaintenanceService};
use faster_metrics::StoreMetrics;
use faster_util::{Address, Pod};
use std::sync::Arc;

/// [`Actuators`] over a store (and optionally its checkpoint manager).
pub struct KvActuators<K: Pod + Eq, V: Pod, F: Functions<K, V>> {
    store: FasterKv<K, V, F>,
    mgr: Option<Arc<CheckpointManager>>,
}

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> KvActuators<K, V, F> {
    pub fn new(store: FasterKv<K, V, F>, mgr: Option<Arc<CheckpointManager>>) -> Self {
        Self { store, mgr }
    }

    pub fn store(&self) -> &FasterKv<K, V, F> {
        &self.store
    }
}

impl<K, V, F> Actuators for KvActuators<K, V, F>
where
    K: Pod + Eq + Send + Sync,
    V: Pod + Send + Sync,
    F: Functions<K, V> + Send + Sync,
{
    fn snapshot(&self) -> StoreMetrics {
        self.store.metrics()
    }

    fn grow_index(&self) -> bool {
        self.store.grow_index(None)
    }

    fn shrink_index(&self) -> bool {
        self.store.shrink_index(None)
    }

    fn compact(&self, until: u64) -> u64 {
        // A read-only store must not compact: compaction rewrites live
        // records to the tail and truncates the prefix, but tail pages can
        // no longer be made durable — truncation would destroy the only
        // intact copy (DESIGN.md §12).
        if self.store.inner.health.is_read_only() {
            return 0;
        }
        let until = Address::new(until);
        if until <= self.store.log().begin_address() {
            return 0;
        }
        // Rolling live records to the tail is always safe; truncation is
        // what can destroy a retained checkpoint generation's fallback
        // replayability, so only it takes the PR 4 GC clamp (never above
        // the oldest retained generation's begin).
        let truncate_to = match self.mgr.as_ref().and_then(|m| m.safe_truncation_bound()) {
            Some(bound) => until.min(bound),
            None => until,
        };
        let session = self.store.start_session();
        self.store.compact_until_clamped(until, truncate_to, &session)
    }

    fn resize_read_cache(&self, pages: u64) -> u64 {
        match self.store.read_cache_log() {
            Some(rc) => rc.set_active_pages(pages),
            None => 0,
        }
    }

    fn checkpoint(&self) -> bool {
        // No checkpoint on a read-only store: its log flushes cannot be
        // made durable, so `checkpoint_store` would only churn and fail
        // (and must not overwrite manifest state racing with an operator's
        // recovery). The last committed generation stays authoritative.
        if self.store.inner.health.is_read_only() {
            return false;
        }
        match &self.mgr {
            Some(mgr) => mgr.checkpoint_store(&self.store).is_ok(),
            None => false,
        }
    }
}

impl<K, V, F> FasterKv<K, V, F>
where
    K: Pod + Eq + Send + Sync + 'static,
    V: Pod + Send + Sync + 'static,
    F: Functions<K, V> + Send + Sync + 'static,
{
    /// The actuator set the maintenance service drives on this store.
    /// Exposed so deterministic tests can apply policy decisions tick by
    /// tick (via `faster_maintenance::run_tick`) without a service thread.
    pub fn maintenance_actuators(
        &self,
        mgr: Option<Arc<CheckpointManager>>,
    ) -> Arc<KvActuators<K, V, F>> {
        Arc::new(KvActuators::new(self.clone(), mgr))
    }

    /// Spawns the background maintenance service over this store using the
    /// thresholds from [`FasterKvConfig::maintenance`](crate::FasterKvConfig)
    /// (defaults if unset). Pass the store's [`CheckpointManager`] to enable
    /// the checkpoint-cadence actuator; without one, `Checkpoint` decisions
    /// report failure and everything else still runs.
    ///
    /// The returned handle owns the thread: drop it (or call
    /// [`MaintenanceService::stop`]) to stop the service and release its
    /// store reference. Liveness caveat: the checkpoint actuator waits on
    /// epoch-gated durability, so foreground sessions must keep refreshing
    /// (or be dropped) while the service runs — the same contract as calling
    /// [`FasterKv::checkpoint`] from any other thread.
    pub fn start_maintenance(&self, mgr: Option<Arc<CheckpointManager>>) -> MaintenanceService {
        let cfg = self.config().maintenance.unwrap_or_default();
        self.start_maintenance_with(mgr, Policy::new(cfg))
    }

    /// Like [`start_maintenance`](Self::start_maintenance) with an explicit
    /// (possibly pre-warmed) policy engine.
    pub fn start_maintenance_with(
        &self,
        mgr: Option<Arc<CheckpointManager>>,
        policy: Policy,
    ) -> MaintenanceService {
        MaintenanceService::start(self.maintenance_actuators(mgr), policy)
    }
}

// Re-exported so callers need only `faster-core` to drive the service.
pub use faster_maintenance::{
    run_tick, Action, MaintenanceStats, Policy, PolicyConfig,
};
