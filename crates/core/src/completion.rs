//! Lock-free MPSC completion queue for pending-I/O continuations.
//!
//! I/O worker threads push completed read contexts; the owning session
//! drains them from [`Session::complete_pending`]. The previous
//! implementation was an `Arc<Mutex<VecDeque>>` — a lock on the completion
//! hot path, contradicting the latch-free design claim. This queue is a
//! Treiber stack with a grab-all consumer: producers CAS onto `head`, the
//! consumer swaps `head` to null and reverses the detached list so
//! completions come out in push (FIFO) order.
//!
//! Multi-producer (many I/O workers), single-consumer in practice (the
//! session is `!Sync`), though `drain_into`'s swap makes concurrent drains
//! safe too — each completion is observed exactly once.
//!
//! [`Session::complete_pending`]: crate::Session::complete_pending

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    item: T,
    next: *mut Node<T>,
}

pub(crate) struct CompletionQueue<T> {
    head: AtomicPtr<Node<T>>,
    // Raw pointers hide `T` from auto traits; restore the channel-like
    // bounds explicitly below (moving `T` across threads needs `T: Send`).
    _marker: PhantomData<*mut T>,
}

unsafe impl<T: Send> Send for CompletionQueue<T> {}
unsafe impl<T: Send> Sync for CompletionQueue<T> {}

impl<T> CompletionQueue<T> {
    pub fn new() -> Self {
        Self { head: AtomicPtr::new(ptr::null_mut()), _marker: PhantomData }
    }

    /// Pushes from any thread. Lock-free: one allocation + a CAS loop that
    /// only retries if another producer won the race.
    pub fn push(&self, item: T) {
        let node = Box::into_raw(Box::new(Node { item, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: `node` is unpublished — exclusively ours to mutate.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(
                head,
                node,
                Ordering::Release, // publish `item` to the consumer
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Detaches everything pushed so far and appends it to `out` in FIFO
    /// order. Wait-free for the consumer: a single swap, then private work.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        // Acquire pairs with the Release publish in `push`.
        let mut node = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        if node.is_null() {
            return;
        }
        // The detached list is newest-first; reverse in place.
        let mut reversed: *mut Node<T> = ptr::null_mut();
        while !node.is_null() {
            // Safety: detached nodes are exclusively ours.
            let next = unsafe { (*node).next };
            unsafe { (*node).next = reversed };
            reversed = node;
            node = next;
        }
        while !reversed.is_null() {
            // Safety: reclaiming a node we exclusively own.
            let boxed = unsafe { Box::from_raw(reversed) };
            reversed = boxed.next;
            out.push(boxed.item);
        }
    }
}

impl<T> Drop for CompletionQueue<T> {
    fn drop(&mut self) {
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // Safety: sole owner during drop.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_producer() {
        let q = CompletionQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        q.drain_into(&mut out);
        assert_eq!(out.len(), 10, "second drain finds nothing new");
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let q = Arc::new(CompletionQueue::new());
        let producers = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.push(p as u64 * per + i);
                    }
                })
            })
            .collect();
        let mut out = Vec::new();
        // Drain concurrently with the producers, then once after the join.
        while out.len() < (producers as usize) * per as usize {
            q.drain_into(&mut out);
        }
        for h in handles {
            h.join().unwrap();
        }
        q.drain_into(&mut out);
        out.sort_unstable();
        let expect: Vec<u64> = (0..producers as u64 * per).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn drop_reclaims_pending_nodes() {
        let q = CompletionQueue::new();
        for i in 0..100 {
            q.push(vec![i; 10]);
        }
        drop(q); // Miri/leak-checkers would flag lost nodes here.
    }
}
