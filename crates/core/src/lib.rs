//! # faster-core
//!
//! The FASTER concurrent key-value store (SIGMOD 2018), assembled from the
//! epoch framework (`faster-epoch`), the latch-free hash index
//! (`faster-index`), and the HybridLog record allocator (`faster-hlog`).
//!
//! ## What you get
//!
//! * [`FasterKv`] — the store: point [`Session::read`], blind
//!   [`Session::upsert`], [`Session::rmw`] (read-modify-write with
//!   user-defined update logic, including CRDT/mergeable updates), and
//!   [`Session::delete`], all latch-free, over data larger than memory.
//! * [`Session`] — a thread's registration with the store (§2.5): wraps an
//!   epoch guard, performs periodic refresh, and carries the pending
//!   queue for operations that went asynchronous (`PENDING` status).
//! * [`functions::Functions`] — the compile-time user-logic interface of
//!   Appendix E (monomorphized instead of code-generated).
//! * Checkpoint/recover (§6.5), log GC (Appendix C), on-line index resizing
//!   (Appendix B), and log scan hooks (Appendix F).
//!
//! ## Quick example — the paper's count store (§2.5)
//!
//! ```
//! use faster_core::prelude::*;
//! use faster_storage::MemDevice;
//!
//! let store = FasterKv::new(FasterKvConfig::small(), CountStore, MemDevice::new(2));
//! let mut session = store.start_session();
//! for _ in 0..10 {
//!     session.rmw(&42, &1).unwrap(); // increment key 42's counter
//! }
//! let n = match session.read(&42, &0) {
//!     Ok(Outcome::Value(v)) => v,
//!     _ => panic!("in memory, never pending"),
//! };
//! assert_eq!(n, 10);
//! ```

pub mod checkpoint;
pub mod ckpt_manager;
pub mod functions;
pub mod gc;
pub mod health;
pub mod inmem;
pub mod maintenance;
pub mod read_cache;
pub mod record;
pub mod varlen;
mod session;
pub(crate) mod walrec;

pub use checkpoint::{CheckpointData, CheckpointError};
pub use ckpt_manager::{
    CheckpointConfig, CheckpointManager, GenerationMeta, RecoveredGeneration,
};
pub use functions::{BlindKv, CountStore, Functions, ValueCell};
pub use health::{HealthReason, StoreError, StoreHealth};
pub use inmem::{InMemKv, InMemSession};
pub use session::{BatchOp, Completion, OpError, OpResult, Outcome, Session};
#[allow(deprecated)]
pub use session::{BatchOutcome, CompletedOp, ReadResult, RmwResult};
pub use varlen::{VarKv, VarValue};

/// The documented public surface in one import: the store and its config
/// builder, sessions, the unified operation result types, user-function
/// traits with the stock implementations, and the health ladder.
///
/// ```
/// use faster_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::functions::{BlindKv, CountStore, Functions, ValueCell};
    pub use crate::health::{HealthReason, StoreError, StoreHealth};
    pub use crate::session::{BatchOp, Completion, OpError, OpResult, Outcome, Session};
    pub use crate::{FasterKv, FasterKvConfig, MetricsConfig};
}

use faster_epoch::{Epoch, EpochGuard};
use faster_hlog::{HLogConfig, HybridLog};
use faster_index::{HashIndex, IndexConfig, RecordAccess};
use faster_metrics::{HlogSnapshot, MetricsRegistry, StoreMetrics};
use faster_storage::Device;
use faster_util::{Address, KeyHash, Pod};
use record::RecordRef;
use std::sync::Arc;

pub use faster_metrics::MetricsConfig;
/// Re-exported so WAL-backed stores need only `faster-core` in scope.
pub use faster_wal::WalConfig;

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct FasterKvConfig {
    pub index: IndexConfig,
    pub log: HLogConfig,
    /// Maximum concurrently active sessions (epoch-table capacity).
    pub max_sessions: usize,
    /// Operations between automatic epoch refreshes (§2.5 suggests 256).
    pub refresh_interval: u32,
    /// Optional read-hot record cache (Appendix D): a second HybridLog that
    /// is never flushed; its size/IPU split control the second-chance degree.
    pub read_cache: Option<HLogConfig>,
    /// Observability configuration (DESIGN.md §8).
    pub metrics: MetricsConfig,
    /// Batched reads ([`Session::read_batch`]) additionally prefetch one
    /// `prev`-chain hop for chain heads that miss the read cache, trading
    /// an extra prefetch slot per op for fewer dependent-load stalls on
    /// collided chains (ROADMAP prefetch experiment; see EXPERIMENTS.md).
    pub prefetch_prev_chain: bool,
    /// Optional group-committed write-ahead log (DESIGN.md §10). `None`
    /// keeps the classic FASTER durability model (CPR checkpoints only);
    /// `Some` makes every mutating op append a logical record to the WAL
    /// and lets sessions wait for group-commit durability. Build such a
    /// store with [`FasterKv::new_with_wal`] (the plain constructor has no
    /// WAL device to hand the log).
    pub wal: Option<faster_wal::WalConfig>,
    /// Tuning thresholds for the background maintenance service
    /// (DESIGN.md §11). Stored here so `FasterKv::start_maintenance` can
    /// spawn the service with no further ceremony; `None` uses
    /// `PolicyConfig::default()`.
    pub maintenance: Option<faster_maintenance::PolicyConfig>,
}

impl FasterKvConfig {
    /// A small configuration for tests and examples.
    pub fn small() -> Self {
        Self {
            index: IndexConfig { k_bits: 10, tag_bits: 15, max_resize_chunks: 8 },
            log: HLogConfig::small(),
            max_sessions: 32,
            refresh_interval: 64,
            read_cache: None,
            metrics: MetricsConfig::default(),
            prefetch_prev_chain: false,
            wal: None,
            maintenance: None,
        }
    }

    /// Sizes the index at `#keys / 2` hash-bucket entries — the paper's
    /// default ("we size the FASTER index with #keys/2 hash bucket entries",
    /// §7.1). Seven entries per bucket.
    pub fn for_keys(keys: u64) -> Self {
        let entries = (keys / 2).max(64);
        let buckets = (entries / 7).next_power_of_two();
        let k_bits = buckets.trailing_zeros() as u8;
        Self {
            index: IndexConfig { k_bits: k_bits.clamp(4, 30), tag_bits: 15, max_resize_chunks: 64 },
            log: HLogConfig::default(),
            max_sessions: 128,
            refresh_interval: 256,
            read_cache: None,
            metrics: MetricsConfig::default(),
            prefetch_prev_chain: false,
            wal: None,
            maintenance: None,
        }
    }

    pub fn with_log(mut self, log: HLogConfig) -> Self {
        self.log = log;
        self
    }

    pub fn with_tag_bits(mut self, bits: u8) -> Self {
        self.index.tag_bits = bits;
        self
    }

    /// Replaces the whole index configuration (shape + tag bits + resize
    /// chunking) in one step.
    pub fn with_index(mut self, index: IndexConfig) -> Self {
        self.index = index;
        self
    }

    /// Sets the epoch-table capacity (maximum concurrently live sessions).
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions;
        self
    }

    /// Sets the automatic epoch refresh cadence (§2.5 suggests 256).
    pub fn with_refresh_interval(mut self, ops: u32) -> Self {
        self.refresh_interval = ops;
        self
    }

    /// Enables the Appendix D read cache with the given cache-log shape.
    pub fn with_read_cache(mut self, cache: HLogConfig) -> Self {
        self.read_cache = Some(cache);
        self
    }

    /// Sets the observability configuration (DESIGN.md §8).
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Enables prev-chain prefetching in [`Session::read_batch`].
    pub fn with_prefetch_prev_chain(mut self, on: bool) -> Self {
        self.prefetch_prev_chain = on;
        self
    }

    /// Enables the group-committed WAL (DESIGN.md §10). The store must then
    /// be built with [`FasterKv::new_with_wal`] or recovered with
    /// [`ckpt_manager::recover_store_with_wal`].
    pub fn with_wal(mut self, wal: faster_wal::WalConfig) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Sets the maintenance-policy thresholds used by
    /// [`FasterKv::start_maintenance`] (DESIGN.md §11).
    pub fn with_maintenance(mut self, policy: faster_maintenance::PolicyConfig) -> Self {
        self.maintenance = Some(policy);
        self
    }
}

impl Default for FasterKvConfig {
    fn default() -> Self {
        Self::for_keys(1 << 20)
    }
}

pub(crate) struct StoreInner<K: Pod, V: Pod, F: Functions<K, V>> {
    pub epoch: Epoch,
    pub index: HashIndex,
    pub log: HybridLog,
    /// Appendix D read cache (a second, never-flushed HybridLog).
    pub rc: Option<HybridLog>,
    pub functions: F,
    pub cfg: FasterKvConfig,
    /// Store-wide metrics registry; layers hold clones of its group `Arc`s.
    pub metrics: Arc<MetricsRegistry>,
    /// Group-committed WAL (DESIGN.md §10). A `OnceLock` rather than an
    /// `Option` field so recovery can rebuild the store, replay the WAL
    /// suffix through ordinary sessions (no WAL attached yet — replayed
    /// mutations must not re-append), and only then attach the resumed log.
    pub wal: std::sync::OnceLock<Arc<faster_wal::Wal>>,
    /// Degradation-ladder state (DESIGN.md §12): fed by the log's fault
    /// hook and the WAL error paths, checked by the fallible mutation API
    /// and the maintenance actuators.
    pub health: health::HealthCell,
    _marker: std::marker::PhantomData<(K, V)>,
}

/// The FASTER key-value store. Cheap to clone (a shared handle); create one
/// [`Session`] per thread to operate on it.
pub struct FasterKv<K: Pod, V: Pod, F: Functions<K, V>> {
    pub(crate) inner: Arc<StoreInner<K, V, F>>,
}

impl<K: Pod, V: Pod, F: Functions<K, V>> Clone for FasterKv<K, V, F> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> FasterKv<K, V, F> {
    /// Creates a store over `device`.
    ///
    /// Panics if `cfg.wal` is set — a WAL needs its own device; use
    /// [`FasterKv::new_with_wal`].
    pub fn new(cfg: FasterKvConfig, functions: F, device: Arc<dyn Device>) -> Self {
        assert!(cfg.wal.is_none(), "cfg.wal set: use FasterKv::new_with_wal");
        Self::build(cfg, functions, device, None)
    }

    /// Creates a store over `device` with a group-committed WAL on
    /// `wal_device` (DESIGN.md §10). `cfg.wal` must be set.
    pub fn new_with_wal(
        cfg: FasterKvConfig,
        functions: F,
        device: Arc<dyn Device>,
        wal_device: Arc<dyn Device>,
    ) -> Self {
        let wal_cfg = cfg.wal.expect("new_with_wal requires cfg.wal");
        Self::build(cfg, functions, device, Some((wal_device, wal_cfg)))
    }

    pub(crate) fn build(
        cfg: FasterKvConfig,
        functions: F,
        device: Arc<dyn Device>,
        wal: Option<(Arc<dyn Device>, faster_wal::WalConfig)>,
    ) -> Self {
        let metrics = Arc::new(MetricsRegistry::new(cfg.metrics));
        let epoch = Epoch::with_metrics(cfg.max_sessions, metrics.epoch.clone());
        let index = HashIndex::with_metrics(cfg.index, epoch.clone(), metrics.index.clone());
        let log = HybridLog::with_metrics(cfg.log, epoch.clone(), device, metrics.hlog.clone());
        let rc = cfg.read_cache.map(|c| {
            HybridLog::with_metrics(
                c,
                epoch.clone(),
                faster_storage::NullDevice::new(),
                metrics.rc_log.clone(),
            )
        });
        let wal_log = wal.map(|(dev, wal_cfg)| {
            faster_wal::Wal::with_metrics(dev, wal_cfg, metrics.wal.clone())
        });
        let store = Self {
            inner: Arc::new(StoreInner {
                epoch,
                index,
                log,
                rc,
                functions,
                cfg,
                metrics,
                wal: std::sync::OnceLock::new(),
                health: health::HealthCell::new(),
                _marker: std::marker::PhantomData,
            }),
        };
        if let Some(w) = wal_log {
            let _ = store.inner.wal.set(w);
        }
        store.attach_health_hook();
        if let Some(rc_log) = &store.inner.rc {
            // Eviction hook: restore index entries to the primary-log
            // addresses before cache frames are recycled (Appendix D).
            let weak = Arc::downgrade(&store.inner);
            rc_log.set_eviction_hook(move |from, to| {
                if let Some(inner) = weak.upgrade() {
                    restore_evicted_entries::<K, V, F>(&inner, from, to);
                }
            });
        }
        store
    }

    /// Subscribes the health cell to the log's storage-fault stream
    /// (quarantined pages, corrupt reads). Every construction path — plain
    /// build and checkpoint recovery — must call this once.
    pub(crate) fn attach_health_hook(&self) {
        let weak = Arc::downgrade(&self.inner);
        self.inner.log.set_fault_hook(move |fault| {
            if let Some(inner) = weak.upgrade() {
                inner.health.on_log_fault(fault);
            }
        });
    }

    /// Where the store sits on the degradation ladder (DESIGN.md §12).
    /// `Healthy` until a storage fault is observed; `ReadOnly` once new
    /// mutations can no longer be made durable — reads keep serving, and
    /// mutations return [`OpError::ReadOnly`].
    pub fn health(&self) -> StoreHealth {
        self.inner.health.get()
    }

    /// Registers the calling thread with the store (§2.5 `Acquire`). Drop the
    /// session to deregister (`Release`).
    pub fn start_session(&self) -> Session<K, V, F> {
        Session::new(self.clone())
    }

    /// The store's epoch framework.
    pub fn epoch(&self) -> &Epoch {
        &self.inner.epoch
    }

    /// The underlying hybrid log (markers, scan, GC).
    pub fn log(&self) -> &HybridLog {
        &self.inner.log
    }

    /// The hash index (size, resize status).
    pub fn index(&self) -> &HashIndex {
        &self.inner.index
    }

    /// User functions instance.
    pub fn functions(&self) -> &F {
        &self.inner.functions
    }

    /// The group-committed WAL, if this store runs with one (DESIGN.md §10).
    pub fn wal(&self) -> Option<&Arc<faster_wal::Wal>> {
        self.inner.wal.get()
    }

    /// The read cache's backing log, if the store has one (Appendix D). The
    /// maintenance service resizes the cache through its `set_active_pages`.
    pub fn read_cache_log(&self) -> Option<&HybridLog> {
        self.inner.rc.as_ref()
    }

    /// The store's configuration (as passed at construction).
    pub fn config(&self) -> &FasterKvConfig {
        &self.inner.cfg
    }

    /// The live metrics registry (per-layer counter groups). Most callers
    /// want [`FasterKv::metrics`] instead.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.inner.metrics
    }

    /// Captures a [`StoreMetrics`] snapshot: every subsystem counter plus
    /// point-in-time gauges (epoch positions, log region boundaries, index
    /// geometry, device byte totals). Counters are exact at quiescence;
    /// under concurrency the snapshot is monotone but not a linearizable
    /// cut (DESIGN.md §8).
    pub fn metrics(&self) -> StoreMetrics {
        let inner = &self.inner;
        let mut m = inner.metrics.snapshot_counters(inner.rc.is_some());
        m.epoch.current = inner.epoch.current();
        m.epoch.safe = inner.epoch.safe();
        m.index.k_bits = inner.index.k_bits() as u64;
        m.index.buckets = 1u64 << inner.index.k_bits();
        m.index.resize_active =
            (inner.index.status().phase != faster_index::Phase::Stable) as u64;
        fill_hlog_gauges(&mut m.hlog, &inner.log);
        if let Some(rc) = &inner.rc {
            fill_hlog_gauges(&mut m.rc_log, rc);
        }
        let dev = inner.log.device().stats();
        m.storage.bytes_written = dev.bytes_written;
        m.storage.bytes_read = dev.bytes_read;
        m.storage.device_writes = dev.writes;
        m.storage.device_reads = dev.reads;
        let (state, reason) = inner.health.tokens();
        m.health.state = state;
        m.health.reason = reason;
        m
    }

    /// Record size of this store's fixed-size records.
    pub const fn record_size() -> usize {
        RecordRef::<K, V>::size()
    }

    /// Doubles the hash index on-line (Appendix B). Call from a thread that
    /// either owns `session` or no session; other sessions keep operating.
    pub fn grow_index(&self, session: Option<&Session<K, V, F>>) -> bool {
        let shim: Arc<dyn RecordAccess> = Arc::new(AccessShim { store: self.clone() });
        self.inner.index.grow(shim, session.map(|s| s.guard()))
    }

    /// Halves the hash index on-line (Appendix B).
    pub fn shrink_index(&self, session: Option<&Session<K, V, F>>) -> bool {
        let shim: Arc<dyn RecordAccess> = Arc::new(AccessShim { store: self.clone() });
        self.inner.index.shrink(shim, session.map(|s| s.guard()))
    }
}

/// Fills a snapshot's region-boundary gauges from a live log.
fn fill_hlog_gauges(s: &mut HlogSnapshot, log: &HybridLog) {
    s.begin = log.begin_address().raw();
    s.head = log.head_address().raw();
    s.safe_read_only = log.safe_read_only_address().raw();
    s.read_only = log.read_only_address().raw();
    s.flushed_until = log.flushed_until_address().raw();
    s.tail = log.tail_address().raw();
    s.active_pages = log.active_pages();
}

/// Eviction hook body: walk evicted read-cache pages and CAS each still-
/// tagged index entry back to the cached record's primary address.
fn restore_evicted_entries<K: Pod + Eq, V: Pod, F: Functions<K, V>>(
    inner: &StoreInner<K, V, F>,
    from: u64,
    to: u64,
) {
    let Some(rc) = &inner.rc else { return };
    let rec_size = RecordRef::<K, V>::size() as u64;
    let page_size = rc.config().page_size();
    let mut addr = from.max(Address::FIRST_VALID.raw());
    while addr + rec_size <= to {
        // Records never span pages; skip page-tail padding.
        if page_size - (addr & (page_size - 1)) < rec_size {
            addr = (addr & !(page_size - 1)) + page_size;
            continue;
        }
        // Safety: [from, to) is the eviction window the hook owns.
        let p = unsafe { rc.get_evicting(Address::new(addr)) };
        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        let header = rec.header();
        if !header.is_live() {
            // Padding: rest of this page is empty.
            addr = (addr & !(page_size - 1)) + page_size;
            continue;
        }
        let hash = hash_key(&rec.key());
        if let Some(slot) = inner.index.find_tag(hash, None) {
            let cur = slot.load();
            if cur.address() == read_cache::rc_tag(Address::new(addr)) {
                // prev holds the primary-log address of the cached record.
                let _ = slot.cas_address(cur, header.prev());
            }
        }
        addr += rec_size;
    }
}

/// Bridges the index resizer to this store's record layout (Appendix B:
/// migration walks record chains, re-hashes keys, and relinks).
struct AccessShim<K: Pod, V: Pod, F: Functions<K, V>> {
    store: FasterKv<K, V, F>,
}

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> RecordAccess for AccessShim<K, V, F> {
    fn record_hash(&self, addr: Address) -> Option<KeyHash> {
        if read_cache::is_rc(addr) {
            let rc = self.store.inner.rc.as_ref()?;
            let p = rc.get(read_cache::rc_untag(addr))?;
            let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
            return Some(KeyHash::new(faster_util::hash_bytes(faster_util::bytes_of(
                &rec.key(),
            ))));
        }
        if addr < self.store.inner.log.read_only_address() {
            // Sealed or flushed (even if still buffer-resident): migration
            // must not relink it — a rewrite would race the flush and be
            // lost on eviction. Treat as an opaque chain tail.
            return None;
        }
        let p = self.store.inner.log.get(addr)?;
        // Safety: addr came from a live chain; epoch rules keep it mapped.
        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        if rec.header().is_merge() {
            // Merge meta-records have no key; treat as a chain boundary so
            // the resizer leaves the combined chain intact.
            return None;
        }
        Some(KeyHash::new(faster_util::hash_bytes(faster_util::bytes_of(&rec.key()))))
    }

    fn record_prev(&self, addr: Address) -> Address {
        let p = if read_cache::is_rc(addr) {
            self.store
                .inner
                .rc
                .as_ref()
                .and_then(|rc| rc.get(read_cache::rc_untag(addr)))
                .expect("resize walks resident records")
        } else {
            self.store.inner.log.get(addr).expect("resize walks resident records")
        };
        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        rec.header().prev()
    }

    fn set_record_prev(&self, addr: Address, prev: Address) {
        let p = self.store.inner.log.get(addr).expect("resize walks resident records");
        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        rec.set_prev(prev);
    }

    fn try_alloc_merge_meta(&self, guard: Option<&EpochGuard>) -> Option<Address> {
        // Fast path only: `try_allocate` never refreshes an epoch entry,
        // which is the resizer's contract — its walk→relink window depends
        // on the migrator's entry staying pinned. A temporary guard for the
        // seal bookkeeping (guardless migrators) is harmless: acquiring one
        // does not advance the migrator's own entry. Backpressure is NOT
        // relieved here — the resizer must abandon its window first.
        let own = if guard.is_none() { Some(self.store.inner.epoch.acquire()) } else { None };
        let guard = guard.or(own.as_ref()).expect("some guard");
        let size = record::MergeRecord::size::<K, V>() as u32;
        let addr = self.store.inner.log.try_allocate(size, guard)?;
        let p = self.store.inner.log.get(addr).expect("fresh tail allocation is resident");
        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        rec.init_header(record::RecordHeader::new(Address::INVALID).with(record::MERGE_BIT));
        unsafe { record::MergeRecord::set_second_address(p, Address::INVALID) };
        Some(addr)
    }

    fn set_merge_meta(&self, meta: Address, a: Address, b: Address) {
        let p = self.store.inner.log.get(meta).expect("merge meta is resident");
        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        rec.set_prev(a);
        unsafe { record::MergeRecord::set_second_address(p, b) };
    }
}

/// Hashes a key the way the store does everywhere (index, recovery, resize).
#[inline]
pub(crate) fn hash_key<K: Pod>(key: &K) -> KeyHash {
    KeyHash::of_pod(key)
}

#[cfg(test)]
mod tests;
