//! WAL payload codec (DESIGN.md §10).
//!
//! Each WAL record carries one logical redo operation as a flat byte
//! payload: a one-byte kind tag, the `Pod` key bytes, and — for the kinds
//! that write — the **post-image** value bytes. Post-image (physical redo)
//! rather than the operation's input keeps replay independent of the
//! user's `Functions::Input` type (which need not be `Pod`) and makes
//! reapplying a record idempotent: replaying a suffix that partially
//! overlaps a fuzzy checkpoint converges to the same state.
//!
//! CRDT deltas are the exception — their post-image is a *partial* value
//! ([`crate::record::DELTA_BIT`] records), so they get their own kind and
//! replay re-appends a delta (or folds into a fresh full value when the
//! key's chain no longer exists).

use faster_util::{bytes_of, pod_from_bytes, Pod};

/// Full post-image write: upserts and completed (non-delta) RMWs.
pub(crate) const KIND_PUT: u8 = 1;
/// Tombstone append.
pub(crate) const KIND_DELETE: u8 = 2;
/// CRDT delta append: the value bytes are a partial (mergeable) value.
pub(crate) const KIND_DELTA: u8 = 3;

/// One decoded WAL operation, ready for replay.
pub(crate) enum WalOp<K, V> {
    Put { key: K, value: V },
    Delete { key: K },
    Delta { key: K, partial: V },
}

/// Encodes `kind | key bytes | value bytes?` into a WAL payload.
pub(crate) fn encode<K: Pod, V: Pod>(kind: u8, key: &K, value: Option<&V>) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(1 + std::mem::size_of::<K>() + std::mem::size_of::<V>());
    out.push(kind);
    out.extend_from_slice(bytes_of(key));
    if let Some(v) = value {
        out.extend_from_slice(bytes_of(v));
    }
    out
}

/// Decodes a WAL payload. `None` for unknown kinds or size mismatches —
/// recovery treats such a record as corrupt and skips it (the WAL's own
/// checksum makes this unreachable short of a codec version skew).
pub(crate) fn decode<K: Pod, V: Pod>(payload: &[u8]) -> Option<WalOp<K, V>> {
    let (&kind, rest) = payload.split_first()?;
    let ks = std::mem::size_of::<K>();
    let vs = std::mem::size_of::<V>();
    match kind {
        KIND_PUT | KIND_DELTA if rest.len() == ks + vs => {
            let key = pod_from_bytes::<K>(&rest[..ks]);
            let value = pod_from_bytes::<V>(&rest[ks..]);
            Some(if kind == KIND_PUT {
                WalOp::Put { key, value }
            } else {
                WalOp::Delta { key, partial: value }
            })
        }
        KIND_DELETE if rest.len() == ks => Some(WalOp::Delete { key: pod_from_bytes::<K>(rest) }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = encode::<u64, u64>(KIND_PUT, &7, Some(&9));
        match decode::<u64, u64>(&p) {
            Some(WalOp::Put { key: 7, value: 9 }) => {}
            _ => panic!("bad decode"),
        }
        let d = encode::<u64, u64>(KIND_DELETE, &7, None);
        assert!(matches!(decode::<u64, u64>(&d), Some(WalOp::Delete { key: 7 })));
        let m = encode::<u64, u64>(KIND_DELTA, &7, Some(&3));
        assert!(matches!(decode::<u64, u64>(&m), Some(WalOp::Delta { key: 7, partial: 3 })));
    }

    #[test]
    fn rejects_wrong_sizes_and_kinds() {
        assert!(decode::<u64, u64>(&[]).is_none());
        assert!(decode::<u64, u64>(&[KIND_PUT, 0, 0]).is_none());
        assert!(decode::<u64, u64>(&encode::<u64, u64>(99, &1, Some(&2))).is_none());
    }
}
