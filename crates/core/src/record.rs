//! Record layout in the log (Fig 2, §4).
//!
//! ```text
//!   [ header: u64 ][ key: K ][ value: V ]   (8-byte aligned total)
//! ```
//!
//! The header packs the previous-record address (48 bits) with status bits:
//!
//! | bit | name      | meaning                                              |
//! |-----|-----------|------------------------------------------------------|
//! | 48  | invalid   | CAS on the index entry failed; skip this record (§5.3)|
//! | 49  | tombstone | deletion marker (§5.3)                               |
//! | 50  | delta     | CRDT partial-value record (§6.3)                     |
//! | 51  | merge     | index-shrink meta record pointing at two chains (App B)|
//! | 52  | overwrite | superseded by a later record (GC hint, Appendix C)   |
//! | 53  | live      | always set on real records, so an all-zero header     |
//! |     |           | unambiguously marks page padding for log scans        |
//!
//! The header is a single `AtomicU64`: latch-free delete splices and invalid
//! markings are CAS/fetch-or operations on it, exactly as in the paper.

use faster_util::{align_up, Address, Pod};
use std::sync::atomic::{AtomicU64, Ordering};

const ADDR_MASK: u64 = Address::MASK;
pub const INVALID_BIT: u64 = 1 << 48;
pub const TOMBSTONE_BIT: u64 = 1 << 49;
pub const DELTA_BIT: u64 = 1 << 50;
pub const MERGE_BIT: u64 = 1 << 51;
pub const OVERWRITE_BIT: u64 = 1 << 52;
pub const LIVE_BIT: u64 = 1 << 53;

/// Decoded record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader(pub u64);

impl RecordHeader {
    pub fn new(prev: Address) -> Self {
        Self((prev.raw() & ADDR_MASK) | LIVE_BIT)
    }

    pub fn with(mut self, bits: u64) -> Self {
        self.0 |= bits;
        self
    }

    #[inline]
    pub fn prev(self) -> Address {
        Address::new(self.0 & ADDR_MASK)
    }

    #[inline]
    pub fn is_live(self) -> bool {
        self.0 & LIVE_BIT != 0
    }

    #[inline]
    pub fn is_invalid(self) -> bool {
        self.0 & INVALID_BIT != 0
    }

    #[inline]
    pub fn is_tombstone(self) -> bool {
        self.0 & TOMBSTONE_BIT != 0
    }

    #[inline]
    pub fn is_delta(self) -> bool {
        self.0 & DELTA_BIT != 0
    }

    #[inline]
    pub fn is_merge(self) -> bool {
        self.0 & MERGE_BIT != 0
    }

    #[inline]
    pub fn is_overwritten(self) -> bool {
        self.0 & OVERWRITE_BIT != 0
    }
}

/// Typed view over an in-memory record. Carries no lifetime of its own: the
/// caller's epoch guard is what keeps the underlying page frame alive (§4).
pub struct RecordRef<K: Pod, V: Pod> {
    base: *mut u8,
    _marker: std::marker::PhantomData<(K, V)>,
}

impl<K: Pod, V: Pod> Clone for RecordRef<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Pod, V: Pod> Copy for RecordRef<K, V> {}

impl<K: Pod, V: Pod> RecordRef<K, V> {
    /// Byte offset of the key within a record.
    pub const KEY_OFFSET: usize = 8;

    /// Byte offset of the value within a record.
    pub const fn value_offset() -> usize {
        8 + align_up(std::mem::size_of::<K>(), 8)
    }

    /// Total record size, 8-byte aligned.
    pub const fn size() -> usize {
        align_up(Self::value_offset() + std::mem::size_of::<V>(), 8)
    }

    /// Wraps a raw pointer previously obtained from the log.
    ///
    /// # Safety
    ///
    /// `base` must point at `Self::size()` readable/writable bytes laid out
    /// as a record, and must stay valid for the caller's epoch-protected
    /// scope.
    #[inline]
    pub unsafe fn from_raw(base: *mut u8) -> Self {
        debug_assert!(!base.is_null());
        debug_assert_eq!(base as usize % 8, 0, "records are 8-byte aligned");
        Self { base, _marker: std::marker::PhantomData }
    }

    /// The header word as an atomic (shared mutation point).
    #[inline]
    pub fn header_atomic(&self) -> &AtomicU64 {
        // Safety: base is 8-aligned and valid; AtomicU64 has the same layout
        // as u64.
        unsafe { &*(self.base as *const AtomicU64) }
    }

    /// Decoded header snapshot.
    #[inline]
    pub fn header(&self) -> RecordHeader {
        RecordHeader(self.header_atomic().load(Ordering::SeqCst))
    }

    /// Stores a fresh header (record initialization only).
    #[inline]
    pub fn init_header(&self, h: RecordHeader) {
        self.header_atomic().store(h.0, Ordering::SeqCst);
    }

    /// Sets status bits with fetch-or (e.g. invalid after a failed CAS).
    #[inline]
    pub fn set_bits(&self, bits: u64) {
        self.header_atomic().fetch_or(bits, Ordering::SeqCst);
    }

    /// CAS the full header (delete splices, prev rewrites during resize).
    #[inline]
    pub fn cas_header(&self, expected: RecordHeader, new: RecordHeader) -> Result<(), RecordHeader> {
        self.header_atomic()
            .compare_exchange(expected.0, new.0, Ordering::SeqCst, Ordering::SeqCst)
            .map(|_| ())
            .map_err(RecordHeader)
    }

    /// Rewrites only the previous-address bits, preserving status bits.
    pub fn set_prev(&self, prev: Address) {
        let a = self.header_atomic();
        let mut cur = a.load(Ordering::SeqCst);
        loop {
            let new = (cur & !ADDR_MASK) | prev.raw();
            match a.compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Reads the key (immutable after initialization).
    #[inline]
    pub fn key(&self) -> K {
        // Safety: layout contract of from_raw.
        unsafe { std::ptr::read(self.base.add(Self::KEY_OFFSET) as *const K) }
    }

    /// Writes the key (record initialization only).
    #[inline]
    pub fn init_key(&self, key: &K) {
        // Safety: layout contract; exclusive during init.
        unsafe { std::ptr::write(self.base.add(Self::KEY_OFFSET) as *mut K, *key) }
    }

    /// Raw value pointer.
    #[inline]
    pub fn value_ptr(&self) -> *mut V {
        // Safety: layout contract.
        unsafe { self.base.add(Self::value_offset()) as *mut V }
    }

    /// Copies the value out (single-reader contexts: immutable regions).
    #[inline]
    pub fn read_value(&self) -> V {
        // Safety: layout contract.
        unsafe { std::ptr::read(self.value_ptr()) }
    }

    /// Exclusive value reference (record initialization / copy-update target).
    ///
    /// # Safety
    ///
    /// Caller must have exclusive access (freshly allocated, unpublished
    /// record).
    #[inline]
    #[allow(clippy::mut_from_ref)] // interior mutability; safety contract above
    pub unsafe fn value_mut(&self) -> &mut V {
        &mut *self.value_ptr()
    }

    /// Shared-mutation cell for the concurrent user functions.
    #[inline]
    pub fn value_cell(&self) -> &crate::functions::ValueCell<V> {
        // Safety: ValueCell is a #[repr(transparent)] UnsafeCell<V> view.
        unsafe { &*(self.value_ptr() as *const crate::functions::ValueCell<V>) }
    }

    /// Serializes a record image into `buf` (used by recovery tests).
    pub fn parse_bytes(bytes: &[u8]) -> Option<(RecordHeader, K, V)> {
        if bytes.len() < Self::size() {
            return None;
        }
        let raw = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let header = RecordHeader(raw);
        if !header.is_live() {
            return None;
        }
        let key = faster_util::pod_from_bytes::<K>(
            &bytes[Self::KEY_OFFSET..Self::KEY_OFFSET + std::mem::size_of::<K>()],
        );
        let vo = Self::value_offset();
        let value = faster_util::pod_from_bytes::<V>(&bytes[vo..vo + std::mem::size_of::<V>()]);
        Some((header, key, value))
    }
}

/// For merge meta-records (index shrink): the second chain address is stored
/// in the key slot. Only meaningful when [`RecordHeader::is_merge`] is set.
pub struct MergeRecord;

impl MergeRecord {
    /// Record size of a merge record for stores with key type `K`, value `V`
    /// (same as a normal record so log strides stay uniform).
    pub const fn size<K: Pod, V: Pod>() -> usize {
        RecordRef::<K, V>::size()
    }

    /// Reads the second chain address from the key slot.
    ///
    /// # Safety
    ///
    /// `base` must be a valid merge record.
    pub unsafe fn second_address(base: *mut u8) -> Address {
        Address::new(std::ptr::read(base.add(8) as *const u64) & Address::MASK)
    }

    /// Writes the second chain address.
    ///
    /// # Safety
    ///
    /// Exclusive access during initialization.
    pub unsafe fn set_second_address(base: *mut u8, addr: Address) {
        std::ptr::write(base.add(8) as *mut u64, addr.raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_bits_round_trip() {
        let h = RecordHeader::new(Address::new(0xABCD)).with(TOMBSTONE_BIT | DELTA_BIT);
        assert_eq!(h.prev(), Address::new(0xABCD));
        assert!(h.is_live());
        assert!(h.is_tombstone());
        assert!(h.is_delta());
        assert!(!h.is_invalid());
        assert!(!h.is_merge());
        assert!(!h.is_overwritten());
    }

    #[test]
    fn zero_header_is_padding() {
        assert!(!RecordHeader(0).is_live());
        assert!(RecordHeader::new(Address::INVALID).is_live());
    }

    #[test]
    fn record_size_is_aligned() {
        assert_eq!(RecordRef::<u64, u64>::size(), 24);
        assert_eq!(RecordRef::<u64, [u8; 100]>::size() % 8, 0);
        assert_eq!(RecordRef::<u64, [u8; 100]>::size(), 8 + 8 + 104);
        assert_eq!(RecordRef::<u32, u8>::size(), 24); // 8 + pad(4->8) + pad(1->8)
    }

    #[test]
    fn record_read_write() {
        let mut buf = vec![0u8; RecordRef::<u64, u64>::size()];
        let r = unsafe { RecordRef::<u64, u64>::from_raw(buf.as_mut_ptr()) };
        r.init_header(RecordHeader::new(Address::new(64)));
        r.init_key(&0xFEED);
        unsafe { *r.value_mut() = 777 };
        assert_eq!(r.header().prev(), Address::new(64));
        assert_eq!(r.key(), 0xFEED);
        assert_eq!(r.read_value(), 777);
        // Bit marking
        r.set_bits(INVALID_BIT);
        assert!(r.header().is_invalid());
        assert_eq!(r.header().prev(), Address::new(64), "prev survives bit sets");
        // Prev rewrite preserves bits
        r.set_prev(Address::new(128));
        assert!(r.header().is_invalid());
        assert_eq!(r.header().prev(), Address::new(128));
    }

    #[test]
    fn parse_bytes_matches_layout() {
        let mut buf = vec![0u8; RecordRef::<u64, u64>::size()];
        {
            let r = unsafe { RecordRef::<u64, u64>::from_raw(buf.as_mut_ptr()) };
            r.init_header(RecordHeader::new(Address::new(96)).with(TOMBSTONE_BIT));
            r.init_key(&11);
            unsafe { *r.value_mut() = 22 };
        }
        let (h, k, v) = RecordRef::<u64, u64>::parse_bytes(&buf).unwrap();
        assert_eq!(h.prev(), Address::new(96));
        assert!(h.is_tombstone());
        assert_eq!(k, 11);
        assert_eq!(v, 22);
        // Padding (all zero) is rejected.
        let zeros = vec![0u8; RecordRef::<u64, u64>::size()];
        assert!(RecordRef::<u64, u64>::parse_bytes(&zeros).is_none());
    }

    #[test]
    fn merge_record_second_address() {
        let mut buf = vec![0u8; MergeRecord::size::<u64, u64>()];
        unsafe {
            let r = RecordRef::<u64, u64>::from_raw(buf.as_mut_ptr());
            r.init_header(RecordHeader::new(Address::new(100)).with(MERGE_BIT));
            MergeRecord::set_second_address(buf.as_mut_ptr(), Address::new(200));
            assert!(r.header().is_merge());
            assert_eq!(r.header().prev(), Address::new(100));
            assert_eq!(MergeRecord::second_address(buf.as_mut_ptr()), Address::new(200));
        }
    }
}
