//! The compile-time user-functions interface (Appendix E).
//!
//! The paper's C# implementation uses dynamic code generation to inline
//! user-defined read/update logic into the store. Rust gets the same effect
//! statically: `FasterKv<K, V, F>` is generic over a [`Functions`]
//! implementation and monomorphization inlines the user logic into every
//! operation path.
//!
//! The trait mirrors the paper's function table exactly:
//!
//! | paper              | here                 | access guarantee          |
//! |--------------------|----------------------|---------------------------|
//! | `SingleReader`     | `single_reader`      | read-only, quiesced value |
//! | `ConcurrentReader` | `concurrent_reader`  | value may change under you|
//! | `SingleWriter`     | `single_writer`      | exclusive (`&mut V`)      |
//! | `ConcurrentWriter` | `concurrent_writer`  | shared ([`ValueCell`])    |
//! | `InitialUpdater`   | `initial_updater`    | exclusive                 |
//! | `InPlaceUpdater`   | `in_place_updater`   | shared ([`ValueCell`])    |
//! | `CopyUpdater`      | `copy_updater`       | old read-only, new excl.  |
//!
//! "the user is expected to handle concurrency (e.g., using an S-X lock)" —
//! concurrent callbacks receive a [`ValueCell`], from which the user picks a
//! discipline: an atomic view (`as_atomic_u64`), plain racy loads/stores for
//! partitioned keys, or their own locking around `as_mut`.

use faster_util::Pod;
use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64;

/// A shared mutation point over a record value living in the mutable region
/// of the log. See module docs for the concurrency contract.
#[repr(transparent)]
pub struct ValueCell<V>(UnsafeCell<V>);

// Safety: ValueCell is handed to user functions that define their own
// synchronization; the cell itself adds none (like C++'s value reference).
unsafe impl<V: Send> Send for ValueCell<V> {}
unsafe impl<V: Send> Sync for ValueCell<V> {}

impl<V: Pod> ValueCell<V> {
    /// Copies the value out. Under concurrent writers this is a racy read of
    /// a `Pod` value — every bit pattern is valid, but multi-word values may
    /// be torn; use [`ValueCell::as_atomic_u64`] or your own lock when
    /// tearing matters.
    #[inline]
    pub fn load(&self) -> V {
        // Safety: Pod => any bytes form a valid value.
        unsafe { std::ptr::read_volatile(self.0.get()) }
    }

    /// Overwrites the value (same tearing caveat as [`ValueCell::load`]).
    #[inline]
    pub fn store(&self, v: V) {
        // Safety: Pod; concurrent readers tolerate torn reads by contract.
        unsafe { std::ptr::write_volatile(self.0.get(), v) }
    }

    /// Views an 8-byte value as an atomic: the paper's "use fetch-and-add
    /// for counters" discipline.
    ///
    /// # Panics
    ///
    /// Panics if `V` is not exactly 8 bytes with 8-byte alignment.
    #[inline]
    pub fn as_atomic_u64(&self) -> &AtomicU64 {
        assert_eq!(std::mem::size_of::<V>(), 8, "atomic view requires 8-byte values");
        assert!(std::mem::align_of::<V>() <= 8);
        // Safety: size/alignment checked; AtomicU64 is layout-compatible.
        unsafe { &*(self.0.get() as *const AtomicU64) }
    }

    /// Raw exclusive access.
    ///
    /// # Safety
    ///
    /// Caller must guarantee no concurrent access (e.g. keys are partitioned
    /// across threads, or an external lock is held).
    #[inline]
    #[allow(clippy::mut_from_ref)] // interior mutability; safety contract above
    pub unsafe fn as_mut(&self) -> &mut V {
        &mut *self.0.get()
    }
}

/// User-defined store logic. See module docs; `Input`/`Output` match the
/// paper's five-type interface (`Key`, `Value`, `Input`, `Output`, and the
/// context, which Rust sessions carry implicitly per pending operation).
pub trait Functions<K: Pod, V: Pod>: Send + Sync + 'static {
    /// Update/read parameter (e.g. the increment of a per-key sum).
    type Input: Clone + Send + Sync + 'static;
    /// Read result.
    type Output: Send + 'static;

    // ---- reads ----

    /// Reads a quiesced value (safe-read-only region or a disk record).
    fn single_reader(&self, key: &K, input: &Self::Input, value: &V) -> Self::Output;

    /// Reads a value that concurrent writers may be updating in place.
    fn concurrent_reader(&self, key: &K, input: &Self::Input, value: &ValueCell<V>) -> Self::Output {
        let v = value.load();
        self.single_reader(key, input, &v)
    }

    // ---- upserts ----

    /// Writes `new` into an exclusive destination (fresh tail record).
    fn single_writer(&self, _key: &K, new: &V, dst: &mut V) {
        *dst = *new;
    }

    /// Writes `new` into a value other threads may be touching.
    fn concurrent_writer(&self, _key: &K, new: &V, dst: &ValueCell<V>) {
        dst.store(*new);
    }

    // ---- RMW ----

    /// Populates the value for a key that does not exist yet.
    fn initial_updater(&self, key: &K, input: &Self::Input, value: &mut V);

    /// Updates a value in place (mutable region; may race with other
    /// updaters of the same record — pick a discipline on the cell).
    fn in_place_updater(&self, key: &K, input: &Self::Input, value: &ValueCell<V>);

    /// Produces the updated value at a new location from the old one (RCU).
    fn copy_updater(&self, key: &K, input: &Self::Input, old: &V, new: &mut V);

    // ---- CRDT (§6.3) ----

    /// Whether RMWs are mergeable (a CRDT): partial values can be computed
    /// independently and merged later.
    fn is_mergeable(&self) -> bool {
        false
    }

    /// The identity value partials start from (e.g. 0 for a sum). Required
    /// when [`Functions::is_mergeable`] returns true.
    fn identity(&self) -> V {
        unimplemented!("identity() required for mergeable functions")
    }

    /// Merges two partial values. Required for mergeable functions.
    fn merge(&self, _a: &V, _b: &V) -> V {
        unimplemented!("merge() required for mergeable functions")
    }
}

/// The paper's running example: a **count store** (§2.5). Keys map to `u64`
/// counters incremented by RMW inputs; increments are mergeable (a sum
/// CRDT), and in-place updates use fetch-and-add.
#[derive(Debug, Default, Clone)]
pub struct CountStore;

impl Functions<u64, u64> for CountStore {
    type Input = u64;
    type Output = u64;

    fn single_reader(&self, _key: &u64, _input: &u64, value: &u64) -> u64 {
        *value
    }

    fn concurrent_reader(&self, _key: &u64, _input: &u64, value: &ValueCell<u64>) -> u64 {
        value.as_atomic_u64().load(std::sync::atomic::Ordering::Relaxed)
    }

    fn initial_updater(&self, _key: &u64, input: &u64, value: &mut u64) {
        // "The initial value for the insert of a new key is set to 0" (§4),
        // then the increment applies.
        *value = *input;
    }

    fn in_place_updater(&self, _key: &u64, input: &u64, value: &ValueCell<u64>) {
        // Latch-free increment: the paper's canonical fetch-and-add.
        value.as_atomic_u64().fetch_add(*input, std::sync::atomic::Ordering::Relaxed);
    }

    fn copy_updater(&self, _key: &u64, input: &u64, old: &u64, new: &mut u64) {
        *new = old.wrapping_add(*input);
    }

    fn is_mergeable(&self) -> bool {
        true
    }

    fn identity(&self) -> u64 {
        0
    }

    fn merge(&self, a: &u64, b: &u64) -> u64 {
        a.wrapping_add(*b)
    }
}

/// Blind-replace functions for plain KV usage (quickstart, YCSB upserts).
/// `V` is stored and returned as-is; RMW overwrites with the input.
#[derive(Debug, Default, Clone)]
pub struct BlindKv<V>(std::marker::PhantomData<V>);

impl<V: Pod> BlindKv<V> {
    pub fn new() -> Self {
        Self(std::marker::PhantomData)
    }
}

impl<K: Pod, V: Pod> Functions<K, V> for BlindKv<V> {
    type Input = V;
    type Output = V;

    fn single_reader(&self, _key: &K, _input: &V, value: &V) -> V {
        *value
    }

    fn initial_updater(&self, _key: &K, input: &V, value: &mut V) {
        *value = *input;
    }

    fn in_place_updater(&self, _key: &K, input: &V, value: &ValueCell<V>) {
        value.store(*input);
    }

    fn copy_updater(&self, _key: &K, input: &V, _old: &V, new: &mut V) {
        *new = *input;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_cell_load_store() {
        let mut v = 5u64;
        let cell = unsafe { &*(&mut v as *mut u64 as *const ValueCell<u64>) };
        assert_eq!(cell.load(), 5);
        cell.store(9);
        assert_eq!(cell.load(), 9);
        cell.as_atomic_u64().fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(cell.load(), 10);
    }

    #[test]
    #[should_panic(expected = "8-byte values")]
    fn atomic_view_rejects_wrong_size() {
        let mut v = [0u8; 16];
        let cell = unsafe { &*(v.as_mut_ptr() as *const ValueCell<[u8; 16]>) };
        let _ = cell.as_atomic_u64();
    }

    #[test]
    fn count_store_semantics() {
        let f = CountStore;
        let mut v = 0u64;
        f.initial_updater(&1, &5, &mut v);
        assert_eq!(v, 5);
        let cell = unsafe { &*(&mut v as *mut u64 as *const ValueCell<u64>) };
        f.in_place_updater(&1, &3, cell);
        assert_eq!(cell.load(), 8);
        let mut n = 0u64;
        f.copy_updater(&1, &2, &8, &mut n);
        assert_eq!(n, 10);
        assert!(f.is_mergeable());
        assert_eq!(f.merge(&4, &6), 10);
        assert_eq!(f.identity(), 0);
        assert_eq!(f.single_reader(&1, &0, &10), 10);
    }

    #[test]
    fn blind_kv_semantics() {
        let f: BlindKv<u64> = BlindKv::new();
        let mut v = 0u64;
        Functions::<u64, u64>::initial_updater(&f, &1, &42, &mut v);
        assert_eq!(v, 42);
        let mut dst = 0u64;
        Functions::<u64, u64>::single_writer(&f, &1, &7, &mut dst);
        assert_eq!(dst, 7);
        assert!(!Functions::<u64, u64>::is_mergeable(&f));
    }
}
