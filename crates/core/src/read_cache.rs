//! Read-hot record cache (Appendix D).
//!
//! "For a mixed workload with a non-trivial number of read-hot records, our
//! design can accommodate a separate read cache. In fact, we can simply
//! create a new instance of HybridLog for this purpose. The only difference
//! between this log and the primary HybridLog is that there is no flush to
//! disk on page eviction. Record headers in these read-only records point to
//! the corresponding records in the primary log."
//!
//! This implements the paper's **option (1)**: "the hash index can use an
//! additional bit to identify which log the index address points to. When a
//! read-only record is evicted, the index entry needs to be updated with the
//! original pointer to the record on the primary log."
//!
//! * Cache addresses carry bit 47 ([`RC_BIT`]) in the hash-bucket entry.
//! * A cache record's `prev` header field holds the *primary* log address of
//!   the record it caches, so chains traverse through the cache seamlessly
//!   and updates can splice the cache copy out.
//! * The cache log's eviction hook (no flush — it sits on a
//!   [`faster_storage::NullDevice`])
//!   walks evicted pages and CASes each index entry back to the primary
//!   address before the frame is recycled.
//! * A read that hits a cache record outside the cache's mutable region
//!   copies it to the cache tail — the same second-chance shaping as the
//!   primary HybridLog (§6.4), sized by the cache's read-only region.
//!
//! Caveats documented per the paper's own scope ("a detailed evaluation of
//! these techniques is outside the scope of this paper"): checkpoints taken
//! while a read cache is enabled rewrite tagged entries to their primary
//! addresses best-effort; combine resizing with a read cache only when
//! quiesced.

use faster_util::Address;

/// The "which log" bit of Appendix D option (1): set in a hash-bucket
/// entry's 48-bit address when it points into the read-cache log.
pub const RC_BIT: u64 = 1 << 47;

/// True if `addr` points into the read-cache log.
#[inline]
pub fn is_rc(addr: Address) -> bool {
    addr.raw() & RC_BIT != 0
}

/// Tags a read-cache log address for storage in the index.
#[inline]
pub fn rc_tag(addr: Address) -> Address {
    debug_assert!(addr.raw() & RC_BIT == 0, "cache log exceeded 2^47 bytes");
    Address::new(addr.raw() | RC_BIT)
}

/// Recovers the read-cache log address from a tagged index address.
#[inline]
pub fn rc_untag(addr: Address) -> Address {
    Address::new(addr.raw() & !RC_BIT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trip() {
        let a = Address::new(0x1234);
        assert!(!is_rc(a));
        let t = rc_tag(a);
        assert!(is_rc(t));
        assert_eq!(rc_untag(t), a);
        assert_ne!(t, a);
    }
}
