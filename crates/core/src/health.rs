//! Store-health ladder for graceful degradation under storage failure
//! (DESIGN.md §12).
//!
//! Storage faults the lower layers survive (a quarantined page flush, a
//! sticky WAL failure, a checksum-failed cold read) are reported up to the
//! store, which walks a monotone ladder:
//!
//! ```text
//! Healthy ──▶ Degraded(reason) ──▶ ReadOnly(reason)
//! ```
//!
//! *Degraded* means data loss was observed but new writes are still safe
//! (e.g. one corrupt cold read). *ReadOnly* means the store can no longer
//! make new mutations durable (a page flush was abandoned, the device is
//! full, or the WAL is dead): reads and scans keep serving whatever is
//! still intact, while mutations (`Session::upsert` and friends — fallible
//! by default) are refused with `OpError::ReadOnly`. The ladder never walks
//! back down — a store that lost durability once cannot silently promise
//! it again; recover from the last good checkpoint instead.

use faster_hlog::LogFault;
use faster_storage::IoError;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Why the store left the `Healthy` state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthReason {
    /// A log page's flush exhausted its retry budget (or hit a permanent
    /// device error) and the page was quarantined: records on it are lost.
    FlushQuarantine { page: u64 },
    /// The device reported out of space; nothing further can be persisted.
    DeviceFull,
    /// A WAL append or group commit failed; per-operation durability is
    /// gone even though the append may have been acked in memory.
    WalFailed,
    /// A cold read's bytes failed checksum verification at this log offset.
    CorruptRead { offset: u64 },
}

impl HealthReason {
    /// Stable lowercase token for metrics text/JSON output.
    pub fn token(&self) -> &'static str {
        match self {
            HealthReason::FlushQuarantine { .. } => "flush_quarantine",
            HealthReason::DeviceFull => "device_full",
            HealthReason::WalFailed => "wal_failed",
            HealthReason::CorruptRead { .. } => "corrupt_read",
        }
    }
}

impl std::fmt::Display for HealthReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthReason::FlushQuarantine { page } => {
                write!(f, "log page {page} quarantined after flush-retry exhaustion")
            }
            HealthReason::DeviceFull => write!(f, "storage device full"),
            HealthReason::WalFailed => write!(f, "write-ahead log failed"),
            HealthReason::CorruptRead { offset } => {
                write!(f, "corrupt data read at log offset {offset}")
            }
        }
    }
}

/// Where the store sits on the degradation ladder (monotone; see module
/// docs). Returned by `FasterKv::health`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreHealth {
    /// No storage fault observed.
    Healthy,
    /// A fault lost (or may have lost) existing data, but new mutations are
    /// still durable — e.g. an isolated corrupt cold read.
    Degraded(HealthReason),
    /// New mutations can no longer be made durable. Reads and scans still
    /// serve; `Session::upsert`/`rmw`/`delete` are refused with
    /// `OpError::ReadOnly`; maintenance suspends compaction and
    /// checkpointing.
    ReadOnly(HealthReason),
}

/// Typed error surfaced by the fallible mutation API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store degraded to read-only; the reason names the fault.
    ReadOnly(HealthReason),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ReadOnly(r) => write!(f, "store is read-only: {r}"),
        }
    }
}

impl std::error::Error for StoreError {}

const HEALTHY: u8 = 0;
const DEGRADED: u8 = 1;
const READ_ONLY: u8 = 2;

/// Lock-free-readable health state. Mutation hot paths check
/// [`HealthCell::is_read_only`] (one atomic load); the reason travels
/// under a mutex taken only on faults and full snapshots.
pub(crate) struct HealthCell {
    state: AtomicU8,
    reason: Mutex<Option<HealthReason>>,
}

impl HealthCell {
    pub fn new() -> Self {
        Self { state: AtomicU8::new(HEALTHY), reason: Mutex::new(None) }
    }

    /// True once the store has reached the read-only rung.
    #[inline]
    pub fn is_read_only(&self) -> bool {
        self.state.load(Ordering::SeqCst) == READ_ONLY
    }

    /// The full ladder position with its reason.
    pub fn get(&self) -> StoreHealth {
        let reason = self.reason.lock().unwrap();
        match self.state.load(Ordering::SeqCst) {
            HEALTHY => StoreHealth::Healthy,
            DEGRADED => {
                StoreHealth::Degraded(reason.clone().expect("degraded state carries a reason"))
            }
            _ => StoreHealth::ReadOnly(reason.clone().expect("read-only state carries a reason")),
        }
    }

    /// `(state, reason-token)` for the metrics snapshot.
    pub fn tokens(&self) -> (u64, String) {
        let reason = self.reason.lock().unwrap();
        let state = self.state.load(Ordering::SeqCst) as u64;
        (state, reason.as_ref().map_or("none", |r| r.token()).to_string())
    }

    /// The read-only error this store's mutations should return, if any.
    pub fn read_only_error(&self) -> Option<StoreError> {
        if !self.is_read_only() {
            return None;
        }
        let reason = self.reason.lock().unwrap();
        Some(StoreError::ReadOnly(reason.clone().expect("read-only state carries a reason")))
    }

    pub fn degrade(&self, reason: HealthReason) {
        self.escalate(DEGRADED, reason);
    }

    pub fn to_read_only(&self, reason: HealthReason) {
        self.escalate(READ_ONLY, reason);
    }

    /// Maps a HybridLog fault onto the ladder (installed as the log's fault
    /// hook): a quarantined page means lost mutations — read-only; a single
    /// corrupt read loses existing data but new writes are still durable —
    /// degraded.
    pub fn on_log_fault(&self, fault: &LogFault) {
        match fault {
            LogFault::PageQuarantined { page, error } => {
                let reason = match error {
                    IoError::Full { .. } => HealthReason::DeviceFull,
                    _ => HealthReason::FlushQuarantine { page: *page },
                };
                self.to_read_only(reason);
            }
            LogFault::CorruptRead { offset } => {
                self.degrade(HealthReason::CorruptRead { offset: *offset });
            }
        }
    }

    /// Monotone step: the state only rises, and the reason recorded is the
    /// first fault that reached the new rung (later, lesser faults don't
    /// overwrite it). State and reason move together under the lock so a
    /// snapshot never pairs a state with another fault's reason.
    fn escalate(&self, level: u8, reason: HealthReason) {
        let mut slot = self.reason.lock().unwrap();
        let old = self.state.fetch_max(level, Ordering::SeqCst);
        if old < level {
            *slot = Some(reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_and_keeps_first_reason_per_rung() {
        let cell = HealthCell::new();
        assert_eq!(cell.get(), StoreHealth::Healthy);
        assert!(!cell.is_read_only());
        assert!(cell.read_only_error().is_none());

        cell.degrade(HealthReason::CorruptRead { offset: 64 });
        assert_eq!(cell.get(), StoreHealth::Degraded(HealthReason::CorruptRead { offset: 64 }));

        // A second degradation doesn't overwrite the first reason.
        cell.degrade(HealthReason::CorruptRead { offset: 128 });
        assert_eq!(cell.get(), StoreHealth::Degraded(HealthReason::CorruptRead { offset: 64 }));

        cell.to_read_only(HealthReason::DeviceFull);
        assert!(cell.is_read_only());
        assert_eq!(cell.get(), StoreHealth::ReadOnly(HealthReason::DeviceFull));
        assert_eq!(cell.tokens(), (2, "device_full".to_string()));
        assert_eq!(cell.read_only_error(), Some(StoreError::ReadOnly(HealthReason::DeviceFull)));

        // Never walks back down.
        cell.degrade(HealthReason::CorruptRead { offset: 999 });
        assert_eq!(cell.get(), StoreHealth::ReadOnly(HealthReason::DeviceFull));
    }

    #[test]
    fn log_faults_map_to_the_expected_rungs() {
        let cell = HealthCell::new();
        cell.on_log_fault(&LogFault::CorruptRead { offset: 4096 });
        assert_eq!(cell.get(), StoreHealth::Degraded(HealthReason::CorruptRead { offset: 4096 }));

        cell.on_log_fault(&LogFault::PageQuarantined {
            page: 3,
            error: IoError::Failed("dead device".into()),
        });
        assert_eq!(cell.get(), StoreHealth::ReadOnly(HealthReason::FlushQuarantine { page: 3 }));

        let full = HealthCell::new();
        full.on_log_fault(&LogFault::PageQuarantined {
            page: 9,
            error: IoError::Full { offset: 1 << 20 },
        });
        assert_eq!(full.get(), StoreHealth::ReadOnly(HealthReason::DeviceFull));
    }
}
