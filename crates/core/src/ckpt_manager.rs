//! Atomic multi-generation checkpoint commit with a recovery fallback chain.
//!
//! [`FasterKv::checkpoint`] produces a blob (§6.5); persisting that blob used
//! to be the caller's problem, and an in-place overwrite of "the" checkpoint
//! file dies to a crash mid-write: the torn newest blob fails
//! [`CheckpointData::from_bytes`] and nothing older survives. This module
//! makes checkpoint persistence atomic under arbitrary crash points and keeps
//! a configurable chain of older *generations* to fall back to.
//!
//! ## Device layout
//!
//! The manager owns a device (separate from the log device) laid out as:
//!
//! ```text
//! offset 0        : manifest slot 0   (MANIFEST_SLOT_SIZE bytes)
//! offset 4096     : manifest slot 1   (MANIFEST_SLOT_SIZE bytes)
//! offset 8192 ... : generation blobs  (sector-aligned, free-listed)
//! ```
//!
//! ## Commit protocol (crash-atomic, no rename dependence)
//!
//! 1. Ensure the log itself is durable through `t2`
//!    ([`FasterKv::checkpoint_durable`] — a flush that silently failed must
//!    not produce a committed generation).
//! 2. Write the new generation's blob into fresh (or recycled) blob space —
//!    never over a live generation — and issue a flush barrier.
//! 3. Write the updated manifest (all retained generations + the new one,
//!    with seqno `n+1`) to slot `(n+1) % 2` — the slot the *previous* commit
//!    did **not** write — and issue a flush barrier.
//! 4. Only then update in-memory state and recycle blob space of generations
//!    that retention dropped.
//!
//! A crash before step 3 completes leaves the previous manifest (and every
//! generation it lists) fully intact: the torn slot simply loses the
//! checksum arbitration. A crash after step 3's write persists is a
//! committed generation. There is no window in which both slots are torn
//! unless the device loses acknowledged writes, which is outside the fault
//! model (and the paper's).
//!
//! ## Recovery arbitration (last-valid-wins)
//!
//! Read both slots; a slot is valid iff it reads back, carries the manifest
//! magic, and checksum-verifies. Among valid slots the higher seqno wins.
//! Candidate generations are then tried newest-first (deduplicated across
//! slots); the first whose blob reads back, checksum-matches its manifest
//! record, and parses via [`CheckpointData::from_bytes`] is the recovery
//! point. Anything newer is reported as skipped ([`RecoveredGeneration`])
//! and dropped from the chain. If nothing survives:
//! [`CheckpointError::NoValidGeneration`].
//!
//! ## GC interaction
//!
//! Falling back to generation G replays the log from `G.t1`, and reads may
//! touch anything at or above `G.begin` — so the log must never be truncated
//! above the `begin` of the *oldest retained* generation. Use
//! [`CheckpointManager::gc_truncate`] instead of raw
//! [`FasterKv::truncate_until`]; it clamps to
//! [`CheckpointManager::safe_truncation_bound`] and debug-asserts the
//! invariant for every retained generation.

use crate::checkpoint::{CheckpointData, CheckpointError};
use crate::{FasterKv, FasterKvConfig, Functions};
use faster_storage::{Device, IoError};
use faster_util::{Address, Pod};
use std::sync::{Arc, Mutex};

const MANIFEST_MAGIC: u64 = u64::from_le_bytes(*b"FASTERMF");
/// Size reserved for each of the two manifest slots.
pub const MANIFEST_SLOT_SIZE: u64 = 4096;
/// First byte of the generation-blob region.
pub const BLOB_REGION_BASE: u64 = 2 * MANIFEST_SLOT_SIZE;
const GEN_REC_SIZE: usize = 64;
const MANIFEST_HEADER: usize = 24; // magic | seqno | count
/// Hard cap on retained generations: what fits in one manifest slot.
pub const MAX_GENERATIONS: usize =
    (MANIFEST_SLOT_SIZE as usize - MANIFEST_HEADER - 8) / GEN_REC_SIZE;

/// Retention policy for the generation chain.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointConfig {
    /// How many committed generations to keep recoverable (≥ 1, ≤
    /// [`MAX_GENERATIONS`]).
    pub retain: usize,
    /// Apply retention inside each commit (the dropped generation leaves the
    /// manifest in the same atomic slot write that adds the new one). With
    /// `false`, superseded generations accumulate until [`prune`] is called
    /// from a maintenance thread.
    ///
    /// [`prune`]: CheckpointManager::prune
    pub auto_prune: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self { retain: 4, auto_prune: true }
    }
}

/// One committed generation as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationMeta {
    /// Monotonic generation number (never reused).
    pub gen: u64,
    /// Byte offset of the blob on the checkpoint device.
    pub blob_offset: u64,
    /// Exact blob length in bytes.
    pub blob_len: u64,
    /// `hash_bytes` of the blob, recorded at commit; recovery re-verifies.
    pub blob_checksum: u64,
    /// Copied from the [`CheckpointData`] so GC clamping and fallback
    /// planning never need to read the blob.
    pub t1: Address,
    pub t2: Address,
    pub begin: Address,
    /// WAL truncation point: every WAL record with LSN ≤ this is already
    /// reflected in the generation's state, so recovery to this generation
    /// replays only the WAL suffix strictly above it. 0 = no WAL coverage
    /// (LSNs start at 1), meaning replay the whole surviving WAL.
    pub wal_lsn: u64,
}

/// What recovery arbitration decided.
#[derive(Debug, Clone)]
pub struct RecoveredGeneration {
    /// The generation recovered to.
    pub gen: u64,
    /// Its checkpoint payload, already parsed and verified.
    pub data: CheckpointData,
    /// WAL truncation point this generation recorded at commit: recovery
    /// replays only WAL records with LSN strictly above it (0 = replay
    /// everything / the store ran without a WAL).
    pub wal_lsn: u64,
    /// Newer generations that were visible but unrecoverable, newest first,
    /// with why each was skipped.
    pub skipped: Vec<(u64, CheckpointError)>,
    /// Total distinct generations visible across both manifest slots.
    pub candidates: usize,
}

impl RecoveredGeneration {
    /// Number of fallback steps taken (0 = newest generation recovered).
    pub fn fallbacks(&self) -> usize {
        self.skipped.len()
    }
}

struct ManagerState {
    /// Seqno of the last committed manifest (0 = none yet).
    seqno: u64,
    next_gen: u64,
    /// Retained generations, oldest first.
    generations: Vec<GenerationMeta>,
    /// Blob-region high-water mark.
    cursor: u64,
    /// Recycled blob extents `(offset, aligned_len)`, first-fit allocated.
    free: Vec<(u64, u64)>,
    retain: usize,
}

/// Manages checkpoint generations on a dedicated device. See module docs for
/// the commit protocol and arbitration rules.
pub struct CheckpointManager {
    device: Arc<dyn Device>,
    auto_prune: bool,
    state: Mutex<ManagerState>,
}

impl CheckpointManager {
    /// A fresh manager on an empty (or to-be-overwritten) device. Nothing is
    /// written until the first [`commit`](Self::commit).
    pub fn new(device: Arc<dyn Device>, cfg: CheckpointConfig) -> Self {
        Self {
            device,
            auto_prune: cfg.auto_prune,
            state: Mutex::new(ManagerState {
                seqno: 0,
                next_gen: 1,
                generations: Vec::new(),
                cursor: BLOB_REGION_BASE,
                free: Vec::new(),
                retain: cfg.retain.clamp(1, MAX_GENERATIONS),
            }),
        }
    }

    /// The checkpoint device this manager writes to.
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// Retained generations, oldest first.
    pub fn generations(&self) -> Vec<GenerationMeta> {
        self.state.lock().unwrap().generations.clone()
    }

    /// Seqno of the newest committed manifest (0 if none).
    pub fn seqno(&self) -> u64 {
        self.state.lock().unwrap().seqno
    }

    /// Changes the retention target; takes effect at the next commit or
    /// [`prune`](Self::prune).
    pub fn set_retain(&self, retain: usize) {
        self.state.lock().unwrap().retain = retain.clamp(1, MAX_GENERATIONS);
    }

    /// Checkpoints `store` and atomically commits the result as a new
    /// generation. `Ok(gen)` means the generation is durable: the log is
    /// flushed through its `t2`, the blob is flushed, and the manifest write
    /// was acknowledged behind a flush barrier. On `Err` the previous
    /// generation chain is untouched (on disk and in memory).
    pub fn checkpoint_store<K: Pod + Eq, V: Pod, F: Functions<K, V>>(
        &self,
        store: &FasterKv<K, V, F>,
    ) -> Result<u64, CheckpointError> {
        // WAL cutoff, sampled BEFORE the fuzzy checkpoint begins: any op
        // appended at or below the cutoff was applied to memory first and
        // is therefore below the checkpoint's t2 — fully captured. Ops
        // racing the checkpoint land above the cutoff and get replayed on
        // recovery; a racer may be both captured and replayed, which is
        // safe because WAL records are idempotent post-images (§10).
        let wal_cutoff = store.wal().map(|w| w.last_appended_lsn()).unwrap_or(0);
        let data = store.checkpoint_durable()?;
        // GC/checkpoint invariant at birth: the log frontier cannot already
        // be above the begin this generation records.
        debug_assert!(
            store.log().begin_address() <= data.begin,
            "log frontier above a generation's begin at commit time"
        );
        let gen = self.commit_with_wal_lsn(&data, wal_cutoff)?;
        // Reclaim WAL segments no retained generation can ever replay:
        // recovery falls back at most to the oldest retained generation,
        // which replays strictly above its own recorded cutoff.
        if let Some(wal) = store.wal() {
            if let Some(min) = self.generations().iter().map(|g| g.wal_lsn).min() {
                if min > 0 {
                    wal.truncate_below_lsn(min);
                }
            }
        }
        Ok(gen)
    }

    /// Commits an already-taken checkpoint as a new generation. See
    /// [`checkpoint_store`](Self::checkpoint_store) for the durability
    /// contract; this variant trusts the caller that the log is durable
    /// through `data.t2`.
    pub fn commit(&self, data: &CheckpointData) -> Result<u64, CheckpointError> {
        self.commit_with_wal_lsn(data, 0)
    }

    /// Like [`commit`](Self::commit), recording `wal_lsn` as the WAL
    /// truncation point in the same atomic manifest slot write: recovery to
    /// this generation replays only WAL records strictly above `wal_lsn`.
    pub fn commit_with_wal_lsn(
        &self,
        data: &CheckpointData,
        wal_lsn: u64,
    ) -> Result<u64, CheckpointError> {
        let blob = data.to_bytes();
        let blob_len = blob.len() as u64;
        let blob_checksum = faster_util::hash_bytes(&blob);
        let sector = self.device.sector_size() as u64;

        let mut st = self.state.lock().unwrap();
        let offset = st.alloc_blob(blob_len, sector);
        if let Err(e) = write_blocking(&self.device, offset, blob) {
            st.free_blob(offset, blob_len, sector);
            return Err(e);
        }
        // A failed barrier means the blob's durability is unknown: the
        // generation must not reach the manifest, and the previous chain
        // stays untouched on disk and in memory.
        if let Err(e) = self.device.flush_barrier() {
            st.free_blob(offset, blob_len, sector);
            return Err(CheckpointError::Io(e));
        }

        let gen = st.next_gen;
        let mut gens = st.generations.clone();
        gens.push(GenerationMeta {
            gen,
            blob_offset: offset,
            blob_len,
            blob_checksum,
            t1: data.t1,
            t2: data.t2,
            begin: data.begin,
            wal_lsn,
        });
        // Retention rides in the same atomic manifest write: the slot flip
        // that commits the new generation also drops the superseded one.
        let retain = if self.auto_prune { st.retain } else { MAX_GENERATIONS };
        let dropped: Vec<GenerationMeta> =
            if gens.len() > retain { gens.drain(..gens.len() - retain).collect() } else { Vec::new() };

        let seqno = st.seqno + 1;
        let manifest = encode_manifest(seqno, &gens);
        if let Err(e) = write_blocking(&self.device, (seqno % 2) * MANIFEST_SLOT_SIZE, manifest) {
            st.free_blob(offset, blob_len, sector);
            return Err(e);
        }
        // Until this barrier succeeds the manifest write may not be durable:
        // the commit cannot be acknowledged, so in-memory state is not
        // advanced. (A crash may still have persisted the slot — recovery
        // arbitration handles that, same as a crash between write and ack.)
        if let Err(e) = self.device.flush_barrier() {
            st.free_blob(offset, blob_len, sector);
            return Err(CheckpointError::Io(e));
        }

        st.seqno = seqno;
        st.next_gen = gen + 1;
        st.generations = gens;
        for d in &dropped {
            st.free_blob(d.blob_offset, d.blob_len, sector);
        }
        Ok(gen)
    }

    /// Drops generations beyond the retention target with one manifest
    /// commit, recycling their blob space. Returns how many were dropped.
    /// Safe to call from a background maintenance thread.
    pub fn prune(&self) -> Result<usize, CheckpointError> {
        let sector = self.device.sector_size() as u64;
        let mut st = self.state.lock().unwrap();
        if st.generations.len() <= st.retain {
            return Ok(0);
        }
        let drop_n = st.generations.len() - st.retain;
        let survivors = st.generations[drop_n..].to_vec();
        let seqno = st.seqno + 1;
        let manifest = encode_manifest(seqno, &survivors);
        write_blocking(&self.device, (seqno % 2) * MANIFEST_SLOT_SIZE, manifest)?;
        self.device.flush_barrier().map_err(CheckpointError::Io)?;
        st.seqno = seqno;
        let dropped: Vec<GenerationMeta> = st.generations.drain(..drop_n).collect();
        st.generations = survivors;
        for d in &dropped {
            st.free_blob(d.blob_offset, d.blob_len, sector);
        }
        Ok(drop_n)
    }

    /// Reads and fully verifies one retained generation's blob.
    pub fn load_generation(&self, gen: u64) -> Result<CheckpointData, CheckpointError> {
        let meta = self
            .generations()
            .into_iter()
            .find(|g| g.gen == gen)
            .ok_or(CheckpointError::NoValidGeneration)?;
        load_blob(&self.device, &meta)
    }

    /// Walks the manifest slots on `device` and recovers the newest fully
    /// valid generation (module docs: arbitration). The returned manager
    /// continues the seqno/generation sequence, with the chain truncated to
    /// the recovered generation and older.
    pub fn recover_latest(
        device: Arc<dyn Device>,
        cfg: CheckpointConfig,
    ) -> Result<(Self, RecoveredGeneration), CheckpointError> {
        let sector = device.sector_size() as u64;
        let mut slots: Vec<(u64, Vec<GenerationMeta>)> = Vec::new();
        for slot in 0..2u64 {
            let bytes = match read_blocking(&device, slot * MANIFEST_SLOT_SIZE, MANIFEST_SLOT_SIZE as usize)
            {
                Ok(b) => b,
                Err(_) => continue, // unreadable slot = invalid slot
            };
            if let Ok(parsed) = decode_manifest(&bytes) {
                slots.push(parsed);
            }
        }
        slots.sort_by_key(|s| std::cmp::Reverse(s.0));
        let max_seqno = slots.first().map(|s| s.0).unwrap_or(0);

        // Merge candidates across slots, newer slot's record wins per gen.
        let mut candidates: Vec<GenerationMeta> = Vec::new();
        for (_seq, gens) in &slots {
            for m in gens {
                if !candidates.iter().any(|c| c.gen == m.gen) {
                    candidates.push(*m);
                }
            }
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.gen)); // newest first

        // Blob space must never be handed out below anything any surviving
        // slot references, recoverable or not.
        let mut cursor = BLOB_REGION_BASE;
        let mut max_gen = 0u64;
        for c in &candidates {
            let alen = align_up(c.blob_len, sector);
            cursor = cursor.max(c.blob_offset + alen);
            max_gen = max_gen.max(c.gen);
        }

        let mut skipped: Vec<(u64, CheckpointError)> = Vec::new();
        let total = candidates.len();
        for (i, meta) in candidates.iter().enumerate() {
            match load_blob(&device, meta) {
                Ok(data) => {
                    // Chain = the recovered generation and everything older.
                    let mut retained: Vec<GenerationMeta> =
                        candidates[i..].iter().rev().copied().collect();
                    retained.sort_by_key(|g| g.gen);
                    let mgr = Self {
                        device,
                        auto_prune: cfg.auto_prune,
                        state: Mutex::new(ManagerState {
                            seqno: max_seqno,
                            next_gen: max_gen + 1,
                            generations: retained,
                            cursor,
                            free: Vec::new(),
                            retain: cfg.retain.clamp(1, MAX_GENERATIONS),
                        }),
                    };
                    let rec = RecoveredGeneration {
                        gen: meta.gen,
                        data,
                        wal_lsn: meta.wal_lsn,
                        skipped,
                        candidates: total,
                    };
                    return Ok((mgr, rec));
                }
                Err(e) => skipped.push((meta.gen, e)),
            }
        }
        Err(CheckpointError::NoValidGeneration)
    }

    /// The highest log address GC may truncate to without orphaning any
    /// retained generation: the minimum `begin` across the chain. `None`
    /// when no generation is retained (GC unconstrained).
    pub fn safe_truncation_bound(&self) -> Option<Address> {
        let st = self.state.lock().unwrap();
        st.generations.iter().map(|g| g.begin.raw()).min().map(Address::new)
    }

    /// Checkpoint-aware log GC: truncates `store`'s log at `addr`, clamped
    /// so every retained generation stays replayable. Returns the address
    /// actually truncated to.
    pub fn gc_truncate<K: Pod + Eq, V: Pod, F: Functions<K, V>>(
        &self,
        store: &FasterKv<K, V, F>,
        addr: Address,
    ) -> Address {
        let clamped = match self.safe_truncation_bound() {
            Some(bound) => Address::new(addr.raw().min(bound.raw())),
            None => addr,
        };
        store.truncate_until(clamped);
        #[cfg(debug_assertions)]
        {
            let frontier = store.log().begin_address();
            for g in self.generations() {
                debug_assert!(
                    frontier <= g.begin,
                    "GC frontier {frontier:?} above retained generation {}'s begin {:?}",
                    g.gen,
                    g.begin
                );
            }
        }
        clamped
    }
}

/// What [`recover_store`] hands back: the rebuilt store, a manager that
/// continues the generation sequence, and the arbitration verdict.
pub type RecoveredStore<K, V, F> = (FasterKv<K, V, F>, CheckpointManager, RecoveredGeneration);

/// Recover a store end-to-end: arbitrate the checkpoint device, then rebuild
/// the store over the surviving log device from the recovered generation.
pub fn recover_store<K: Pod + Eq, V: Pod, F: Functions<K, V>>(
    store_cfg: FasterKvConfig,
    functions: F,
    log_device: Arc<dyn Device>,
    ckpt_device: Arc<dyn Device>,
    ckpt_cfg: CheckpointConfig,
) -> Result<RecoveredStore<K, V, F>, CheckpointError> {
    let (mgr, rec) = CheckpointManager::recover_latest(ckpt_device, ckpt_cfg)?;
    let store = FasterKv::recover(store_cfg, functions, log_device, &rec.data);
    Ok((store, mgr, rec))
}

/// What [`recover_store_with_wal`] hands back.
pub struct RecoveredStoreWithWal<K: Pod, V: Pod, F: Functions<K, V>> {
    /// The rebuilt store, WAL attached and accepting new appends.
    pub store: FasterKv<K, V, F>,
    /// Manager continuing the generation sequence.
    pub manager: CheckpointManager,
    /// The arbitration verdict; `None` when no generation had ever
    /// committed (the store recovered from the WAL alone).
    pub generation: Option<RecoveredGeneration>,
    /// WAL records replayed on top of the recovered checkpoint.
    pub wal_replayed: usize,
}

/// Recover a WAL-enabled store end-to-end (DESIGN.md §10): arbitrate the
/// checkpoint device to the newest valid generation (or an empty store when
/// none ever committed), rebuild the store over the surviving log device,
/// then replay the WAL suffix — every valid record with LSN strictly above
/// the recovered generation's cutoff, in LSN order, stopping at the first
/// torn or checksum-failing record. The resumed WAL is attached only after
/// replay, so replayed mutations never re-append. `store_cfg.wal` must be
/// set.
pub fn recover_store_with_wal<K: Pod + Eq, V: Pod, F: Functions<K, V>>(
    store_cfg: FasterKvConfig,
    functions: F,
    log_device: Arc<dyn Device>,
    ckpt_device: Arc<dyn Device>,
    wal_device: Arc<dyn Device>,
    ckpt_cfg: CheckpointConfig,
) -> Result<RecoveredStoreWithWal<K, V, F>, CheckpointError> {
    let wal_cfg = store_cfg.wal.expect("recover_store_with_wal requires cfg.wal");
    // Checkpoint arbitration first (fallback chain); a store that never
    // committed a generation recovers to empty and replays the whole WAL.
    let (manager, generation) =
        match CheckpointManager::recover_latest(ckpt_device.clone(), ckpt_cfg) {
            Ok((mgr, rec)) => (mgr, Some(rec)),
            Err(CheckpointError::NoValidGeneration) => {
                (CheckpointManager::new(ckpt_device, ckpt_cfg), None)
            }
            Err(e) => return Err(e),
        };
    let store = match &generation {
        Some(rec) => FasterKv::recover(store_cfg, functions, log_device, &rec.data),
        None => FasterKv::build(store_cfg, functions, log_device, None),
    };
    let skip = generation.as_ref().map(|r| r.wal_lsn).unwrap_or(0);
    let (wal, records) = faster_wal::Wal::recover(
        wal_device,
        wal_cfg,
        store.metrics_registry().wal.clone(),
        skip,
    );
    let wal_replayed = records.len();
    {
        // Replay through an ordinary session — the WAL is not attached
        // yet, so nothing re-appends. Unknown payloads (codec skew) are
        // skipped rather than trusted.
        let session = store.start_session();
        for r in records {
            if let Some(op) = crate::walrec::decode::<K, V>(&r.payload) {
                session.replay_wal_op(op);
            }
        }
        session.complete_pending(true);
    }
    store
        .inner
        .wal
        .set(wal)
        .unwrap_or_else(|_| unreachable!("freshly built store already had a WAL"));
    Ok(RecoveredStoreWithWal { store, manager, generation, wal_replayed })
}

impl ManagerState {
    fn alloc_blob(&mut self, len: u64, sector: u64) -> u64 {
        let alen = align_up(len, sector);
        if let Some(i) = self.free.iter().position(|&(_, flen)| flen >= alen) {
            let (off, flen) = self.free[i];
            if flen == alen {
                self.free.remove(i);
            } else {
                self.free[i] = (off + alen, flen - alen);
            }
            return off;
        }
        let off = self.cursor;
        self.cursor += alen;
        off
    }

    fn free_blob(&mut self, off: u64, len: u64, sector: u64) {
        self.free.push((off, align_up(len, sector)));
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

/// Serializes a manifest into a full slot-sized buffer:
/// `magic | seqno | count | count × GenRec | checksum | zero padding`.
/// The checksum covers every byte before it.
fn encode_manifest(seqno: u64, gens: &[GenerationMeta]) -> Vec<u8> {
    assert!(gens.len() <= MAX_GENERATIONS, "generation count exceeds manifest capacity");
    let mut out = Vec::with_capacity(MANIFEST_SLOT_SIZE as usize);
    out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
    out.extend_from_slice(&seqno.to_le_bytes());
    out.extend_from_slice(&(gens.len() as u64).to_le_bytes());
    for g in gens {
        out.extend_from_slice(&g.gen.to_le_bytes());
        out.extend_from_slice(&g.blob_offset.to_le_bytes());
        out.extend_from_slice(&g.blob_len.to_le_bytes());
        out.extend_from_slice(&g.blob_checksum.to_le_bytes());
        out.extend_from_slice(&g.t1.raw().to_le_bytes());
        out.extend_from_slice(&g.t2.raw().to_le_bytes());
        out.extend_from_slice(&g.begin.raw().to_le_bytes());
        out.extend_from_slice(&g.wal_lsn.to_le_bytes());
    }
    let sum = faster_util::hash_bytes(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out.resize(MANIFEST_SLOT_SIZE as usize, 0);
    out
}

/// Parses one manifest slot. Any structural or checksum problem invalidates
/// the whole slot — arbitration then relies on the other one.
fn decode_manifest(bytes: &[u8]) -> Result<(u64, Vec<GenerationMeta>), CheckpointError> {
    if bytes.len() < MANIFEST_HEADER + 8 {
        return Err(CheckpointError::Torn);
    }
    let rd = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
    if rd(0) != MANIFEST_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let seqno = rd(8);
    let count = rd(16) as usize;
    if count > MAX_GENERATIONS {
        return Err(CheckpointError::Torn);
    }
    let body_len = MANIFEST_HEADER + count * GEN_REC_SIZE;
    if bytes.len() < body_len + 8 {
        return Err(CheckpointError::Torn);
    }
    if faster_util::hash_bytes(&bytes[..body_len]) != rd(body_len) {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let mut gens = Vec::with_capacity(count);
    for i in 0..count {
        let base = MANIFEST_HEADER + i * GEN_REC_SIZE;
        gens.push(GenerationMeta {
            gen: rd(base),
            blob_offset: rd(base + 8),
            blob_len: rd(base + 16),
            blob_checksum: rd(base + 24),
            t1: Address::new(rd(base + 32) & Address::MASK),
            t2: Address::new(rd(base + 40) & Address::MASK),
            begin: Address::new(rd(base + 48) & Address::MASK),
            wal_lsn: rd(base + 56),
        });
    }
    Ok((seqno, gens))
}

/// Reads one generation's blob and verifies it end to end: manifest
/// checksum over the raw bytes, then full [`CheckpointData::from_bytes`].
fn load_blob(device: &Arc<dyn Device>, meta: &GenerationMeta) -> Result<CheckpointData, CheckpointError> {
    let bytes = read_blocking(device, meta.blob_offset, meta.blob_len as usize)?;
    if faster_util::hash_bytes(&bytes) != meta.blob_checksum {
        return Err(CheckpointError::ChecksumMismatch);
    }
    CheckpointData::from_bytes(&bytes)
}

fn write_blocking(device: &Arc<dyn Device>, offset: u64, data: Vec<u8>) -> Result<(), CheckpointError> {
    let (tx, rx) = std::sync::mpsc::channel();
    device.write_async(
        offset,
        data,
        Box::new(move |r| {
            let _ = tx.send(r);
        }),
    );
    match rx.recv() {
        Ok(r) => r.map_err(CheckpointError::Io),
        Err(_) => Err(CheckpointError::Io(IoError::Failed("write callback dropped".into()))),
    }
}

fn read_blocking(
    device: &Arc<dyn Device>,
    offset: u64,
    len: usize,
) -> Result<Vec<u8>, CheckpointError> {
    let (tx, rx) = std::sync::mpsc::channel();
    device.read_async(
        offset,
        len,
        Box::new(move |r| {
            let _ = tx.send(r);
        }),
    );
    match rx.recv() {
        Ok(r) => r.map_err(CheckpointError::Io),
        Err(_) => Err(CheckpointError::Io(IoError::Failed("read callback dropped".into()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faster_index::IndexCheckpoint;
    use faster_storage::MemDevice;

    fn data(t1: u64, t2: u64, begin: u64) -> CheckpointData {
        CheckpointData {
            t1: Address::new(t1),
            t2: Address::new(t2),
            begin: Address::new(begin),
            index: IndexCheckpoint {
                k_bits: 8,
                tag_bits: 15,
                entries: vec![(t1, t2), (begin, t2 ^ t1)],
            },
        }
    }

    #[test]
    fn manifest_round_trip_and_corruption() {
        let gens = vec![
            GenerationMeta {
                gen: 3,
                blob_offset: BLOB_REGION_BASE,
                blob_len: 100,
                blob_checksum: 7,
                t1: Address::new(64),
                t2: Address::new(128),
                begin: Address::new(64),
                wal_lsn: 17,
            },
            GenerationMeta {
                gen: 4,
                blob_offset: BLOB_REGION_BASE + 512,
                blob_len: 100,
                blob_checksum: 8,
                t1: Address::new(128),
                t2: Address::new(256),
                begin: Address::new(64),
                wal_lsn: 42,
            },
        ];
        let bytes = encode_manifest(9, &gens);
        assert_eq!(bytes.len() as u64, MANIFEST_SLOT_SIZE);
        let (seqno, back) = decode_manifest(&bytes).unwrap();
        assert_eq!(seqno, 9);
        assert_eq!(back, gens);

        // Every single-byte corruption of the checksummed body invalidates
        // the slot (padding bytes are outside the checksum and don't).
        let body_len = MANIFEST_HEADER + gens.len() * GEN_REC_SIZE + 8;
        for i in [0usize, 8, 16, 24, body_len - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_manifest(&bad).is_err(), "corruption at {i} undetected");
        }
        assert!(decode_manifest(&bytes[..40]).is_err());
        // Absurd count must not panic or over-read.
        let mut bad = bytes.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_manifest(&bad).is_err());
    }

    #[test]
    fn commit_then_recover_single_generation() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let mgr = CheckpointManager::new(dev.clone(), CheckpointConfig::default());
        let d1 = data(64, 128, 64);
        assert_eq!(mgr.commit(&d1).unwrap(), 1);
        let (mgr2, rec) =
            CheckpointManager::recover_latest(dev, CheckpointConfig::default()).unwrap();
        assert_eq!(rec.gen, 1);
        assert_eq!(rec.data, d1);
        assert_eq!(rec.fallbacks(), 0);
        assert_eq!(mgr2.generations().len(), 1);
        assert_eq!(mgr2.seqno(), 1);
    }

    #[test]
    fn corrupt_newest_blob_falls_back_one_generation() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let mgr = CheckpointManager::new(dev.clone(), CheckpointConfig::default());
        let d1 = data(64, 128, 64);
        let d2 = data(128, 256, 64);
        mgr.commit(&d1).unwrap();
        mgr.commit(&d2).unwrap();
        // Smash one byte of generation 2's blob directly on the device.
        let g2 = mgr.generations().into_iter().find(|g| g.gen == 2).unwrap();
        let mut blob = read_blocking(&dev, g2.blob_offset, g2.blob_len as usize).unwrap();
        blob[10] ^= 0xff;
        write_blocking(&dev, g2.blob_offset, blob).unwrap();

        let (mgr2, rec) =
            CheckpointManager::recover_latest(dev, CheckpointConfig::default()).unwrap();
        assert_eq!(rec.gen, 1);
        assert_eq!(rec.data, d1);
        assert_eq!(rec.fallbacks(), 1);
        assert_eq!(rec.skipped[0].0, 2);
        assert!(matches!(rec.skipped[0].1, CheckpointError::ChecksumMismatch));
        // The unrecoverable generation left the chain.
        assert_eq!(mgr2.generations().iter().map(|g| g.gen).collect::<Vec<_>>(), vec![1]);
        // But its generation number is not reused.
        let d3 = data(256, 512, 64);
        assert_eq!(mgr2.commit(&d3).unwrap(), 3);
    }

    #[test]
    fn retention_drops_oldest_and_recycles_blob_space() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let mgr = CheckpointManager::new(
            dev.clone(),
            CheckpointConfig { retain: 2, auto_prune: true },
        );
        for i in 1..=4u64 {
            mgr.commit(&data(64 * i, 64 * i + 32, 64)).unwrap();
        }
        let gens: Vec<u64> = mgr.generations().iter().map(|g| g.gen).collect();
        assert_eq!(gens, vec![3, 4]);
        // Blob space of dropped generations is recycled: with equal-size
        // blobs the region never holds more than retain + 1 blobs' worth.
        let g = mgr.generations()[0];
        let alen = align_up(g.blob_len, 512);
        assert!(
            g.blob_offset < BLOB_REGION_BASE + 3 * alen,
            "blob space not recycled: offset {}",
            g.blob_offset
        );
        // Recovery sees only the retained chain.
        let (_m, rec) =
            CheckpointManager::recover_latest(dev, CheckpointConfig::default()).unwrap();
        assert_eq!(rec.gen, 4);
        assert_eq!(rec.candidates, 3); // slot seq 3 lists {2,3}, slot seq 4 lists {3,4}
    }

    #[test]
    fn manual_prune_without_auto() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let mgr = CheckpointManager::new(
            dev.clone(),
            CheckpointConfig { retain: 1, auto_prune: false },
        );
        for i in 1..=3u64 {
            mgr.commit(&data(64 * i, 64 * i + 32, 64)).unwrap();
        }
        assert_eq!(mgr.generations().len(), 3);
        assert_eq!(mgr.prune().unwrap(), 2);
        assert_eq!(mgr.generations().iter().map(|g| g.gen).collect::<Vec<_>>(), vec![3]);
        assert_eq!(mgr.prune().unwrap(), 0);
        let (_m, rec) =
            CheckpointManager::recover_latest(dev, CheckpointConfig::default()).unwrap();
        assert_eq!(rec.gen, 3);
    }

    #[test]
    fn empty_device_reports_no_valid_generation() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let res = CheckpointManager::recover_latest(dev, CheckpointConfig::default());
        assert!(matches!(res, Err(CheckpointError::NoValidGeneration)));
    }

    #[test]
    fn load_generation_verifies_and_finds() {
        let dev: Arc<dyn Device> = MemDevice::new(1);
        let mgr = CheckpointManager::new(dev, CheckpointConfig::default());
        let d1 = data(64, 128, 64);
        let g = mgr.commit(&d1).unwrap();
        assert_eq!(mgr.load_generation(g).unwrap(), d1);
        assert!(matches!(
            mgr.load_generation(99),
            Err(CheckpointError::NoValidGeneration)
        ));
    }
}
