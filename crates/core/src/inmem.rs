//! The §4 pure in-memory key-value store: the FASTER hash index paired with
//! a plain heap record allocator (the paper's jemalloc configuration).
//!
//! Records are individually heap-allocated; the index stores their physical
//! addresses (Fig 1, row "In-Memory": latch-free ✓, larger-than-memory ✗,
//! in-place updates ✓). Every value update is in place. Deletes splice a
//! record out of its hash chain with a CAS on the predecessor's header (or
//! the bucket entry for the first record) and defer the free through an
//! epoch-tagged free list: "A deleted record cannot be immediately returned
//! to the memory allocator because of concurrent updates at the same
//! location. … each thread maintains a thread-local free-list of (epoch,
//! address) pairs. When the epochs become safe, we can safely return them to
//! the allocator."
//!
//! The ABA hazard of CAS-on-physical-pointers is exactly what the epoch
//! deferral eliminates: a pointer a thread observed cannot be freed (and
//! thus cannot be reallocated) until that thread refreshes past the delete's
//! epoch.

use crate::functions::Functions;
use crate::hash_key;
use faster_epoch::{Epoch, EpochGuard};
use faster_index::{CreateOutcome, HashIndex, IndexConfig};
use faster_util::{Address, Pod};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TOMBSTONE_BIT: u64 = 1 << 48;
const ADDR_MASK: u64 = Address::MASK;

/// A heap record: header (prev pointer + tombstone bit), key, value.
#[repr(C)]
struct Node<K, V> {
    header: AtomicU64,
    key: K,
    value: std::cell::UnsafeCell<V>,
}

// Safety: concurrent value access is governed by the Functions contract
// (ValueCell discipline); header is atomic; key immutable after publish.
unsafe impl<K: Pod, V: Pod> Send for Node<K, V> {}
unsafe impl<K: Pod, V: Pod> Sync for Node<K, V> {}

impl<K: Pod, V: Pod> Node<K, V> {
    fn prev(&self) -> u64 {
        self.header.load(Ordering::SeqCst) & ADDR_MASK
    }
    fn is_tombstone(&self) -> bool {
        self.header.load(Ordering::SeqCst) & TOMBSTONE_BIT != 0
    }
}

fn addr_of<K, V>(n: *const Node<K, V>) -> Address {
    let a = n as u64;
    debug_assert!(a & !ADDR_MASK == 0, "heap pointers exceed 48 bits");
    Address::new(a)
}

/// The §4 in-memory store.
pub struct InMemKv<K: Pod, V: Pod, F: Functions<K, V>> {
    inner: Arc<InMemInner<K, V, F>>,
}

struct InMemInner<K: Pod, V: Pod, F: Functions<K, V>> {
    epoch: Epoch,
    index: HashIndex,
    functions: F,
    _marker: std::marker::PhantomData<(K, V)>,
}

impl<K: Pod, V: Pod, F: Functions<K, V>> Clone for InMemKv<K, V, F> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> InMemKv<K, V, F> {
    pub fn new(index: IndexConfig, max_sessions: usize, functions: F) -> Self {
        let epoch = Epoch::new(max_sessions);
        Self {
            inner: Arc::new(InMemInner {
                index: HashIndex::new(index, epoch.clone()),
                epoch,
                functions,
                _marker: std::marker::PhantomData,
            }),
        }
    }

    /// Registers the calling thread.
    pub fn start_session(&self) -> InMemSession<K, V, F> {
        InMemSession {
            store: self.clone(),
            guard: Some(self.inner.epoch.acquire()),
            free_list: RefCell::new(Vec::new()),
            ops: std::cell::Cell::new(0),
        }
    }

    pub fn epoch(&self) -> &Epoch {
        &self.inner.epoch
    }
}

/// A thread's session on the in-memory store, owning the §4 thread-local
/// deferred free list.
pub struct InMemSession<K: Pod, V: Pod, F: Functions<K, V>> {
    store: InMemKv<K, V, F>,
    /// `Some` for the session's whole life; taken (released) first in Drop
    /// so that handing leftover deferred frees to epoch trigger actions
    /// cannot deadlock on this session's own un-refreshed epoch.
    guard: Option<EpochGuard>,
    /// (epoch, record) pairs awaiting safety before the free.
    free_list: RefCell<Vec<(u64, *mut Node<K, V>)>>,
    ops: std::cell::Cell<u32>,
}

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> InMemSession<K, V, F> {
    #[inline]
    fn guard(&self) -> &EpochGuard {
        self.guard.as_ref().expect("guard lives until drop")
    }

    fn maybe_refresh(&self) {
        let n = self.ops.get() + 1;
        self.ops.set(n);
        if n >= 256 {
            self.guard().refresh();
            self.ops.set(0);
            self.drain_free_list();
        }
    }

    /// Batch-amortized [`Self::maybe_refresh`]: counts a whole batch at once.
    #[inline]
    fn batch_tick(&self, n: usize) {
        let total = self.ops.get().saturating_add(n as u32);
        if total >= 256 {
            self.guard().refresh();
            self.ops.set(0);
            self.drain_free_list();
        } else {
            self.ops.set(total);
        }
    }

    /// Frees deferred records whose delete epoch is now safe.
    pub fn drain_free_list(&self) {
        let epoch = &self.store.inner.epoch;
        let mut list = self.free_list.borrow_mut();
        if list.is_empty() {
            return;
        }
        let safe = epoch.safe();
        list.retain(|&(e, ptr)| {
            if e <= safe {
                // Safety: spliced out at epoch e; every thread has moved
                // past e, so no one can still hold this pointer.
                drop(unsafe { Box::from_raw(ptr) });
                false
            } else {
                true
            }
        });
    }

    /// Records pending in the free list (diagnostics).
    pub fn deferred_frees(&self) -> usize {
        self.free_list.borrow().len()
    }

    fn node(&self, addr: Address) -> *mut Node<K, V> {
        addr.raw() as *mut Node<K, V>
    }

    /// Finds the first live record for `key`, returning (predecessor, node).
    /// Predecessor None means the bucket entry points at the node directly.
    fn find(&self, key: &K, head: Address) -> Option<*mut Node<K, V>> {
        let mut cur = head;
        while cur.is_valid() {
            let n = self.node(cur);
            // Safety: epoch-protected; nothing we can observe is freed.
            let node = unsafe { &*n };
            if !node.is_tombstone() && node.key == *key {
                return Some(n);
            }
            cur = Address::new(node.prev());
        }
        None
    }

    /// Point read.
    pub fn read(&self, key: &K, input: &F::Input) -> Option<F::Output> {
        let inner = &self.store.inner;
        let hash = hash_key(key);
        let slot = inner.index.find_tag(hash, Some(self.guard()))?;
        let found = self.find(key, slot.load().address());
        let r = found.map(|n| {
            let node = unsafe { &*n };
            // Everything is mutable in the in-memory store: concurrent read.
            let cell = unsafe {
                &*(node.value.get() as *const crate::functions::ValueCell<V>)
            };
            inner.functions.concurrent_reader(key, input, cell)
        });
        self.maybe_refresh();
        r
    }

    /// Batched point reads: one result per key, in order. Runs the
    /// hash → bucket → record dependent-load chain as a software pipeline
    /// (hash all + prefetch buckets, probe all + prefetch the head records,
    /// then execute), overlapping the cache misses across the batch.
    /// Equivalent to calling [`Self::read`] per key.
    pub fn read_batch(&self, keys: &[K], input: &F::Input) -> Vec<Option<F::Output>> {
        let inner = &self.store.inner;
        let mut hashes = Vec::with_capacity(keys.len());
        for key in keys {
            let h = hash_key(key);
            inner.index.prefetch_bucket(h);
            hashes.push(h);
        }
        let mut heads = Vec::with_capacity(keys.len());
        for &hash in &hashes {
            let head = match inner.index.find_tag(hash, Some(self.guard())) {
                Some(slot) => slot.load().address(),
                None => Address::INVALID,
            };
            if head.is_valid() {
                // The in-memory store's "address" is the heap pointer itself.
                faster_util::prefetch_read(self.node(head) as *const Node<K, V>);
            }
            heads.push(head);
        }
        let mut out = Vec::with_capacity(keys.len());
        for (i, key) in keys.iter().enumerate() {
            let r = self.find(key, heads[i]).map(|n| {
                let node = unsafe { &*n };
                let cell = unsafe {
                    &*(node.value.get() as *const crate::functions::ValueCell<V>)
                };
                inner.functions.concurrent_reader(key, input, cell)
            });
            out.push(r);
        }
        self.batch_tick(keys.len());
        out
    }

    /// Batched blind upserts, equivalent to [`Self::upsert`] per pair.
    pub fn upsert_batch(&self, pairs: &[(K, V)]) {
        let inner = &self.store.inner;
        for (key, _) in pairs {
            inner.index.prefetch_bucket(hash_key(key));
        }
        for (key, value) in pairs {
            self.upsert_one(key, value);
        }
        self.batch_tick(pairs.len());
    }

    /// Batched RMWs, equivalent to [`Self::rmw`] per pair.
    pub fn rmw_batch(&self, ops: &[(K, F::Input)]) {
        let inner = &self.store.inner;
        for (key, _) in ops {
            inner.index.prefetch_bucket(hash_key(key));
        }
        for (key, input) in ops {
            self.rmw_one(key, input);
        }
        self.batch_tick(ops.len());
    }

    /// Blind upsert: in place if present, else splice a new record at the
    /// chain head.
    pub fn upsert(&self, key: &K, value: &V) {
        self.upsert_one(key, value);
        self.maybe_refresh();
    }

    fn upsert_one(&self, key: &K, value: &V) {
        let inner = &self.store.inner;
        let hash = hash_key(key);
        loop {
            match inner.index.find_or_create_tag(hash, Some(self.guard())) {
                CreateOutcome::Found(slot) => {
                    let entry = slot.load();
                    if let Some(n) = self.find(key, entry.address()) {
                        let node = unsafe { &*n };
                        let cell = unsafe {
                            &*(node.value.get() as *const crate::functions::ValueCell<V>)
                        };
                        inner.functions.concurrent_writer(key, value, cell);
                        break;
                    }
                    let node = self.alloc_node(key, entry.address());
                    let f = &inner.functions;
                    f.single_writer(key, value, unsafe { &mut *(*node).value.get() });
                    if slot.cas_address(entry, addr_of(node)).is_err() {
                        // Lost the race: free our unpublished node and retry.
                        drop(unsafe { Box::from_raw(node) });
                        continue;
                    }
                    break;
                }
                CreateOutcome::Created(created) => {
                    let node = self.alloc_node(key, Address::INVALID);
                    let f = &inner.functions;
                    f.single_writer(key, value, unsafe { &mut *(*node).value.get() });
                    created.finalize(addr_of(node));
                    break;
                }
            }
        }
    }

    /// RMW: in place if present (per the user's concurrency discipline, §4:
    /// "one could use fetch-and-add for counters"), else insert the initial
    /// value.
    pub fn rmw(&self, key: &K, input: &F::Input) {
        self.rmw_one(key, input);
        self.maybe_refresh();
    }

    fn rmw_one(&self, key: &K, input: &F::Input) {
        let inner = &self.store.inner;
        let hash = hash_key(key);
        loop {
            match inner.index.find_or_create_tag(hash, Some(self.guard())) {
                CreateOutcome::Found(slot) => {
                    let entry = slot.load();
                    if let Some(n) = self.find(key, entry.address()) {
                        let node = unsafe { &*n };
                        let cell = unsafe {
                            &*(node.value.get() as *const crate::functions::ValueCell<V>)
                        };
                        inner.functions.in_place_updater(key, input, cell);
                        break;
                    }
                    let node = self.alloc_node(key, entry.address());
                    let f = &inner.functions;
                    f.initial_updater(key, input, unsafe { &mut *(*node).value.get() });
                    if slot.cas_address(entry, addr_of(node)).is_err() {
                        drop(unsafe { Box::from_raw(node) });
                        continue;
                    }
                    break;
                }
                CreateOutcome::Created(created) => {
                    let node = self.alloc_node(key, Address::INVALID);
                    let f = &inner.functions;
                    f.initial_updater(key, input, unsafe { &mut *(*node).value.get() });
                    created.finalize(addr_of(node));
                    break;
                }
            }
        }
    }

    /// Delete by logically marking, then splicing out of the chain (§4).
    ///
    /// Phase 1 claims the victim by CASing the tombstone bit into its header
    /// (exactly one deleter wins). Phase 2 physically unlinks it with a CAS
    /// on the predecessor's header — or the bucket entry for a head record;
    /// for a singleton list the entry is "set to 0, making it available for
    /// future inserts". Because the mark and the prev pointer live in the
    /// *same* 64-bit word, an unlink through a concurrently-deleted
    /// (marked) predecessor fails its compare-and-swap and retries against
    /// the live chain — adjacent deletes cannot resurrect an unlinked node
    /// (the classic lock-free-list hazard). The record's memory is freed
    /// only once the delete's epoch is safe.
    pub fn delete(&self, key: &K) -> bool {
        let inner = &self.store.inner;
        let hash = hash_key(key);
        // ---- Phase 1: find and mark the victim.
        let victim: *mut Node<K, V> = 'mark: loop {
            let Some(slot) = inner.index.find_tag(hash, Some(self.guard())) else {
                self.maybe_refresh();
                return false;
            };
            let mut cur = slot.load().address();
            while cur.is_valid() {
                let n = self.node(cur);
                let node = unsafe { &*n };
                let h = node.header.load(Ordering::SeqCst);
                if h & TOMBSTONE_BIT == 0 && node.key == *key {
                    if node
                        .header
                        .compare_exchange(h, h | TOMBSTONE_BIT, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        break 'mark n; // we own the delete
                    }
                    continue 'mark; // header changed under us: re-examine
                }
                if node.key == *key {
                    // Already tombstoned: another deleter owns it.
                    self.maybe_refresh();
                    return false;
                }
                cur = Address::new(h & ADDR_MASK);
            }
            self.maybe_refresh();
            return false;
        };

        // ---- Phase 2: unlink the marked victim (we are its only owner).
        let victim_addr = addr_of(victim);
        let next = Address::new(unsafe { (*victim).prev() });
        'unlink: loop {
            let Some(slot) = inner.index.find_tag(hash, Some(self.guard())) else {
                break; // entry vanished entirely; victim unreachable
            };
            let entry = slot.load();
            // Walk to the victim, tracking the predecessor.
            let mut pred: Option<*mut Node<K, V>> = None;
            let mut cur = entry.address();
            while cur.is_valid() && cur != victim_addr {
                let node = unsafe { &*self.node(cur) };
                pred = Some(self.node(cur));
                cur = Address::new(node.prev());
            }
            if !cur.is_valid() {
                break; // already unreachable (entry replaced wholesale)
            }
            match pred {
                None => {
                    // Head record: repoint (or clear) the bucket entry.
                    let ok = if next.is_valid() {
                        slot.cas_address(entry, next).is_ok()
                    } else {
                        slot.cas_delete(entry).is_ok()
                    };
                    if ok {
                        break;
                    }
                }
                Some(p) => {
                    let pnode = unsafe { &*p };
                    let h = pnode.header.load(Ordering::SeqCst);
                    if h & TOMBSTONE_BIT != 0 {
                        // Predecessor is being deleted; wait for its owner
                        // to unlink it, then retry against the live chain.
                        std::hint::spin_loop();
                        continue 'unlink;
                    }
                    if h & ADDR_MASK != victim_addr.raw() {
                        continue 'unlink; // chain changed: re-walk
                    }
                    let new = (h & !ADDR_MASK) | next.raw();
                    if pnode
                        .header
                        .compare_exchange(h, new, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                }
            }
        }

        // ---- Phase 3: defer the free to epoch safety.
        let e = inner.epoch.current();
        self.free_list.borrow_mut().push((e, victim));
        inner.epoch.bump(); // let the epoch advance past e
        self.maybe_refresh();
        true
    }

    fn alloc_node(&self, key: &K, prev: Address) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            header: AtomicU64::new(prev.raw()),
            key: *key,
            // Safety: V is Pod; zeroed is a valid value and the caller
            // writes it before publishing.
            value: std::cell::UnsafeCell::new(unsafe { std::mem::zeroed() }),
        }))
    }
}

impl<K: Pod, V: Pod, F: Functions<K, V>> Drop for InMemSession<K, V, F> {
    fn drop(&mut self) {
        // Release our own epoch slot FIRST: otherwise queueing the leftover
        // frees below could fill the drain list and spin on an epoch that
        // our own (now idle) guard would block forever.
        drop(self.guard.take());
        let epoch = self.store.inner.epoch.clone();
        let list = std::mem::take(&mut *self.free_list.borrow_mut());
        for (e, ptr) in list {
            let p = ptr as usize;
            epoch.bump_with(move || {
                // Safety: runs once the delete epoch is globally safe (the
                // records were already unreachable when queued).
                drop(unsafe { Box::from_raw(p as *mut Node<K, V>) });
            });
            let _ = e;
        }
    }
}

// NOTE: records still reachable from the index when the store drops are
// intentionally leaked (the paper's store is process-lifetime; a full
// drop-walk would need exclusive access). Tests that care use explicit
// deletes.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::CountStore;
    use std::sync::Barrier;

    fn store() -> InMemKv<u64, u64, CountStore> {
        InMemKv::new(
            IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 },
            32,
            CountStore,
        )
    }

    #[test]
    fn basic_ops() {
        let kv = store();
        let s = kv.start_session();
        assert_eq!(s.read(&1, &0), None);
        s.upsert(&1, &10);
        assert_eq!(s.read(&1, &0), Some(10));
        s.rmw(&1, &5);
        assert_eq!(s.read(&1, &0), Some(15));
        assert!(s.delete(&1));
        assert!(!s.delete(&1));
        assert_eq!(s.read(&1, &0), None);
        s.upsert(&1, &99);
        assert_eq!(s.read(&1, &0), Some(99));
    }

    #[test]
    fn batch_matches_scalar() {
        let kv = store();
        let s = kv.start_session();
        let pairs: Vec<(u64, u64)> = (0..300u64).map(|k| (k, k * 7)).collect();
        s.upsert_batch(&pairs);
        let keys: Vec<u64> = (0..310u64).collect();
        let batched = s.read_batch(&keys, &0);
        for (k, got) in keys.iter().zip(&batched) {
            assert_eq!(*got, s.read(k, &0), "key {k}");
        }
        let incs: Vec<(u64, u64)> = (0..300u64).map(|k| (k, 1)).collect();
        s.rmw_batch(&incs);
        for k in 0..300u64 {
            assert_eq!(s.read(&k, &0), Some(k * 7 + 1), "key {k}");
        }
    }

    #[test]
    fn collision_chains_work() {
        // Tiny index: heavy chaining.
        let kv: InMemKv<u64, u64, CountStore> = InMemKv::new(
            IndexConfig { k_bits: 1, tag_bits: 1, max_resize_chunks: 1 },
            8,
            CountStore,
        );
        let s = kv.start_session();
        for k in 0..200u64 {
            s.upsert(&k, &(k * 3));
        }
        for k in 0..200u64 {
            assert_eq!(s.read(&k, &0), Some(k * 3), "key {k}");
        }
        // Delete every other key; the rest must survive the splices.
        for k in (0..200u64).step_by(2) {
            assert!(s.delete(&k), "delete {k}");
        }
        for k in 0..200u64 {
            let want = if k % 2 == 0 { None } else { Some(k * 3) };
            assert_eq!(s.read(&k, &0), want, "key {k} after deletes");
        }
    }

    #[test]
    fn deferred_frees_drain_after_safety() {
        let kv = store();
        let s = kv.start_session();
        for k in 0..50u64 {
            s.upsert(&k, &k);
        }
        for k in 0..50u64 {
            s.delete(&k);
        }
        assert!(s.deferred_frees() > 0, "frees must be deferred, not immediate");
        // Refresh moves us past the delete epochs; drains free them.
        s.guard().refresh();
        s.drain_free_list();
        assert_eq!(s.deferred_frees(), 0);
    }

    #[test]
    fn concurrent_increments_exact() {
        let kv = store();
        let threads = 8u64;
        let per = 20_000u64;
        let keys = 64u64;
        let barrier = std::sync::Arc::new(Barrier::new(threads as usize));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let kv = kv.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let s = kv.start_session();
                    barrier.wait();
                    let mut rng = faster_util::XorShift64::new(t + 1);
                    for _ in 0..per {
                        s.rmw(&rng.next_below(keys), &1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = kv.start_session();
        let total: u64 = (0..keys).map(|k| s.read(&k, &0).unwrap_or(0)).sum();
        assert_eq!(total, threads * per);
    }

    #[test]
    fn concurrent_delete_insert_churn() {
        let kv = store();
        let threads = 6u64;
        let keys = 16u64;
        let barrier = std::sync::Arc::new(Barrier::new(threads as usize));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let kv = kv.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let s = kv.start_session();
                    barrier.wait();
                    let mut rng = faster_util::XorShift64::new(t * 3 + 1);
                    for _ in 0..10_000 {
                        let k = rng.next_below(keys);
                        match rng.next_below(3) {
                            0 => s.upsert(&k, &(t + 1)),
                            1 => {
                                s.delete(&k);
                            }
                            _ => {
                                if let Some(v) = s.read(&k, &0) {
                                    assert!(v <= threads, "torn value {v}");
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Converged state is readable and sane.
        let s = kv.start_session();
        for k in 0..keys {
            if let Some(v) = s.read(&k, &0) {
                assert!((1..=threads).contains(&v));
            }
        }
    }
}
