//! Store-level unit, semantics, and concurrency tests.

use crate::checkpoint::CheckpointData;
use crate::functions::{BlindKv, CountStore};
use crate::*;
use faster_hlog::HLogConfig;
use faster_storage::MemDevice;
use std::sync::atomic::Ordering;
use std::sync::Barrier;

fn count_store(cfg: FasterKvConfig) -> FasterKv<u64, u64, CountStore> {
    FasterKv::new(cfg, CountStore, MemDevice::new(2))
}

fn read_now<F: Functions<u64, u64, Input = u64, Output = u64>>(
    s: &Session<u64, u64, F>,
    key: u64,
) -> Option<u64> {
    match s.read(&key, &0) {
        Ok(Outcome::Value(v)) => Some(v),
        Err(OpError::NotFound) => None,
        Err(OpError::Pending(id)) => {
            let done = s.complete_pending(true);
            for c in done {
                if c.id == id {
                    return match c.result {
                        Ok(Outcome::Value(v)) => Some(v),
                        Err(OpError::NotFound) => None,
                        other => panic!("pending read {id} completed oddly: {other:?}"),
                    };
                }
            }
            panic!("pending read {id} did not complete");
        }
        other => panic!("read of {key} refused: {other:?}"),
    }
}

fn rmw_now<F: Functions<u64, u64, Input = u64, Output = u64>>(
    s: &Session<u64, u64, F>,
    key: u64,
    input: u64,
) {
    if let Err(OpError::Pending(_)) = s.rmw(&key, &input) {
        s.complete_pending(true);
    }
}

#[test]
fn basic_upsert_read_delete() {
    let store = count_store(FasterKvConfig::small());
    let s = store.start_session();
    assert_eq!(read_now(&s, 1), None);
    s.upsert(&1, &100).unwrap();
    assert_eq!(read_now(&s, 1), Some(100));
    s.upsert(&1, &200).unwrap();
    assert_eq!(read_now(&s, 1), Some(200));
    s.delete(&1).unwrap();
    assert_eq!(read_now(&s, 1), None);
    // Reinsert after delete.
    s.upsert(&1, &300).unwrap();
    assert_eq!(read_now(&s, 1), Some(300));
}

#[test]
fn rmw_creates_and_increments() {
    let store = count_store(FasterKvConfig::small());
    let s = store.start_session();
    rmw_now(&s, 7, 5);
    assert_eq!(read_now(&s, 7), Some(5));
    rmw_now(&s, 7, 3);
    assert_eq!(read_now(&s, 7), Some(8));
    // In-memory RMWs are in-place: log tail should not grow per op.
    let t0 = store.log().tail_address();
    for _ in 0..100 {
        rmw_now(&s, 7, 1);
    }
    assert_eq!(store.log().tail_address(), t0, "in-place updates must not grow the log");
    assert_eq!(read_now(&s, 7), Some(108));
}

#[test]
fn rmw_after_delete_reinitializes() {
    let store = count_store(FasterKvConfig::small());
    let s = store.start_session();
    rmw_now(&s, 9, 10);
    s.delete(&9).unwrap();
    rmw_now(&s, 9, 4);
    assert_eq!(read_now(&s, 9), Some(4), "delete resets the counter");
}

#[test]
fn many_keys_round_trip() {
    let store = count_store(FasterKvConfig::small());
    let s = store.start_session();
    for k in 0..5_000u64 {
        s.upsert(&k, &(k * 2)).unwrap();
    }
    for k in 0..5_000u64 {
        assert_eq!(read_now(&s, k), Some(k * 2), "key {k}");
    }
}

#[test]
fn concurrent_count_store_exactness() {
    // The paper's canonical correctness property: with RMW increments, the
    // total equals the number of increments — across threads, in-place and
    // RCU paths alike.
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 14, buffer_pages: 16, mutable_pages: 12, io_threads: 2 })
        .with_max_sessions(32)
        .with_refresh_interval(64);
    let store = count_store(cfg);
    let threads = 8u64;
    let per_thread = 20_000u64;
    let keys = 128u64;
    let barrier = std::sync::Arc::new(Barrier::new(threads as usize));
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = store.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let s = store.start_session();
            barrier.wait();
            let mut rng = faster_util::XorShift64::new(t + 1);
            for _ in 0..per_thread {
                let k = rng.next_below(keys);
                if let Err(OpError::Pending(_)) = s.rmw(&k, &1) {
                    s.complete_pending(true);
                }
            }
            s.complete_pending(true);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = store.start_session();
    let mut total = 0u64;
    for k in 0..keys {
        total += read_now(&s, k).unwrap_or(0);
    }
    assert_eq!(total, threads * per_thread, "every increment must be counted exactly once");
}

#[test]
fn batched_ops_match_scalar_inmemory() {
    let store = count_store(FasterKvConfig::small());
    let s = store.start_session();
    let pairs: Vec<(u64, u64)> = (0..2_000u64).map(|k| (k, k * 3)).collect();
    s.upsert_batch(&pairs).unwrap();
    // Batch straddles present and absent keys.
    let keys: Vec<u64> = (0..2_100u64).collect();
    let results = s.read_batch(&keys, &0);
    assert_eq!(results.len(), keys.len());
    for (k, r) in keys.iter().zip(&results) {
        match r {
            Ok(Outcome::Value(v)) if *k < 2_000 => assert_eq!(*v, k * 3, "key {k}"),
            Err(OpError::NotFound) if *k >= 2_000 => {}
            other => panic!("key {k}: unexpected {other:?}"),
        }
    }
    let incs: Vec<(u64, u64)> = (0..2_000u64).map(|k| (k, 5)).collect();
    for r in s.rmw_batch(&incs) {
        assert!(r.is_ok(), "in-memory RMW never pends: {r:?}");
    }
    assert_eq!(read_now(&s, 10), Some(35));
    // Heterogeneous batch through execute_batch, in submission order:
    // the later Read must observe the earlier Upsert/Rmw/Delete.
    let ops = vec![
        BatchOp::Upsert { key: 5_000, value: 1 },
        BatchOp::Rmw { key: 5_000, input: 2 },
        BatchOp::Read { key: 5_000, input: 0 },
        BatchOp::Delete { key: 5_000 },
        BatchOp::Read { key: 5_000, input: 0 },
    ];
    let out = s.execute_batch(&ops);
    assert_eq!(out[0], Ok(Outcome::Done));
    assert!(out[1].is_ok());
    assert_eq!(out[2], Ok(Outcome::Value(3)));
    assert_eq!(out[3], Ok(Outcome::Done));
    assert_eq!(out[4], Err(OpError::NotFound));
}

#[test]
fn concurrent_batched_rmw_exactness() {
    // The CountStore exactness property, driven through rmw_batch: batching
    // must not lose, duplicate, or reorder increments across threads.
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 14, buffer_pages: 16, mutable_pages: 12, io_threads: 2 })
        .with_max_sessions(32)
        .with_refresh_interval(64);
    let store = count_store(cfg);
    let threads = 8u64;
    let batches = 400u64;
    let batch_len = 48usize;
    let keys = 128u64;
    let barrier = std::sync::Arc::new(Barrier::new(threads as usize));
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = store.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let s = store.start_session();
            barrier.wait();
            let mut rng = faster_util::XorShift64::new(t + 1);
            let mut batch = Vec::with_capacity(batch_len);
            for _ in 0..batches {
                batch.clear();
                batch.extend((0..batch_len).map(|_| (rng.next_below(keys), 1u64)));
                if s.rmw_batch(&batch).iter().any(|r| matches!(r, Err(OpError::Pending(_)))) {
                    s.complete_pending(true);
                }
            }
            s.complete_pending(true);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = store.start_session();
    let mut total = 0u64;
    for k in 0..keys {
        total += read_now(&s, k).unwrap_or(0);
    }
    assert_eq!(
        total,
        threads * batches * batch_len as u64,
        "every batched increment must be counted exactly once"
    );
}

#[test]
fn read_batch_straddling_disk_goes_pending_and_completes() {
    // Spill most keys to disk, then read a batch mixing resident and cold
    // keys: the cold ones must pend and complete with the right values.
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 10, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(32);
    let store = count_store(cfg);
    let s = store.start_session();
    let n = 4_000u64;
    for k in 0..n {
        s.upsert(&k, &(k + 1)).unwrap();
    }
    store.log().flush_barrier().unwrap();
    assert!(store.log().head_address().raw() > 0, "data must have spilled");
    // Early keys are on disk, the newest keys still resident.
    let keys: Vec<u64> = (0..64u64).chain(n - 8..n).chain(n..n + 4).collect();
    let results = s.read_batch(&keys, &0);
    let mut pending: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut pending_seen = 0u32;
    for (k, r) in keys.iter().zip(&results) {
        match r {
            Ok(Outcome::Value(v)) => assert_eq!(*v, k + 1, "resident key {k}"),
            Err(OpError::NotFound) => assert!(*k >= n, "key {k} lost"),
            Err(OpError::Pending(id)) => {
                pending_seen += 1;
                pending.insert(*id, *k);
            }
            other => panic!("key {k}: unexpected {other:?}"),
        }
    }
    assert!(pending_seen > 0, "cold keys must take the async path");
    for c in s.complete_pending(true) {
        let k = pending[&c.id];
        assert_eq!(c.result, Ok(Outcome::Value(k + 1)), "pending key {k}");
    }
}

#[test]
fn larger_than_memory_spill_and_read_back() {
    // Tiny buffer: 4 pages of 4 KB = 16 KB memory for ~24 B records.
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 10, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(32);
    let store = count_store(cfg);
    let s = store.start_session();
    let n = 4_000u64; // ~96 KB of records >> 16 KB buffer
    for k in 0..n {
        s.upsert(&k, &(k + 1)).unwrap();
    }
    store.log().flush_barrier().unwrap();
    assert!(
        store.log().head_address().raw() > 0,
        "data must have spilled: {:?}",
        store.log().regions()
    );
    let mut pending_seen = false;
    for k in (0..n).step_by(7) {
        match s.read(&k, &0) {
            Ok(Outcome::Value(v)) => assert_eq!(v, k + 1),
            Err(OpError::NotFound) => panic!("key {k} lost"),
            Err(OpError::Pending(id)) => {
                pending_seen = true;
                let done = s.complete_pending(true);
                let mut found = false;
                for c in done {
                    if c.id == id {
                        assert_eq!(c.result, Ok(Outcome::Value(k + 1)), "key {k}");
                        found = true;
                    }
                }
                assert!(found, "completion for key {k}");
            }
            other => panic!("read of {k} refused: {other:?}"),
        }
    }
    assert!(pending_seen, "cold reads must go through the async path");
}

#[test]
fn rmw_on_disk_record_goes_pending_and_completes() {
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 10, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 1, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(32);
    // Non-mergeable functions force the I/O path (CRDTs would use deltas).
    let store: FasterKv<u64, u64, BlindKv<u64>> =
        FasterKv::new(cfg, BlindKv::new(), MemDevice::new(2));
    let s = store.start_session();
    s.upsert(&42, &1000).unwrap();
    // Push key 42 to disk.
    for k in 1000..4000u64 {
        s.upsert(&k, &k).unwrap();
    }
    store.log().flush_barrier().unwrap();
    match s.rmw(&42, &777) {
        Err(OpError::Pending(_)) => {
            s.complete_pending(true);
        }
        Ok(_) => { /* possible if still resident */ }
        other => panic!("rmw refused: {other:?}"),
    }
    assert_eq!(read_now(&s, 42), Some(777), "RMW (blind replace) applied after IO");
}

#[test]
fn crdt_disk_rmw_avoids_io_with_delta() {
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 10, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 1, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(32);
    let store = count_store(cfg);
    let s = store.start_session();
    rmw_now(&s, 5, 100);
    for k in 1000..4000u64 {
        s.upsert(&k, &k).unwrap();
    }
    store.log().flush_barrier().unwrap();
    // Key 5's base is cold now; a CRDT RMW must return Done (delta appended).
    let reads_before = store.log().device().stats().reads;
    assert!(s.rmw(&5, &11).is_ok(), "CRDT RMW must not read disk (Table 2)");
    assert_eq!(store.log().device().stats().reads, reads_before, "no device read issued");
    // The read reconciles base + delta, possibly via IO.
    assert_eq!(read_now(&s, 5), Some(111));
}

#[test]
fn upsert_never_pends_even_below_head() {
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 10, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 1, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(32);
    let store = count_store(cfg);
    let s = store.start_session();
    s.upsert(&3, &1).unwrap();
    for k in 1000..4000u64 {
        s.upsert(&k, &k).unwrap();
    }
    // Key 3 cold; blind update completes synchronously (Table 2).
    s.upsert(&3, &2).unwrap();
    assert_eq!(read_now(&s, 3), Some(2));
    assert_eq!(s.pending_count(), 0);
}

#[test]
fn table2_update_scheme_by_region() {
    // Drive the log so one key's record sits in each region, and check the
    // stats counters reflect the Table 2 actions.
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(8);
    let store: FasterKv<u64, u64, BlindKv<u64>> =
        FasterKv::new(cfg, BlindKv::new(), MemDevice::new(2));
    let s = store.start_session();

    // Mutable region: in-place.
    s.upsert(&1, &10).unwrap();
    let totals = || store.metrics().sessions.totals;
    let st0 = totals();
    s.rmw(&1, &11).unwrap();
    assert_eq!(totals().in_place, st0.in_place + 1, "mutable RMW is in-place");

    // Push key 1 into the read-only region (2 mutable pages => write ~3 pages).
    for k in 100..((3 * 4096 / 24) as u64 + 100) {
        s.upsert(&k, &k).unwrap();
    }
    s.refresh();
    let st1 = totals();
    match s.rmw(&1, &12) {
        Ok(_) => {
            let st2 = totals();
            assert!(
                st2.rcu > st1.rcu || st2.in_place > st1.in_place,
                "read-only RMW copies to tail (or still mutable): {st2:?}"
            );
        }
        Err(OpError::Pending(_)) => {
            // Fuzzy-region hit: legal; complete it.
            assert_eq!(totals().fuzzy_pending, st1.fuzzy_pending + 1);
            s.complete_pending(true);
        }
        other => panic!("rmw refused: {other:?}"),
    }
    assert_eq!(read_now(&s, 1), Some(12));
}

#[test]
fn lost_update_anomaly_prevented() {
    // §6.2 regression: concurrent RMW increments while the read-only offset
    // shifts must never lose updates. The fuzzy region forces RMWs pending
    // instead of racing in-place vs. RCU.
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 6, tag_bits: 15, max_resize_chunks: 2 })
        .with_log(HLogConfig { page_bits: 10, buffer_pages: 32, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(16);
    // NOTE: BlindKv is not mergeable, so RMW takes the pending path in the
    // fuzzy region; we use an additive RMW to detect lost updates.
    #[derive(Clone, Default)]
    struct AddStore;
    impl Functions<u64, u64> for AddStore {
        type Input = u64;
        type Output = u64;
        fn single_reader(&self, _k: &u64, _i: &u64, v: &u64) -> u64 {
            *v
        }
        fn concurrent_reader(&self, _k: &u64, _i: &u64, v: &ValueCell<u64>) -> u64 {
            v.as_atomic_u64().load(Ordering::Relaxed)
        }
        fn initial_updater(&self, _k: &u64, i: &u64, v: &mut u64) {
            *v = *i;
        }
        fn in_place_updater(&self, _k: &u64, i: &u64, v: &ValueCell<u64>) {
            v.as_atomic_u64().fetch_add(*i, Ordering::Relaxed);
        }
        fn copy_updater(&self, _k: &u64, i: &u64, old: &u64, new: &mut u64) {
            *new = old + i;
        }
    }
    let store: FasterKv<u64, u64, AddStore> =
        FasterKv::new(cfg, AddStore, MemDevice::new(2));
    let threads = 6u64;
    let per_thread = 5_000u64;
    let keys = 16u64; // few keys + tiny mutable region => fuzzy hits
    let barrier = std::sync::Arc::new(Barrier::new(threads as usize));
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = store.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let s = store.start_session();
            barrier.wait();
            let mut rng = faster_util::XorShift64::new(t * 7 + 1);
            for i in 0..per_thread {
                let k = rng.next_below(keys);
                if let Err(OpError::Pending(_)) = s.rmw(&k, &1) {
                    s.complete_pending(true);
                }
                if i % 251 == 0 {
                    // churn the log so the read-only offset keeps moving
                    s.upsert(&(1_000_000 + t * per_thread + i), &0).unwrap();
                }
            }
            s.complete_pending(true);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = store.start_session();
    let mut total = 0u64;
    for k in 0..keys {
        total += read_now(&s, k).unwrap_or(0);
    }
    assert_eq!(total, threads * per_thread, "no update may be lost (§6.2)");
}

#[test]
fn checkpoint_recover_round_trip() {
    let cfg = FasterKvConfig::small();
    let device = MemDevice::new(2);
    let data: CheckpointData;
    {
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(cfg, CountStore, device.clone());
        let s = store.start_session();
        for k in 0..500u64 {
            s.upsert(&k, &(k * 3)).unwrap();
        }
        drop(s); // quiesce so the checkpoint flush trigger can fire
        data = store.checkpoint();
        // Post-checkpoint updates are allowed to be lost.
        let s2 = store.start_session();
        s2.upsert(&0, &999_999).unwrap();
    }
    let store2: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(cfg, CountStore, device, &data);
    let s = store2.start_session();
    for k in 1..500u64 {
        assert_eq!(read_now(&s, k), Some(k * 3), "key {k} after recovery");
    }
    // Key 0: either the checkpointed value (post-checkpoint update lost)...
    let v0 = read_now(&s, 0);
    assert_eq!(v0, Some(0), "checkpointed value for key 0");
    // And the store keeps working.
    s.upsert(&12345, &1).unwrap();
    assert_eq!(read_now(&s, 12345), Some(1));
}

#[test]
fn checkpoint_replay_catches_fuzzy_window_updates() {
    // Updates between t1 and t2 may or may not be in the fuzzy snapshot;
    // replay must make them visible either way. We approximate by updating
    // around the checkpoint call under a live session.
    let cfg = FasterKvConfig::small();
    let device = MemDevice::new(2);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, device.clone());
    {
        let s = store.start_session();
        for k in 0..100u64 {
            s.upsert(&k, &k).unwrap();
        }
    }
    let data = store.checkpoint();
    assert!(data.t2 >= data.t1);
    let store2: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(cfg, CountStore, device, &data);
    let s = store2.start_session();
    for k in 0..100u64 {
        assert_eq!(read_now(&s, k), Some(k));
    }
}

#[test]
fn gc_truncate_makes_cold_keys_absent() {
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 10, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 1, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(32);
    let store = count_store(cfg);
    let s = store.start_session();
    s.upsert(&1, &111).unwrap();
    for k in 1000..4000u64 {
        s.upsert(&k, &k).unwrap();
    }
    store.log().flush_barrier().unwrap();
    let head = store.log().head_address();
    assert!(head.raw() > 0);
    store.truncate_until(head);
    // Key 1 lived below the truncation point: now absent (expired).
    assert_eq!(read_now(&s, 1), None, "expired key reads as absent");
    // Hot keys unaffected.
    assert_eq!(read_now(&s, 3999), Some(3999));
}

#[test]
fn gc_compact_preserves_live_keys() {
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(32);
    let store = count_store(cfg);
    let s = store.start_session();
    // Cold live keys.
    for k in 0..50u64 {
        s.upsert(&k, &(k + 7)).unwrap();
    }
    // Overwrite some (dead old versions) and add churn.
    for k in 0..25u64 {
        s.upsert(&k, &(k + 1000)).unwrap();
    }
    for k in 5000..8000u64 {
        s.upsert(&k, &1).unwrap();
    }
    store.log().flush_barrier().unwrap();
    s.refresh();
    let compact_to = store.log().safe_read_only_address();
    assert!(compact_to.raw() > 0);
    let rolled = store.compact_until(compact_to, &s);
    assert!(rolled > 0, "live records must roll to tail");
    assert_eq!(store.log().begin_address(), compact_to);
    for k in 0..25u64 {
        assert_eq!(read_now(&s, k), Some(k + 1000), "overwritten key {k}");
    }
    for k in 25..50u64 {
        assert_eq!(read_now(&s, k), Some(k + 7), "old live key {k}");
    }
}

#[test]
fn index_grow_under_store_load() {
    let store = count_store(FasterKvConfig::small());
    let s = store.start_session();
    for k in 0..2000u64 {
        s.upsert(&k, &k).unwrap();
    }
    let k_before = store.index().k_bits();
    // grow_index with an active session: pass it so waits refresh.
    assert!(store.grow_index(Some(&s)));
    assert_eq!(store.index().k_bits(), k_before + 1);
    for k in 0..2000u64 {
        assert_eq!(read_now(&s, k), Some(k), "key {k} after grow");
    }
    assert!(store.shrink_index(Some(&s)));
    assert_eq!(store.index().k_bits(), k_before);
    for k in 0..2000u64 {
        assert_eq!(read_now(&s, k), Some(k), "key {k} after shrink");
    }
}

#[test]
fn session_op_counters_populate() {
    let store = count_store(FasterKvConfig::small());
    let s = store.start_session();
    s.upsert(&1, &1).unwrap();
    rmw_now(&s, 1, 1);
    let _ = read_now(&s, 1);
    s.delete(&1).unwrap();
    let st = store.metrics().sessions.totals;
    assert_eq!(st.upserts, 1);
    assert_eq!(st.rmws, 1);
    assert_eq!(st.reads, 1);
    assert_eq!(st.deletes, 1);
    assert!(st.in_place >= 1);
}

#[test]
fn read_with_input_selects_output() {
    // Output computed from value + input (Appendix E's field-selection use).
    #[derive(Clone, Default)]
    struct FieldStore;
    impl Functions<u64, [u32; 4]> for FieldStore {
        type Input = usize;
        type Output = u32;
        fn single_reader(&self, _k: &u64, field: &usize, v: &[u32; 4]) -> u32 {
            v[*field]
        }
        fn initial_updater(&self, _k: &u64, _i: &usize, v: &mut [u32; 4]) {
            *v = [0; 4];
        }
        fn in_place_updater(&self, _k: &u64, _i: &usize, _v: &ValueCell<[u32; 4]>) {}
        fn copy_updater(&self, _k: &u64, _i: &usize, old: &[u32; 4], new: &mut [u32; 4]) {
            *new = *old;
        }
    }
    let store: FasterKv<u64, [u32; 4], FieldStore> =
        FasterKv::new(FasterKvConfig::small(), FieldStore, MemDevice::new(1));
    let s = store.start_session();
    s.upsert(&1, &[10, 20, 30, 40]).unwrap();
    match s.read(&1, &2) {
        Ok(Outcome::Value(v)) => assert_eq!(v, 30),
        other => panic!("{other:?}"),
    }
}

#[test]
fn read_history_returns_versions_newest_first() {
    // Append-only mode: every update materializes a version (Appendix F).
    let cfg = FasterKvConfig::small()
        .with_index(faster_index::IndexConfig { k_bits: 6, tag_bits: 15, max_resize_chunks: 2 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 0, io_threads: 2 })
        .with_max_sessions(4)
        .with_refresh_interval(16);
    let store: FasterKv<u64, u64, BlindKv<u64>> =
        FasterKv::new(cfg, BlindKv::new(), MemDevice::new(2));
    let s = store.start_session();
    for v in 1..=5u64 {
        s.upsert(&7, &(v * 100)).unwrap();
    }
    let hist = s.read_history(&7, 10);
    assert_eq!(hist, vec![500, 400, 300, 200, 100], "newest first");
    assert_eq!(s.read_history(&7, 2), vec![500, 400], "limit respected");
    assert!(s.read_history(&99, 10).is_empty());
    // History crosses to storage when old versions are evicted.
    for k in 1000..5000u64 {
        s.upsert(&k, &k).unwrap();
    }
    store.log().flush_barrier().unwrap();
    let hist = s.read_history(&7, 10);
    assert_eq!(hist, vec![500, 400, 300, 200, 100], "history readable from disk");
    // Tombstone ends history.
    s.delete(&7).unwrap();
    assert!(s.read_history(&7, 10).is_empty());
}
