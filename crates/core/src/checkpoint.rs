//! Checkpointing and recovery without a write-ahead log (§6.5).
//!
//! "The basic idea is that we can treat HybridLog as our WAL."
//!
//! A checkpoint records the tail offset **t1**, takes a *fuzzy* (lock-free,
//! non-quiescing) snapshot of the hash index, records the tail offset **t2**
//! after the snapshot completes, and then moves the read-only offset to t2 so
//! that everything up to t2 flushes to storage. All index mutations during
//! the fuzzy capture correspond only to records in `[t1, t2)` — in-place
//! updates never touch the index — so recovery replays exactly those records
//! over the restored index to make it consistent with log position t2.
//!
//! The resulting checkpoint is *incremental* by construction: only data
//! written since the previous checkpoint needs flushing, with no bitmap
//! bookkeeping — "FASTER achieves this by organizing data differently."
//!
//! ## Consistency caveat (verbatim from the paper)
//!
//! In-place updates can violate monotonicity across a checkpoint: an update
//! r1 may modify a location above t2 while a later r2 modifies one below.
//! The paper sketches epoch-coordinated version switching to restore
//! monotonicity and leaves it as future work; this implementation matches
//! the paper's delivered semantics and documents the caveat.

use crate::record::RecordRef;
use crate::{FasterKv, FasterKvConfig, Functions, StoreInner};
use faster_epoch::Epoch;
use faster_hlog::{HybridLog, LogScanner};
use faster_index::{CreateOutcome, HashIndex, IndexCheckpoint};
use faster_storage::Device;
use faster_util::{Address, Pod};
use std::sync::Arc;

const MAGIC: u64 = 0x4641_5354_4552_4B56; // "FASTERKV"

/// A completed checkpoint: everything needed to rebuild the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointData {
    /// Tail offset when the fuzzy index capture began.
    pub t1: Address,
    /// Tail offset when the fuzzy index capture completed; the recovered
    /// store is consistent with the log up to exactly this position.
    pub t2: Address,
    /// Log begin address (GC frontier) at checkpoint time.
    pub begin: Address,
    /// The fuzzy index snapshot.
    pub index: IndexCheckpoint,
}

impl CheckpointData {
    /// Serializes: magic | t1 | t2 | begin | index-bytes-len | index bytes |
    /// checksum. The trailing checksum covers every preceding byte, so any
    /// torn write, truncation, or bit rot of a persisted checkpoint is
    /// detected at [`CheckpointData::from_bytes`] instead of silently
    /// recovering a corrupt store.
    pub fn to_bytes(&self) -> Vec<u8> {
        let idx = self.index.to_bytes();
        let mut out = Vec::with_capacity(48 + idx.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.t1.raw().to_le_bytes());
        out.extend_from_slice(&self.t2.raw().to_le_bytes());
        out.extend_from_slice(&self.begin.raw().to_le_bytes());
        out.extend_from_slice(&(idx.len() as u64).to_le_bytes());
        out.extend_from_slice(&idx);
        let sum = faster_util::hash_bytes(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses serialized checkpoint bytes. Returns `None` — never panics,
    /// never a partially-parsed value — on any structural problem or
    /// checksum mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 48 {
            return None;
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().ok()?);
        if faster_util::hash_bytes(body) != stored {
            return None;
        }
        let rd = |i: usize| u64::from_le_bytes(body[i..i + 8].try_into().ok().unwrap());
        if rd(0) != MAGIC {
            return None;
        }
        let len = rd(32) as usize;
        if body.len() != 40 + len {
            return None;
        }
        Some(Self {
            t1: Address::new(rd(8) & Address::MASK),
            t2: Address::new(rd(16) & Address::MASK),
            begin: Address::new(rd(24) & Address::MASK),
            index: IndexCheckpoint::from_bytes(&body[40..])?,
        })
    }
}

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> FasterKv<K, V, F> {
    /// Takes a checkpoint (§6.5). Runs in the background of concurrent
    /// operations — no quiescing — but does block until the log through t2
    /// is durable, which requires active sessions to keep refreshing their
    /// epochs (they do, automatically, every `refresh_interval` ops).
    ///
    /// Call from a maintenance thread that holds **no idle session**: the
    /// durability wait is epoch-gated, and this thread's own unrefreshed
    /// guard would stall it (see the `Session` liveness contract).
    pub fn checkpoint(&self) -> CheckpointData {
        let inner = &self.inner;
        let t1 = inner.log.tail_address();
        let mut index = inner.index.checkpoint();
        // Appendix D: "Index checkpoints need to overwrite these [read-cache]
        // addresses with addresses on the primary log." Resolve tagged
        // entries through the cache record's prev pointer.
        if let Some(rc) = &inner.rc {
            for (_bucket, raw) in index.entries.iter_mut() {
                let e = faster_index::HashBucketEntry(*raw);
                let addr = e.address();
                if crate::read_cache::is_rc(addr) {
                    let primary = rc
                        .get(crate::read_cache::rc_untag(addr))
                        .map(|p| {
                            let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                            rec.header().prev()
                        })
                        .unwrap_or(Address::INVALID);
                    *raw = if primary.is_valid() {
                        faster_index::HashBucketEntry::new(primary, e.tag(), false).0
                    } else {
                        // Evicted during capture: the hook already restored
                        // the live entry; recovery replay covers the rest.
                        0
                    };
                }
            }
            index.entries.retain(|&(_, raw)| raw != 0);
        }
        let t2 = inner.log.tail_address();
        // Flush through (at least) t2.
        inner.log.shift_read_only_to_tail();
        // Wait for the safe-read-only trigger to cover t2, then for the
        // device writes to land.
        while inner.log.safe_read_only_address() < t2 {
            // If no sessions are active the trigger fires via bump_with
            // immediately; otherwise their refreshes drive it.
            std::thread::yield_now();
        }
        inner.log.flush_barrier();
        CheckpointData { t1, t2, begin: inner.log.begin_address(), index }
    }

    /// Rebuilds a store from a checkpoint over the surviving `device`
    /// (§6.5 recovery).
    ///
    /// The fuzzy index snapshot is made consistent with log position t2 by
    /// scanning records in `[t1, t2)` in order and re-pointing each record's
    /// `(offset, tag)` entry at the newest such record — exactly the
    /// recovery rule of §6.5. Updates after t2 are lost (they were never
    /// durable), satisfying the monotonicity discussion of §6.5.
    pub fn recover(
        cfg: FasterKvConfig,
        functions: F,
        device: Arc<dyn Device>,
        data: &CheckpointData,
    ) -> Self {
        let epoch = Epoch::new(cfg.max_sessions);
        let index = HashIndex::restore(&data.index, cfg.index.max_resize_chunks, epoch.clone());
        let log = HybridLog::recover(cfg.log, epoch.clone(), device, data.begin, data.t2);
        // Recovery starts without a read cache; enable it by recreating the
        // store config if desired (cache contents are volatile anyway).
        let store = Self {
            inner: Arc::new(StoreInner {
                epoch,
                index,
                log,
                rc: None,
                functions,
                cfg,
                _marker: std::marker::PhantomData,
            }),
        };
        store.replay(data.t1, data.t2);
        store
    }

    /// §6.5 replay: walk `[t1, t2)` and update the fuzzy index entries.
    fn replay(&self, t1: Address, t2: Address) {
        let inner = &self.inner;
        let rec_size = RecordRef::<K, V>::size();
        for page in LogScanner::new(&inner.log, t1, t2) {
            let Ok(page) = page else { continue };
            let mut off = page.start_offset;
            while off + rec_size <= page.end_offset {
                let Some((header, key, _v)) =
                    RecordRef::<K, V>::parse_bytes(&page.bytes[off..off + rec_size])
                else {
                    // Zero header: page padding — nothing later on this page.
                    break;
                };
                off += rec_size;
                if header.is_invalid() || header.is_merge() {
                    continue;
                }
                let addr = Address::new(page.base.raw() + (off - rec_size) as u64);
                let hash = crate::hash_key(&key);
                match inner.index.find_or_create_tag(hash, None) {
                    CreateOutcome::Found(slot) => {
                        let cur = slot.load();
                        // Records scan in address order: the newest record in
                        // [t1, t2) for this tag wins.
                        if cur.address() < addr {
                            let _ = slot.cas_address(cur, addr);
                        }
                    }
                    CreateOutcome::Created(created) => {
                        created.finalize(addr);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faster_index::IndexCheckpoint;

    #[test]
    fn checkpoint_bytes_round_trip() {
        let data = CheckpointData {
            t1: Address::new(1000),
            t2: Address::new(2000),
            begin: Address::new(64),
            index: IndexCheckpoint { k_bits: 8, tag_bits: 15, entries: vec![(1, 2), (3, 4)] },
        };
        let bytes = data.to_bytes();
        assert_eq!(CheckpointData::from_bytes(&bytes).unwrap(), data);
        assert!(CheckpointData::from_bytes(&bytes[..20]).is_none());
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(CheckpointData::from_bytes(&bad).is_none());
    }
}
