//! Checkpointing and recovery without a write-ahead log (§6.5).
//!
//! "The basic idea is that we can treat HybridLog as our WAL."
//!
//! A checkpoint records the tail offset **t1**, takes a *fuzzy* (lock-free,
//! non-quiescing) snapshot of the hash index, records the tail offset **t2**
//! after the snapshot completes, and then moves the read-only offset to t2 so
//! that everything up to t2 flushes to storage. All index mutations during
//! the fuzzy capture correspond only to records in `[t1, t2)` — in-place
//! updates never touch the index — so recovery replays exactly those records
//! over the restored index to make it consistent with log position t2.
//!
//! The resulting checkpoint is *incremental* by construction: only data
//! written since the previous checkpoint needs flushing, with no bitmap
//! bookkeeping — "FASTER achieves this by organizing data differently."
//!
//! ## Consistency caveat (verbatim from the paper)
//!
//! In-place updates can violate monotonicity across a checkpoint: an update
//! r1 may modify a location above t2 while a later r2 modifies one below.
//! The paper sketches epoch-coordinated version switching to restore
//! monotonicity and leaves it as future work; this implementation matches
//! the paper's delivered semantics and documents the caveat.

use crate::record::RecordRef;
use crate::{FasterKv, FasterKvConfig, Functions, StoreInner};
use faster_epoch::Epoch;
use faster_hlog::{HybridLog, LogScanner};
use faster_index::{CreateOutcome, HashIndex, IndexCheckpoint};
use faster_storage::{Device, IoError};
use faster_util::{Address, Pod};
use std::sync::Arc;

const MAGIC: u64 = 0x4641_5354_4552_4B56; // "FASTERKV"

/// Why a checkpoint could not be persisted, parsed, or recovered. Typed so
/// callers (and the fault sweep) can distinguish "the newest generation was
/// corrupt and recovery fell back" from "nothing on this device is
/// recoverable".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream is structurally truncated or inconsistent (shorter
    /// than a header, or its internal lengths disagree with its size): the
    /// signature of a torn or partially-persisted write.
    Torn,
    /// The magic number does not match: these bytes were never a checkpoint
    /// (or the region was overwritten wholesale).
    BadMagic,
    /// The layout is intact but the checksum disagrees: bit rot or a torn
    /// interior write.
    ChecksumMismatch,
    /// The device failed the read or write itself.
    Io(IoError),
    /// No manifest slot / generation chain yields a fully-valid checkpoint:
    /// there is nothing to recover from.
    NoValidGeneration,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Torn => write!(f, "checkpoint bytes torn or truncated"),
            CheckpointError::BadMagic => write!(f, "checkpoint magic mismatch"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::NoValidGeneration => {
                write!(f, "no fully-valid checkpoint generation found")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<IoError> for CheckpointError {
    fn from(e: IoError) -> Self {
        CheckpointError::Io(e)
    }
}

/// A completed checkpoint: everything needed to rebuild the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointData {
    /// Tail offset when the fuzzy index capture began.
    pub t1: Address,
    /// Tail offset when the fuzzy index capture completed; the recovered
    /// store is consistent with the log up to exactly this position.
    pub t2: Address,
    /// Log begin address (GC frontier) at checkpoint time.
    pub begin: Address,
    /// The fuzzy index snapshot.
    pub index: IndexCheckpoint,
}

impl CheckpointData {
    /// Serializes: magic | t1 | t2 | begin | index-bytes-len | index bytes |
    /// checksum. The trailing checksum covers every preceding byte, so any
    /// torn write, truncation, or bit rot of a persisted checkpoint is
    /// detected at [`CheckpointData::from_bytes`] instead of silently
    /// recovering a corrupt store.
    pub fn to_bytes(&self) -> Vec<u8> {
        let idx = self.index.to_bytes();
        let mut out = Vec::with_capacity(48 + idx.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.t1.raw().to_le_bytes());
        out.extend_from_slice(&self.t2.raw().to_le_bytes());
        out.extend_from_slice(&self.begin.raw().to_le_bytes());
        out.extend_from_slice(&(idx.len() as u64).to_le_bytes());
        out.extend_from_slice(&idx);
        let sum = faster_util::hash_bytes(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses serialized checkpoint bytes. Never panics, never yields a
    /// partially-parsed value; the error distinguishes truncation/tearing
    /// from overwrite from bit rot so recovery can report *why* a generation
    /// was skipped.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 48 {
            return Err(CheckpointError::Torn);
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        let rd = |i: usize| u64::from_le_bytes(body[i..i + 8].try_into().unwrap());
        // Magic is checked before the checksum: a region that was never a
        // checkpoint reports BadMagic even though its checksum (of garbage)
        // also fails.
        if rd(0) != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if faster_util::hash_bytes(body) != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let len = rd(32) as usize;
        if body.len() != 40 + len {
            return Err(CheckpointError::Torn);
        }
        Ok(Self {
            t1: Address::new(rd(8) & Address::MASK),
            t2: Address::new(rd(16) & Address::MASK),
            begin: Address::new(rd(24) & Address::MASK),
            index: IndexCheckpoint::from_bytes(&body[40..]).ok_or(CheckpointError::Torn)?,
        })
    }
}

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> FasterKv<K, V, F> {
    /// Takes a checkpoint (§6.5). Runs in the background of concurrent
    /// operations — no quiescing — but does block until the log through t2
    /// is durable, which requires active sessions to keep refreshing their
    /// epochs (they do, automatically, every `refresh_interval` ops).
    ///
    /// Call from a maintenance thread that holds **no idle session**: the
    /// durability wait is epoch-gated, and this thread's own unrefreshed
    /// guard would stall it (see the `Session` liveness contract).
    pub fn checkpoint(&self) -> CheckpointData {
        let inner = &self.inner;
        let t1 = inner.log.tail_address();
        let mut index = inner.index.checkpoint();
        // Appendix D: "Index checkpoints need to overwrite these [read-cache]
        // addresses with addresses on the primary log." Resolve tagged
        // entries through the cache record's prev pointer.
        if let Some(rc) = &inner.rc {
            for (_bucket, raw) in index.entries.iter_mut() {
                let e = faster_index::HashBucketEntry(*raw);
                let addr = e.address();
                if crate::read_cache::is_rc(addr) {
                    let primary = rc
                        .get(crate::read_cache::rc_untag(addr))
                        .map(|p| {
                            let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                            rec.header().prev()
                        })
                        .unwrap_or(Address::INVALID);
                    *raw = if primary.is_valid() {
                        faster_index::HashBucketEntry::new(primary, e.tag(), false).0
                    } else {
                        // Evicted during capture: the hook already restored
                        // the live entry; recovery replay covers the rest.
                        0
                    };
                }
            }
            index.entries.retain(|&(_, raw)| raw != 0);
        }
        let t2 = inner.log.tail_address();
        // Flush through (at least) t2.
        inner.log.shift_read_only_to_tail();
        // Wait for the safe-read-only trigger to cover t2, then for the
        // device writes to land.
        while inner.log.safe_read_only_address() < t2 {
            // If no sessions are active the trigger fires via bump_with
            // immediately; otherwise their refreshes drive it.
            std::thread::yield_now();
        }
        // Flush-retry chains re-submit after a barrier they raced with;
        // quiesce first so the barrier actually covers every attempt (and no
        // stale partial-page retry can land after a later full-page flush).
        inner.log.wait_flush_quiesced();
        // A barrier failure is latched into the log's flush-failure counter,
        // which `checkpoint_durable` samples; plain `checkpoint()` keeps its
        // infallible signature for in-memory/test use.
        let _ = inner.log.flush_barrier();
        CheckpointData { t1, t2, begin: inner.log.begin_address(), index }
    }

    /// Like [`FasterKv::checkpoint`], but verifies that the log flushes the
    /// checkpoint depends on actually reached the device. A plain
    /// `checkpoint()` on a failing device still "completes" — page-flush and
    /// barrier failures are latched into the log's failure counter rather
    /// than propagated — and would hand the caller a `CheckpointData` whose
    /// `[begin, t2)` range is not durable. This variant samples the log's
    /// flush-failure counter around the checkpoint and refuses to return
    /// data that the log cannot back.
    ///
    /// [`crate::ckpt_manager::CheckpointManager::checkpoint_store`] builds on
    /// this: a generation is only committed to the manifest once its log
    /// prefix is known durable.
    pub fn checkpoint_durable(&self) -> Result<CheckpointData, CheckpointError> {
        let failures_before = self.inner.log.flush_failures();
        let data = self.checkpoint();
        if self.inner.log.flush_failures() != failures_before {
            return Err(CheckpointError::Io(faster_storage::IoError::Failed(
                "log flush failed during checkpoint".into(),
            )));
        }
        Ok(data)
    }

    /// Rebuilds a store from a checkpoint over the surviving `device`
    /// (§6.5 recovery).
    ///
    /// The fuzzy index snapshot is made consistent with log position t2 by
    /// scanning records in `[t1, t2)` in order and re-pointing each record's
    /// `(offset, tag)` entry at the newest such record — exactly the
    /// recovery rule of §6.5. Updates after t2 are lost (they were never
    /// durable), satisfying the monotonicity discussion of §6.5.
    pub fn recover(
        cfg: FasterKvConfig,
        functions: F,
        device: Arc<dyn Device>,
        data: &CheckpointData,
    ) -> Self {
        let metrics = Arc::new(faster_metrics::MetricsRegistry::new(cfg.metrics));
        let epoch = Epoch::with_metrics(cfg.max_sessions, metrics.epoch.clone());
        let index = HashIndex::restore_with_metrics(
            &data.index,
            cfg.index.max_resize_chunks,
            epoch.clone(),
            metrics.index.clone(),
        );
        let log = HybridLog::recover_with_metrics(
            cfg.log,
            epoch.clone(),
            device,
            data.begin,
            data.t2,
            metrics.hlog.clone(),
        );
        // Recovery starts without a read cache; enable it by recreating the
        // store config if desired (cache contents are volatile anyway).
        let store = Self {
            inner: Arc::new(StoreInner {
                epoch,
                index,
                log,
                rc: None,
                functions,
                cfg,
                metrics,
                wal: std::sync::OnceLock::new(),
                health: crate::health::HealthCell::new(),
                _marker: std::marker::PhantomData,
            }),
        };
        store.attach_health_hook();
        store.replay(data.t1, data.t2);
        store
    }

    /// §6.5 replay: walk `[t1, t2)` and update the fuzzy index entries.
    fn replay(&self, t1: Address, t2: Address) {
        let inner = &self.inner;
        let rec_size = RecordRef::<K, V>::size();
        for page in LogScanner::new(&inner.log, t1, t2) {
            let page = match page {
                Ok(page) => page,
                // A checksum-failed page ends the trustworthy prefix:
                // records past it may depend on state the corrupt page held,
                // so replay truncates to the last-valid prefix rather than
                // skipping over the hole.
                Err(IoError::Corrupt { .. }) => break,
                Err(_) => continue,
            };
            let mut off = page.start_offset;
            while off + rec_size <= page.end_offset {
                let Some((header, key, _v)) =
                    RecordRef::<K, V>::parse_bytes(&page.bytes[off..off + rec_size])
                else {
                    // Zero header: page padding — nothing later on this page.
                    break;
                };
                off += rec_size;
                if header.is_invalid() || header.is_merge() {
                    continue;
                }
                let addr = Address::new(page.base.raw() + (off - rec_size) as u64);
                let hash = crate::hash_key(&key);
                match inner.index.find_or_create_tag(hash, None) {
                    CreateOutcome::Found(slot) => {
                        let cur = slot.load();
                        // Records scan in address order: the newest record in
                        // [t1, t2) for this tag wins.
                        if cur.address() < addr {
                            let _ = slot.cas_address(cur, addr);
                        }
                    }
                    CreateOutcome::Created(created) => {
                        created.finalize(addr);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faster_index::IndexCheckpoint;

    #[test]
    fn checkpoint_bytes_round_trip() {
        let data = CheckpointData {
            t1: Address::new(1000),
            t2: Address::new(2000),
            begin: Address::new(64),
            index: IndexCheckpoint { k_bits: 8, tag_bits: 15, entries: vec![(1, 2), (3, 4)] },
        };
        let bytes = data.to_bytes();
        assert_eq!(CheckpointData::from_bytes(&bytes).unwrap(), data);
        assert_eq!(CheckpointData::from_bytes(&bytes[..20]), Err(CheckpointError::Torn));
        // Flipping a magic byte reports BadMagic; flipping a payload byte
        // reports ChecksumMismatch.
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert_eq!(CheckpointData::from_bytes(&bad), Err(CheckpointError::BadMagic));
        let mut bad = bytes.clone();
        bad[9] ^= 1;
        assert_eq!(CheckpointData::from_bytes(&bad), Err(CheckpointError::ChecksumMismatch));
        // Any truncation that still leaves a header must also fail.
        assert!(CheckpointData::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }
}
