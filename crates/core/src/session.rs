//! Sessions and the four store operations (Algorithms 2–4, §2.5, §6.3).
//!
//! A [`Session`] is one thread's registration with the store: it wraps an
//! epoch guard (acquired on creation, released on drop), refreshes the epoch
//! every `refresh_interval` operations, and owns the pending queue for
//! operations that returned `PENDING` — disk reads (§5.3) and fuzzy-region
//! RMWs (§6.3). Call [`Session::complete_pending`] periodically to drive
//! continuations, exactly as the paper's thread lifecycle prescribes.
//!
//! ## Completion-driven I/O
//!
//! Pending disk reads are continuation-driven over the device's
//! submission/completion ring: each op that misses memory parks its context
//! in a continuation table keyed by a fresh id, and queues a ring-routed
//! SQE carrying that id. [`Session::complete_pending`] drives the cycle —
//! submit every queued SQE in one batched handoff, reap CQEs straight off
//! the session's [`CompletionRing`] (one atomic swap, no thread hop, no
//! lock), and resume each continuation by id. A single session can
//! therefore keep hundreds of disk reads in flight: issue a batch of
//! reads, then call `complete_pending` to overlap all of their I/O.

use crate::functions::Functions;
use crate::record::{
    MergeRecord, RecordHeader, RecordRef, DELTA_BIT, INVALID_BIT, TOMBSTONE_BIT,
};
use crate::read_cache::{is_rc, rc_tag, rc_untag};
use crate::health::{HealthReason, StoreError};
use crate::{hash_key, FasterKv};
use faster_epoch::EpochGuard;
use faster_hlog::{ReadSpan, Region};
use faster_index::{CreateOutcome, EntrySlot, HashBucketEntry};
use faster_metrics::{SessionHub, SessionRecorder, Timer};
use faster_storage::{CompletionRing, Cqe, Sqe};
use faster_util::{Address, KeyHash, Pod};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Successful completion of a store operation (the unified operation API).
///
/// Every public operation returns [`OpResult`] = `Result<Outcome, OpError>`:
/// a read that finds the key yields `Value`, an applied mutation yields
/// `Done`, and everything else — absent key, asynchronous continuation,
/// read-only degradation, exhausted I/O — is a typed [`OpError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome<O> {
    /// A read found the key; the user functions produced this output.
    Value(O),
    /// A mutation (upsert / RMW / delete) was applied.
    Done,
}

impl<O> Outcome<O> {
    /// The read output, if this outcome carries one.
    #[inline]
    pub fn value(self) -> Option<O> {
        match self {
            Outcome::Value(o) => Some(o),
            Outcome::Done => None,
        }
    }
}

/// Why an operation did not (or has not yet) produced an [`Outcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// The key does not exist (reads; a delete of an absent key is `Done`).
    NotFound,
    /// The operation went asynchronous (disk read, fuzzy-region RMW); the id
    /// is echoed by the [`Completion`] that [`Session::complete_pending`]
    /// eventually returns for it.
    Pending(u64),
    /// The store has degraded to read-only (DESIGN.md §12) and refuses new
    /// mutations; the reason names the fault. Reads are never refused.
    ReadOnly(HealthReason),
    /// The operation's I/O failed ([`faster_storage::IoError`]) and
    /// exhausted its bounded retry budget. The store was **not** mutated and
    /// the key was **not** declared absent — the caller may re-issue the
    /// operation once the device recovers. (A GC-truncated record, by
    /// contrast, genuinely means "key absent" and completes as
    /// `Err(NotFound)` / `Ok(Done)`.) Surfaced only through completions.
    Io(faster_storage::IoError),
}

impl OpError {
    /// The pending id, when the operation went asynchronous.
    #[inline]
    pub fn pending_id(&self) -> Option<u64> {
        match self {
            OpError::Pending(id) => Some(*id),
            _ => None,
        }
    }
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::NotFound => write!(f, "key not found"),
            OpError::Pending(id) => write!(f, "operation pending (id {id})"),
            OpError::ReadOnly(r) => write!(f, "store is read-only: {r}"),
            OpError::Io(e) => write!(f, "I/O failed: {e}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<StoreError> for OpError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::ReadOnly(r) => OpError::ReadOnly(r),
        }
    }
}

/// Result of every store operation. See [`Outcome`] and [`OpError`].
pub type OpResult<O> = Result<Outcome<O>, OpError>;

/// A formerly pending operation completed by [`Session::complete_pending`]:
/// the id the operation originally returned via `OpError::Pending`, plus its
/// final [`OpResult`] (`Ok(Value)` / `Err(NotFound)` for reads, `Ok(Done)`
/// for RMWs, `Err(Io)` when the I/O retry budget ran out).
#[derive(Debug)]
pub struct Completion<O> {
    pub id: u64,
    pub result: OpResult<O>,
}

// ------------------------------------------------------------------ legacy
// One-PR compatibility shims for the pre-unification result types. Nothing
// in the workspace uses them; external callers get a deprecation nudge
// toward the `OpResult` surface and the shims disappear next release.

/// Result of a read (legacy surface).
#[deprecated(since = "0.2.0", note = "use the unified `OpResult` returned by `Session::read`")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadResult<O> {
    Found(O),
    NotFound,
    Pending(u64),
}

/// Result of an RMW (legacy surface).
#[deprecated(since = "0.2.0", note = "use the unified `OpResult` returned by `Session::rmw`")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwResult {
    Done,
    Pending(u64),
}

/// A completed formerly-pending operation (legacy surface).
#[deprecated(since = "0.2.0", note = "use `Completion` from `Session::complete_pending`")]
#[derive(Debug)]
#[allow(deprecated)]
pub enum CompletedOp<O> {
    Read { id: u64, result: Option<O> },
    Rmw { id: u64 },
    Failed { id: u64, error: faster_storage::IoError },
}

/// Bounded retry budget for transiently failed I/O (device errors, not
/// GC truncation). Retries pace themselves with [`faster_util::Backoff`];
/// past the budget the op completes as `Err(OpError::Io)`.
const MAX_IO_RETRIES: u32 = 8;

/// One operation of a heterogeneous batch ([`Session::execute_batch`]).
#[derive(Debug, Clone)]
pub enum BatchOp<K, V, I> {
    Read { key: K, input: I },
    Upsert { key: K, value: V },
    Rmw { key: K, input: I },
    Delete { key: K },
}

impl<K, V, I> BatchOp<K, V, I> {
    #[inline]
    fn key(&self) -> &K {
        match self {
            BatchOp::Read { key, .. }
            | BatchOp::Upsert { key, .. }
            | BatchOp::Rmw { key, .. }
            | BatchOp::Delete { key } => key,
        }
    }
}

/// Per-op result of [`Session::execute_batch`] (legacy surface).
#[deprecated(
    since = "0.2.0",
    note = "`Session::execute_batch` now returns positional `OpResult`s directly"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(deprecated)]
pub enum BatchOutcome<O> {
    Read(ReadResult<O>),
    Upsert,
    Rmw(RmwResult),
    Delete,
}

enum PendingKind {
    Read,
    Rmw,
    /// Fuzzy RMW awaiting retry at the next `complete_pending` (§6.3).
    RmwFuzzyRetry,
}

struct PendingOp<K, V, I> {
    id: u64,
    key: K,
    hash: KeyHash,
    input: I,
    kind: PendingKind,
    /// Address whose read was issued (continuation resumes from its record).
    read_addr: Address,
    /// Entry address snapshot for the RMW CAS-consistency check.
    entry_addr: Address,
    /// Accumulated CRDT partial (read reconciliation across deltas).
    acc: Option<V>,
    /// Alternate chains still to search (merge meta-records).
    fallbacks: Vec<Address>,
    /// Transient-I/O-failure retries consumed so far (see [`MAX_IO_RETRIES`]).
    attempts: u32,
}

/// A pending op parked in the continuation table: the context to resume
/// when the CQE bearing its id is reaped, plus the issue timestamp feeding
/// the `io_latency` histogram.
struct Parked<K, V, I> {
    op: PendingOp<K, V, I>,
    issued: Instant,
    /// Checksum-verification plan for the in-flight read; `None` when the
    /// op short-circuited (its error CQE is already in the ring).
    span: Option<ReadSpan>,
}

/// The continuation table: pending ops keyed by SQE id.
type ContinuationTable<K, V, I> = HashMap<u64, Parked<K, V, I>>;

/// Retained-capacity bound for the CQE reap buffer: a pathological burst
/// (deep io-depth drain) may grow it arbitrarily, so oversized buffers are
/// shrunk back after the drain instead of pinning the high-water mark
/// forever.
const IO_SCRATCH_MAX: usize = 1024;

/// How long a waiting `complete_pending` parks on the completion ring per
/// pass. Bounded so the epoch keeps refreshing while we wait (flush and
/// eviction triggers may be what our own I/O is stuck behind).
const RING_WAIT: Duration = Duration::from_micros(200);

/// A thread's handle onto the store. Not `Sync`: one session per thread,
/// exactly like the paper's thread model.
///
/// # Liveness
///
/// Every *live* session must keep operating (operations auto-refresh the
/// epoch every `refresh_interval` ops) or be dropped: an idle registered
/// session pins the current epoch, which stalls epoch-gated maintenance
/// (page flushes, evictions, resize phase changes) for the whole store —
/// exactly the thread contract of §2.5. Park a thread? Drop its session and
/// start a new one later.
pub struct Session<K: Pod, V: Pod, F: Functions<K, V>> {
    store: FasterKv<K, V, F>,
    guard: EpochGuard,
    // Session-local state uses Cell/RefCell: a session belongs to exactly one
    // thread (it is !Sync), and interior mutability keeps operation methods
    // at &self so index EntrySlot borrows never conflict.
    ops_since_refresh: Cell<u32>,
    next_id: Cell<u64>,
    outstanding: Cell<usize>,
    /// Completion ring the session's SQEs route their CQEs into. Shared
    /// with the device (each in-flight SQE holds an `Arc`), so completions
    /// racing a session drop land harmlessly in the ring and are freed
    /// with the last reference.
    ring: Arc<CompletionRing>,
    /// Locally queued SQEs, handed to the device in one `submit_all` batch
    /// per `complete_pending` pass.
    sq: RefCell<Vec<Sqe>>,
    /// Continuation table: pending ops keyed by their SQE id.
    pending: RefCell<ContinuationTable<K, V, F::Input>>,
    /// Reused CQE reap buffer so completion processing allocates nothing
    /// per call once warm (capacity bounded by [`IO_SCRATCH_MAX`]).
    io_scratch: RefCell<Vec<Cqe>>,
    retries: RefCell<VecDeque<PendingOp<K, V, F::Input>>>,
    /// This session's slot in the store-wide metrics registry (single
    /// writer: this thread). Retired into the hub's accumulator on drop.
    rec: Arc<SessionRecorder>,
    /// Shared per-op latency histograms (+ the runtime latency switch).
    hub: Arc<SessionHub>,
    /// Set by `read_internal` when the current first-pass read was served
    /// from the read cache; the caller classifies the read from it.
    read_rc_hit: Cell<bool>,
    /// Highest WAL LSN this session has appended (0 = none). Mutations are
    /// durable once the WAL acks through this LSN (DESIGN.md §10).
    wal_lsn: Cell<u64>,
    /// Sticky WAL append failure: once an append is refused (the log hit a
    /// commit failure), every later durability wait on this session errors.
    wal_error: RefCell<Option<faster_storage::IoError>>,
    /// Ids of WAL durability notices registered on this session's ring
    /// ([`Session::notify_wal_durable`]); their CQEs are routed here, not to
    /// the continuation table.
    wal_notices: RefCell<std::collections::HashSet<u64>>,
    /// Resolved WAL notices awaiting pickup by [`Session::take_wal_notice`].
    wal_notice_results: RefCell<HashMap<u64, Result<(), faster_storage::IoError>>>,
    /// Completions drained while a caller was parked in
    /// [`Session::wait_wal_durable_ring`]; handed back by the next
    /// `complete_pending`.
    done_backlog: RefCell<Vec<Completion<F::Output>>>,
}

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> Session<K, V, F> {
    pub(crate) fn new(store: FasterKv<K, V, F>) -> Self {
        let guard = store.inner.epoch.acquire();
        let hub = store.inner.metrics.sessions.clone();
        let rec = hub.register();
        Self {
            store,
            guard,
            ops_since_refresh: Cell::new(0),
            next_id: Cell::new(1),
            outstanding: Cell::new(0),
            ring: Arc::new(CompletionRing::new()),
            sq: RefCell::new(Vec::new()),
            pending: RefCell::new(HashMap::new()),
            io_scratch: RefCell::new(Vec::new()),
            retries: RefCell::new(VecDeque::new()),
            rec,
            hub,
            read_rc_hit: Cell::new(false),
            wal_lsn: Cell::new(0),
            wal_error: RefCell::new(None),
            wal_notices: RefCell::new(std::collections::HashSet::new()),
            wal_notice_results: RefCell::new(HashMap::new()),
            done_backlog: RefCell::new(Vec::new()),
        }
    }

    /// The session's epoch guard (used by maintenance operations).
    pub fn guard(&self) -> &EpochGuard {
        &self.guard
    }

    /// Classifies a first-pass read's synchronous outcome into exactly one
    /// of `rc_hits` / `mem_reads` / `reads_pending` (the registry's read
    /// identity), and feeds the read-cache hit/miss counters when the store
    /// has a cache (a read that goes to disk is by definition a cache miss).
    fn classify_read(&self, r: &OpResult<F::Output>) {
        let rc_hit = self.read_rc_hit.get();
        match r {
            Err(OpError::Pending(_)) => self.rec.reads_pending.inc(),
            _ if rc_hit => self.rec.rc_hits.inc(),
            _ => self.rec.mem_reads.inc(),
        }
        if self.store.inner.rc.is_some() {
            let rcm = &self.store.inner.metrics.read_cache;
            if rc_hit {
                rcm.hits.inc();
            } else {
                rcm.misses.inc();
            }
        }
    }

    /// Starts a per-op latency timer (a no-op unless the crate is built
    /// with `metrics-timing` and latency is enabled in `MetricsConfig`).
    #[inline]
    fn op_timer(&self) -> Timer {
        Timer::start(self.hub.latency_enabled)
    }

    /// Counts one successful mutation: `writes` plus exactly one of the
    /// `in_place` / `rcu` / `appends` buckets (the write identity).
    #[inline]
    fn count_write(&self, bucket: &faster_metrics::Cell64) {
        self.rec.writes.inc();
        bucket.inc();
    }

    /// Reports `records` log records made dead by this op (RCU-superseded,
    /// tombstoned, or abandoned after a lost CAS) to the hlog's dead-space
    /// counter. An RCU supersedes at most one older version per key, so this
    /// is an upper bound when the chain never actually held the key — the
    /// safe direction for a compaction trigger.
    #[inline]
    fn note_dead(&self, records: u64) {
        self.store
            .inner
            .log
            .note_dead_bytes(records * RecordRef::<K, V>::size() as u64);
    }

    /// Number of operations currently pending (I/O or fuzzy retries).
    pub fn pending_count(&self) -> usize {
        self.outstanding.get()
    }

    /// Explicit epoch refresh (§2.4); also runs automatically every
    /// `refresh_interval` operations.
    pub fn refresh(&self) {
        self.guard.refresh();
        self.ops_since_refresh.set(0);
    }

    #[inline]
    fn maybe_refresh(&self) {
        let n = self.ops_since_refresh.get() + 1;
        self.ops_since_refresh.set(n);
        if n >= self.store.inner.cfg.refresh_interval {
            self.refresh();
        }
    }

    /// Batch-amortized epoch bookkeeping: one counter update (and at most
    /// one refresh) for `n` operations, instead of `n` counter round-trips.
    #[inline]
    fn batch_tick(&self, n: usize) {
        let total = self.ops_since_refresh.get().saturating_add(n as u32);
        if total >= self.store.inner.cfg.refresh_interval {
            self.refresh();
        } else {
            self.ops_since_refresh.set(total);
        }
    }

    #[inline]
    fn fresh_id(&self) -> u64 {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        id
    }

    /// Decrements the outstanding-op count. Issue and completion are
    /// strictly paired, so the count can never go negative — asserted in
    /// debug builds because an unbalanced decrement would silently turn
    /// `complete_pending(wait)` into a premature return.
    #[inline]
    fn dec_outstanding(&self) {
        let n = self.outstanding.get();
        debug_assert!(n > 0, "outstanding I/O accounting went negative");
        self.outstanding.set(n.saturating_sub(1));
    }

    /// Parks `op` in the continuation table and queues the ring-routed SQE
    /// for its `read_addr`. A GC-truncated address short-circuits: the
    /// Truncated CQE is already in the ring under this id and no SQE is
    /// queued.
    fn park_and_enqueue(&self, op: PendingOp<K, V, F::Input>) {
        let id = op.id;
        let addr = op.read_addr;
        let made =
            self.store.inner.log.make_read_sqe(id, addr, RecordRef::<K, V>::size(), &self.ring);
        let (sqe, span) = match made {
            Some((sqe, span)) => (Some(sqe), Some(span)),
            None => (None, None),
        };
        let prev = self
            .pending
            .borrow_mut()
            .insert(id, Parked { op, issued: Instant::now(), span });
        debug_assert!(prev.is_none(), "duplicate pending id {id}");
        if let Some(sqe) = sqe {
            self.sq.borrow_mut().push(sqe);
        }
    }

    // ================================================================ READ

    /// Reads the value for `key` (Algorithm 2). For mergeable (CRDT) stores
    /// the read reconciles delta records along the chain (§6.3).
    ///
    /// Returns `Ok(Outcome::Value(out))` on a hit, `Err(OpError::NotFound)`
    /// on a miss, or `Err(OpError::Pending(id))` when the read went to disk
    /// (resolved by [`Session::complete_pending`]).
    pub fn read(&self, key: &K, input: &F::Input) -> OpResult<F::Output> {
        let t = self.op_timer();
        self.rec.reads.inc();
        self.read_rc_hit.set(false);
        let hash = hash_key(key);
        let r = self.read_internal(key, hash, input, Address::INVALID, None, Vec::new(), None);
        self.classify_read(&r);
        t.observe(&self.hub.read_latency);
        self.maybe_refresh();
        r
    }

    /// Shared read walk. `start_at` overrides the index entry (continuation
    /// resuming mid-chain); `acc` carries CRDT partials; `fallbacks` carries
    /// merge-record second chains; `id` reuses a pending id.
    #[allow(clippy::too_many_arguments)]
    fn read_internal(
        &self,
        key: &K,
        hash: KeyHash,
        input: &F::Input,
        start_at: Address,
        mut acc: Option<V>,
        mut fallbacks: Vec<Address>,
        id: Option<u64>,
    ) -> OpResult<F::Output> {
        let inner = &self.store.inner;
        let f = &inner.functions;
        let mut addr = if start_at.is_valid() {
            start_at
        } else {
            match inner.index.find_tag(hash, Some(&self.guard)) {
                Some(slot) => slot.load().address(),
                None => return self.finish_read(key, input, acc),
            }
        };
        loop {
            if is_rc(addr) {
                // Appendix D: the entry points into the read-cache log.
                let Some(rc_log) = inner.rc.as_ref() else {
                    return self.finish_read(key, input, acc);
                };
                match rc_log.get(rc_untag(addr)) {
                    Some(p) => {
                        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                        let h = rec.header();
                        if rec.key() == *key && !h.is_tombstone() && !h.is_delta() {
                            let v = rec.read_value();
                            let out = match &acc {
                                Some(a) => {
                                    let f = &inner.functions;
                                    let merged = f.merge(&v, a);
                                    f.single_reader(key, input, &merged)
                                }
                                None => inner.functions.single_reader(key, input, &v),
                            };
                            // Second chance (§6.4 applied to the cache): a
                            // hit outside the cache's mutable region copies
                            // the record to the cache tail.
                            if acc.is_none() {
                                self.rc_second_chance(key, hash, &rec, addr);
                            }
                            self.read_rc_hit.set(true);
                            return Ok(Outcome::Value(out));
                        }
                        // Cached record is for a different key (or deleted):
                        // continue into the primary chain it points at.
                        addr = h.prev();
                        continue;
                    }
                    None => {
                        // Evicted under us; the eviction hook is restoring
                        // the entry. Refresh (drives the trigger) + restart.
                        self.refresh();
                        addr = match inner.index.find_tag(hash, Some(&self.guard)) {
                            Some(slot) => slot.load().address(),
                            None => return self.finish_read(key, input, acc),
                        };
                        continue;
                    }
                }
            }
            if !addr.is_valid() || addr < inner.log.begin_address() {
                // Chain end (or GC'd prefix, Appendix C): try alternates.
                match fallbacks.pop() {
                    Some(a) => {
                        addr = a;
                        continue;
                    }
                    None => return self.finish_read(key, input, acc),
                }
            }
            let Some(p) = inner.log.get(addr) else {
                // Below head: go asynchronous (Alg 2 line 6).
                return Err(OpError::Pending(self.issue_read_io(
                    key, hash, input, addr, acc, fallbacks, id,
                )));
            };
            // Safety: epoch-protected resident record.
            let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
            let h = rec.header();
            if h.is_merge() {
                fallbacks.push(unsafe { MergeRecord::second_address(p) });
                addr = h.prev();
                continue;
            }
            if h.is_invalid() || rec.key() != *key {
                addr = h.prev();
                continue;
            }
            if h.is_tombstone() {
                return self.finish_read(key, input, acc);
            }
            if h.is_delta() {
                // CRDT partial: fold and keep walking toward the base.
                let part = rec.read_value();
                acc = Some(match &acc {
                    Some(a) => f.merge(a, &part),
                    None => part,
                });
                addr = h.prev();
                continue;
            }
            // Base record: produce the output (Alg 2 lines 12-15).
            let out = if let Some(a) = &acc {
                let merged = f.merge(&rec.read_value(), a);
                f.single_reader(key, input, &merged)
            } else if addr < inner.log.safe_ipu_boundary() {
                f.single_reader(key, input, &rec.read_value())
            } else {
                f.concurrent_reader(key, input, rec.value_cell())
            };
            // (When resuming a pending op, continue_io wraps this result
            // into a Completion for the caller.)
            return Ok(Outcome::Value(out));
        }
    }

    /// Chain exhausted: deltas with no base fold onto the identity (§6.3).
    fn finish_read(&self, key: &K, input: &F::Input, acc: Option<V>) -> OpResult<F::Output> {
        match acc {
            Some(a) => {
                let f = &self.store.inner.functions;
                let merged = f.merge(&f.identity(), &a);
                Ok(Outcome::Value(f.single_reader(key, input, &merged)))
            }
            None => Err(OpError::NotFound),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_read_io(
        &self,
        key: &K,
        hash: KeyHash,
        input: &F::Input,
        addr: Address,
        acc: Option<V>,
        fallbacks: Vec<Address>,
        id: Option<u64>,
    ) -> u64 {
        let id = id.unwrap_or_else(|| self.fresh_id());
        self.rec.io_issued.inc();
        self.outstanding.set(self.outstanding.get() + 1);
        self.park_and_enqueue(PendingOp {
            id,
            key: *key,
            hash,
            input: input.clone(),
            kind: PendingKind::Read,
            read_addr: addr,
            entry_addr: Address::INVALID,
            acc,
            fallbacks,
            attempts: 0,
        });
        id
    }

    // ================================================================= WAL

    /// Logs a logical redo record for a mutation this session just applied
    /// (DESIGN.md §10). No-op for stores without a WAL — including a
    /// recovering store mid-replay, which only attaches its WAL after the
    /// suffix has been reapplied. An append refused by a failed log latches
    /// into `wal_error`; the mutation itself stands (it is applied, just
    /// not durable), and every subsequent durability wait reports the loss.
    fn wal_log(&self, kind: u8, key: &K, value: Option<&V>) {
        let Some(wal) = self.store.inner.wal.get() else { return };
        let payload = crate::walrec::encode::<K, V>(kind, key, value);
        match wal.append(&payload) {
            Ok(lsn) => self.wal_lsn.set(lsn),
            Err(e) => {
                // A refused append means per-op durability is gone for good
                // (WAL failures are sticky): degrade the store to read-only.
                self.store.inner.health.to_read_only(HealthReason::WalFailed);
                let mut err = self.wal_error.borrow_mut();
                if err.is_none() {
                    *err = Some(e);
                }
            }
        }
    }

    /// Highest WAL LSN this session has appended (0 = none, or no WAL).
    pub fn wal_last_lsn(&self) -> u64 {
        self.wal_lsn.get()
    }

    /// Blocks until every mutation this session has issued is group-commit
    /// durable in the WAL. `Err` means some mutation was **never acked** —
    /// either its append was refused or its group's flush barrier failed;
    /// the error is sticky (the WAL refuses all further commits).
    /// Immediately `Ok` on stores without a WAL.
    pub fn wait_wal_durable(&self) -> Result<(), faster_storage::IoError> {
        if let Some(e) = self.wal_error.borrow().as_ref() {
            return Err(e.clone());
        }
        match self.store.inner.wal.get() {
            Some(wal) => {
                let r = wal.wait_durable(self.wal_lsn.get());
                if r.is_err() {
                    self.store.inner.health.to_read_only(HealthReason::WalFailed);
                }
                r
            }
            None => Ok(()),
        }
    }

    /// Non-blocking durability check: `Some(Ok(()))` once everything this
    /// session appended is durable, `Some(Err(_))` once the WAL has failed,
    /// `None` while a group commit is still in flight.
    pub fn poll_wal_durable(&self) -> Option<Result<(), faster_storage::IoError>> {
        if let Some(e) = self.wal_error.borrow().as_ref() {
            return Some(Err(e.clone()));
        }
        match self.store.inner.wal.get() {
            Some(wal) => {
                let r = wal.poll_durable(self.wal_lsn.get());
                if matches!(&r, Some(Err(_))) {
                    self.store.inner.health.to_read_only(HealthReason::WalFailed);
                }
                r
            }
            None => Some(Ok(())),
        }
    }

    /// Registers a ring-routed durability notice for everything this session
    /// has appended (DESIGN.md §10 follow-on): when the WAL group covering
    /// [`Session::wal_last_lsn`] commits (or the log fails), a CQE bearing
    /// the returned id lands in this session's completion ring — the same
    /// ring `complete_pending` reaps — so a pipelined caller can park once
    /// for disk reads *and* durability acks. Returns `None` when there is
    /// nothing to wait for (no WAL, or no append yet). Resolve the notice
    /// with [`Session::take_wal_notice`] after a `complete_pending` pass, or
    /// park directly with [`Session::wait_wal_durable_ring`].
    pub fn notify_wal_durable(&self) -> Option<u64> {
        let wal = self.store.inner.wal.get()?;
        if self.wal_lsn.get() == 0 {
            return None;
        }
        let id = self.fresh_id();
        self.wal_notices.borrow_mut().insert(id);
        wal.notify_durable(self.wal_lsn.get(), id, &self.ring);
        Some(id)
    }

    /// Takes the resolved result of a durability notice registered with
    /// [`Session::notify_wal_durable`], if its CQE has been reaped (by
    /// `complete_pending` or `wait_wal_durable_ring`). `None` = still in
    /// flight.
    pub fn take_wal_notice(&self, id: u64) -> Option<Result<(), faster_storage::IoError>> {
        self.wal_notice_results.borrow_mut().remove(&id)
    }

    /// Like [`Session::wait_wal_durable`], but parks on the session's
    /// completion ring instead of the WAL condvar, driving any outstanding
    /// I/O continuations while it waits (their completions are handed to the
    /// next [`Session::complete_pending`] call). This is the ack path for a
    /// pipelined front-end: no thread burns a condvar slot per connection.
    pub fn wait_wal_durable_ring(&self) -> Result<(), faster_storage::IoError> {
        if let Some(e) = self.wal_error.borrow().as_ref() {
            return Err(e.clone());
        }
        let Some(id) = self.notify_wal_durable() else { return Ok(()) };
        loop {
            self.submit_queued();
            let mut done = Vec::new();
            self.reap_and_run(&mut done);
            if !done.is_empty() {
                self.done_backlog.borrow_mut().append(&mut done);
            }
            if let Some(r) = self.take_wal_notice(id) {
                if r.is_err() {
                    self.store.inner.health.to_read_only(HealthReason::WalFailed);
                }
                return r;
            }
            self.refresh();
            self.ring.wait_nonempty(RING_WAIT);
        }
    }

    /// Installs `waker` as the ring's push hook: every CQE pushed into this
    /// session's completion ring (I/O completions, WAL durability notices)
    /// invokes it. A front-end points this at a self-pipe/eventfd so one
    /// `poll` park covers ring CQEs *and* socket readiness.
    pub fn set_io_waker(&self, waker: impl Fn() + Send + Sync + 'static) {
        self.ring.set_waker(waker);
    }

    /// Removes the hook installed by [`Session::set_io_waker`].
    pub fn clear_io_waker(&self) {
        self.ring.clear_waker();
    }

    // ============================================================== UPSERT

    /// The read-only gate every mutation passes (DESIGN.md §12): a store
    /// degraded to read-only refuses new mutations with a typed reason.
    #[inline]
    fn writable(&self) -> Result<(), OpError> {
        match self.store.inner.health.read_only_error() {
            Some(StoreError::ReadOnly(r)) => Err(OpError::ReadOnly(r)),
            None => Ok(()),
        }
    }

    /// Blind update (Algorithm 3): in-place if the record is in the mutable
    /// region, otherwise a new record at the tail. Never goes pending
    /// (Table 2: blind updates need no old value). Fallible by default:
    /// refuses with [`OpError::ReadOnly`] once the store has degraded —
    /// a mutation the store can no longer make durable should not be
    /// silently accepted.
    pub fn upsert(&self, key: &K, value: &V) -> OpResult<F::Output> {
        self.writable()?;
        let t = self.op_timer();
        self.rec.upserts.inc();
        let hash = hash_key(key);
        self.upsert_internal(key, hash, value);
        t.observe(&self.hub.upsert_latency);
        self.maybe_refresh();
        Ok(Outcome::Done)
    }

    /// Fallible upsert (legacy name; `upsert` itself is now fallible).
    #[deprecated(since = "0.2.0", note = "`Session::upsert` is now fallible; call it directly")]
    pub fn try_upsert(&self, key: &K, value: &V) -> Result<(), StoreError> {
        match self.upsert(key, value) {
            Ok(_) => Ok(()),
            Err(OpError::ReadOnly(r)) => Err(StoreError::ReadOnly(r)),
            Err(_) => unreachable!("upsert only fails ReadOnly"),
        }
    }

    /// Fallible RMW (legacy name; `rmw` itself is now fallible).
    #[deprecated(since = "0.2.0", note = "`Session::rmw` is now fallible; call it directly")]
    #[allow(deprecated)]
    pub fn try_rmw(&self, key: &K, input: &F::Input) -> Result<RmwResult, StoreError> {
        match self.rmw(key, input) {
            Ok(_) => Ok(RmwResult::Done),
            Err(OpError::Pending(id)) => Ok(RmwResult::Pending(id)),
            Err(OpError::ReadOnly(r)) => Err(StoreError::ReadOnly(r)),
            Err(_) => unreachable!("rmw only fails Pending or ReadOnly"),
        }
    }

    /// Fallible delete (legacy name; `delete` itself is now fallible).
    #[deprecated(since = "0.2.0", note = "`Session::delete` is now fallible; call it directly")]
    pub fn try_delete(&self, key: &K) -> Result<(), StoreError> {
        match self.delete(key) {
            Ok(_) => Ok(()),
            Err(OpError::ReadOnly(r)) => Err(StoreError::ReadOnly(r)),
            Err(_) => unreachable!("delete only fails ReadOnly"),
        }
    }

    /// Algorithm 3 body, shared by the scalar and batched paths (the wrapper
    /// owns stats and epoch bookkeeping).
    fn upsert_internal(&self, key: &K, hash: KeyHash, value: &V) {
        loop {
            let inner = &self.store.inner;
            let f = &inner.functions;
            match inner.index.find_or_create_tag(hash, Some(&self.guard)) {
                CreateOutcome::Found(slot) => {
                    let entry = slot.load();
                    if is_rc(entry.address()) {
                        // Cache records are never updated in place: write a
                        // fresh primary record, splicing the cache copy out.
                        let prev = self.chain_prev_for_new_record(entry.address());
                        let (addr, rec) = self.write_record(prev, key, 0);
                        let f = &self.store.inner.functions;
                        f.single_writer(key, value, unsafe { rec.value_mut() });
                        match slot.cas_address(entry, addr) {
                            Ok(()) => {
                                self.count_write(&self.rec.rcu);
                                self.note_dead(1);
                                let post = rec.read_value();
                                self.wal_log(crate::walrec::KIND_PUT, key, Some(&post));
                                return;
                            }
                            Err(_) => {
                                rec.set_bits(INVALID_BIT);
                                self.note_dead(1);
                                continue;
                            }
                        }
                    }
                    let ro = inner.log.ipu_boundary();
                    // Trace only the mutable suffix: anything deeper gets
                    // shadowed by the new tail record anyway (Alg 3).
                    if let Some(laddr) = self.find_in_memory_above(key, entry.address(), ro) {
                        let p = inner.log.get(laddr).expect("mutable record resident");
                        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                        if !rec.header().is_tombstone() && !rec.header().is_delta() {
                            f.concurrent_writer(key, value, rec.value_cell());
                            self.count_write(&self.rec.in_place);
                            // Post-image read may interleave with a racing
                            // writer of the same cell; the WAL then orders
                            // the two racers arbitrarily, exactly as racy
                            // as the in-place update itself (DESIGN.md §10).
                            let post = rec.read_value();
                            self.wal_log(crate::walrec::KIND_PUT, key, Some(&post));
                            return;
                        }
                    }
                    // RCU: new record at the tail, linked to the old chain.
                    let (addr, rec) = self.write_record(entry.address(), key, 0);
                    let f = &self.store.inner.functions;
                    f.single_writer(key, value, unsafe { rec.value_mut() });
                    match slot.cas_address(entry, addr) {
                        Ok(()) => {
                            self.count_write(&self.rec.rcu);
                            self.note_dead(1);
                            let post = rec.read_value();
                            self.wal_log(crate::walrec::KIND_PUT, key, Some(&post));
                            return;
                        }
                        Err(_) => {
                            rec.set_bits(INVALID_BIT);
                            self.note_dead(1);
                            continue; // Alg 3 line 19: retry
                        }
                    }
                }
                CreateOutcome::Created(created) => {
                    let (addr, rec) = self.write_record(Address::INVALID, key, 0);
                    let f = &self.store.inner.functions;
                    f.single_writer(key, value, unsafe { rec.value_mut() });
                    created.finalize(addr);
                    self.count_write(&self.rec.appends);
                    let post = rec.read_value();
                    self.wal_log(crate::walrec::KIND_PUT, key, Some(&post));
                    return;
                }
            }
        }
    }

    // ================================================================= RMW

    /// Read-modify-write (Algorithm 4 + Table 2). May return
    /// [`OpError::Pending`] for disk-resident records or fuzzy-region hits,
    /// and refuses with [`OpError::ReadOnly`] on a degraded store.
    pub fn rmw(&self, key: &K, input: &F::Input) -> OpResult<F::Output> {
        self.writable()?;
        let t = self.op_timer();
        self.rec.rmws.inc();
        let hash = hash_key(key);
        let r = self.rmw_internal(key, hash, input, None);
        t.observe(&self.hub.rmw_latency);
        self.maybe_refresh();
        r
    }

    fn rmw_internal(
        &self,
        key: &K,
        hash: KeyHash,
        input: &F::Input,
        reuse_id: Option<u64>,
    ) -> OpResult<F::Output> {
        loop {
            let inner = &self.store.inner;
            let f = &inner.functions;
            match inner.index.find_or_create_tag(hash, Some(&self.guard)) {
                CreateOutcome::Found(slot) => {
                    let entry = slot.load();
                    if is_rc(entry.address()) {
                        // Cache hit for RMW: the old value is right here —
                        // no I/O needed. Write the updated primary record.
                        let rc_rec = inner
                            .rc
                            .as_ref()
                            .and_then(|rc| rc.get(rc_untag(entry.address())));
                        match rc_rec {
                            Some(p) => {
                                let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                                if rec.key() == *key {
                                    let old = rec.read_value();
                                    if self.rcu_create(&slot, entry, key, input, Some(old)) {
                                        return Ok(Outcome::Done);
                                    }
                                    continue;
                                }
                                // Cached record is another key's: fall
                                // through and trace from its primary prev.
                            }
                            None => {
                                // Evicted: let the hook restore the entry.
                                self.refresh();
                                continue;
                            }
                        }
                    }
                    let head = inner.log.head_address();
                    let chain_head = self.chain_prev_for_new_record(entry.address());
                    match self.find_in_memory_above(key, chain_head, head) {
                        Some(laddr) => {
                            let p = inner.log.get(laddr).expect("resident");
                            let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                            let h = rec.header();
                            if h.is_tombstone() {
                                // Deleted: re-create from the initial value.
                                if self.rcu_create(&slot, entry, key, input, None) {
                                    return Ok(Outcome::Done);
                                }
                                continue;
                            }
                            match inner.log.classify(laddr) {
                                Region::Mutable => {
                                    f.in_place_updater(key, input, rec.value_cell());
                                    self.count_write(&self.rec.in_place);
                                    let post = rec.read_value();
                                    self.wal_log(crate::walrec::KIND_PUT, key, Some(&post));
                                    return Ok(Outcome::Done);
                                }
                                Region::Fuzzy => {
                                    if f.is_mergeable() {
                                        // CRDT: append a delta (§6.3).
                                        if self.append_delta(&slot, entry, key, input) {
                                            return Ok(Outcome::Done);
                                        }
                                        continue;
                                    }
                                    // Defer: pending list, retried later.
                                    self.rec.fuzzy_pending.inc();
                                    return Err(OpError::Pending(
                                        self.queue_fuzzy_retry(key, hash, input, reuse_id),
                                    ));
                                }
                                Region::ReadOnly => {
                                    if h.is_delta() {
                                        // RCU of a delta would double-count:
                                        // append a fresh delta instead.
                                        debug_assert!(f.is_mergeable());
                                        if self.append_delta(&slot, entry, key, input) {
                                            return Ok(Outcome::Done);
                                        }
                                        continue;
                                    }
                                    // Copy to tail with the updated value.
                                    let old = rec.read_value();
                                    if self.rcu_create(&slot, entry, key, input, Some(old)) {
                                        return Ok(Outcome::Done);
                                    }
                                    continue;
                                }
                                Region::OnDisk => unreachable!("resident record"),
                            }
                        }
                        None => {
                            // Not in memory. Distinguish "chain continues on
                            // disk" from "chain ends".
                            let disk = self.first_below(key, chain_head, head);
                            match disk {
                                Some(daddr) => {
                                    if f.is_mergeable() {
                                        // CRDT: no need to read the old value.
                                        if self.append_delta(&slot, entry, key, input) {
                                            return Ok(Outcome::Done);
                                        }
                                        continue;
                                    }
                                    return Err(OpError::Pending(self.issue_rmw_io(
                                        key,
                                        hash,
                                        input,
                                        daddr,
                                        entry.address(),
                                        reuse_id,
                                    )));
                                }
                                None => {
                                    // Absent: create from the initial value.
                                    if self.rcu_create(&slot, entry, key, input, None) {
                                        return Ok(Outcome::Done);
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                }
                CreateOutcome::Created(created) => {
                    let (addr, rec) = self.write_record(Address::INVALID, key, 0);
                    let f = &self.store.inner.functions;
                    f.initial_updater(key, input, unsafe { rec.value_mut() });
                    created.finalize(addr);
                    self.count_write(&self.rec.appends);
                    let post = rec.read_value();
                    self.wal_log(crate::walrec::KIND_PUT, key, Some(&post));
                    return Ok(Outcome::Done);
                }
            }
        }
    }

    /// Creates the RCU/initial record and CASes the index (Alg 4
    /// CREATE_RECORD). Returns false if the CAS lost (caller retries).
    fn rcu_create(
        &self,
        slot: &EntrySlot<'_>,
        entry: HashBucketEntry,
        key: &K,
        input: &F::Input,
        old: Option<V>,
    ) -> bool {
        // A tagged (read-cache) chain head must not be embedded in a durable
        // record header: splice past it to its primary address.
        let prev = self.chain_prev_for_new_record(entry.address());
        let (addr, rec) = self.write_record(prev, key, 0);
        let f = &self.store.inner.functions;
        let had_old = old.is_some();
        match old {
            Some(old) => f.copy_updater(key, input, &old, unsafe { rec.value_mut() }),
            None => f.initial_updater(key, input, unsafe { rec.value_mut() }),
        }
        match slot.cas_address(entry, addr) {
            Ok(()) => {
                // With an old value this is a read-copy-update; without one
                // it (re-)creates the key from the initial value.
                self.count_write(if had_old { &self.rec.rcu } else { &self.rec.appends });
                if had_old {
                    self.note_dead(1);
                }
                let post = rec.read_value();
                self.wal_log(crate::walrec::KIND_PUT, key, Some(&post));
                true
            }
            Err(_) => {
                rec.set_bits(INVALID_BIT);
                self.note_dead(1);
                false
            }
        }
    }

    /// Creates a CRDT delta record (partial value from the identity) at the
    /// tail (§6.3).
    fn append_delta(
        &self,
        slot: &EntrySlot<'_>,
        entry: HashBucketEntry,
        key: &K,
        input: &F::Input,
    ) -> bool {
        let prev = self.chain_prev_for_new_record(entry.address());
        let (addr, rec) = self.write_record(prev, key, DELTA_BIT);
        let f = &self.store.inner.functions;
        let identity = f.identity();
        f.copy_updater(key, input, &identity, unsafe { rec.value_mut() });
        match slot.cas_address(entry, addr) {
            Ok(()) => {
                self.count_write(&self.rec.appends);
                self.rec.deltas.inc();
                // The delta record is exclusively ours (fresh tail record),
                // so the logged partial is exact.
                let partial = rec.read_value();
                self.wal_log(crate::walrec::KIND_DELTA, key, Some(&partial));
                true
            }
            Err(_) => {
                rec.set_bits(INVALID_BIT);
                self.note_dead(1);
                false
            }
        }
    }

    // ============================================================== DELETE

    /// Deletes `key` by appending a tombstone record (§5.3). Log GC reclaims
    /// the space (Appendix C). Deleting an absent key is still `Done`;
    /// refuses with [`OpError::ReadOnly`] on a degraded store.
    pub fn delete(&self, key: &K) -> OpResult<F::Output> {
        self.writable()?;
        let t = self.op_timer();
        self.rec.deletes.inc();
        let hash = hash_key(key);
        self.delete_internal(key, hash);
        t.observe(&self.hub.delete_latency);
        self.maybe_refresh();
        Ok(Outcome::Done)
    }

    /// Tombstone append, shared by the scalar and batched paths.
    fn delete_internal(&self, key: &K, hash: KeyHash) {
        loop {
            let inner = &self.store.inner;
            match inner.index.find_tag(hash, Some(&self.guard)) {
                None => break, // nothing to delete
                Some(slot) => {
                    let entry = slot.load();
                    let prev = self.chain_prev_for_new_record(entry.address());
                    if !is_rc(entry.address())
                        && (!entry.address().is_valid()
                            || entry.address() < inner.log.begin_address())
                    {
                        // GC'd chain: drop the dangling entry (Appendix C).
                        let _ = slot.cas_delete(entry);
                        break;
                    }
                    let (addr, rec) = self.write_record(prev, key, TOMBSTONE_BIT);
                    // Tombstones carry no value; zeroed frame bytes suffice.
                    match slot.cas_address(entry, addr) {
                        Ok(()) => {
                            self.count_write(&self.rec.appends);
                            // The shadowed version plus the tombstone itself
                            // are both reclaimable by compaction.
                            self.note_dead(2);
                            self.wal_log(crate::walrec::KIND_DELETE, key, None);
                            break;
                        }
                        Err(_) => {
                            rec.set_bits(INVALID_BIT);
                            self.note_dead(1);
                            continue;
                        }
                    }
                }
            }
        }
    }

    // =============================================================== BATCH
    //
    // Batched issue (DESIGN.md §3 "Batched execution & prefetching"): the
    // scalar hot path pays a serial dependent-load chain per operation —
    // hash → bucket probe → record dereference — so each op stalls on two
    // DRAM round-trips. The batched entry points run that chain as a
    // MICA-style software pipeline over the whole batch: hash every key and
    // prefetch every target bucket, then probe every bucket and prefetch
    // every resolved record, then execute. The loads of one stage are
    // independent across ops, so their cache misses overlap up to the
    // memory-level parallelism of the core instead of serializing.
    //
    // Semantics are identical to issuing the ops sequentially on this
    // session: each op executes (and linearizes) one at a time in submission
    // order in the final stage; the earlier stages are pure hints plus an
    // index probe that the execute stage re-validates exactly the way the
    // scalar path does. Epoch refresh is amortized to once per batch, which
    // is also the natural cadence for draining I/O completions
    // ([`Session::complete_pending`] once per batch, not once per op).

    /// Reads a batch of keys with one shared `input`, returning one result
    /// per key in order. Equivalent to calling [`Session::read`] per key;
    /// pending results complete through [`Session::complete_pending`].
    pub fn read_batch(&self, keys: &[K], input: &F::Input) -> Vec<OpResult<F::Output>> {
        let inner = &self.store.inner;
        self.rec.batches.inc();
        self.rec.reads.add(keys.len() as u64);
        // Stage 1: hash every key, prefetch every target bucket.
        let mut hashes: Vec<KeyHash> = Vec::with_capacity(keys.len());
        for key in keys {
            let h = hash_key(key);
            inner.index.prefetch_bucket(h);
            hashes.push(h);
        }
        // Stage 2: probe the (now arriving) buckets; prefetch each resolved
        // chain head so the record lines are in flight before stage 3.
        let mut heads: Vec<Address> = Vec::with_capacity(keys.len());
        for &hash in &hashes {
            let head = match inner.index.find_tag(hash, Some(&self.guard)) {
                Some(slot) => slot.load().address(),
                None => Address::INVALID,
            };
            if is_rc(head) {
                if let Some(rc_log) = inner.rc.as_ref() {
                    rc_log.prefetch(rc_untag(head));
                }
            } else if head.is_valid() {
                inner.log.prefetch(head);
            }
            heads.push(head);
        }
        // Stage 2.5 (opt-in via `prefetch_prev_chain`): by now the head
        // lines issued in stage 2 are arriving, so dereferencing each head
        // header is cheap; prefetch one `prev` hop so collided chains don't
        // stall stage 3 on a second dependent load (ROADMAP prefetch
        // experiment — measured in EXPERIMENTS.md).
        if inner.cfg.prefetch_prev_chain {
            for &head in &heads {
                if !head.is_valid() || is_rc(head) {
                    continue;
                }
                if let Some(p) = inner.log.get(head) {
                    // Safety: epoch-protected resident record.
                    let prev = unsafe { RecordRef::<K, V>::from_raw(p) }.header().prev();
                    if prev.is_valid() && !is_rc(prev) && prev >= inner.log.head_address() {
                        inner.log.prefetch(prev);
                    }
                }
            }
        }
        // Stage 3: execute in submission order — the same walk as scalar
        // `read`, resumed from the already-probed chain head.
        let mut out = Vec::with_capacity(keys.len());
        for (i, key) in keys.iter().enumerate() {
            self.read_rc_hit.set(false);
            let r = if heads[i].is_valid() {
                self.read_internal(key, hashes[i], input, heads[i], None, Vec::new(), None)
            } else {
                self.finish_read(key, input, None)
            };
            self.classify_read(&r);
            out.push(r);
        }
        self.batch_tick(keys.len());
        out
    }

    /// Upserts a batch of key/value pairs. Equivalent to calling
    /// [`Session::upsert`] per pair, in order; on a read-only store the
    /// whole batch is refused (no prefix is applied).
    pub fn upsert_batch(&self, pairs: &[(K, V)]) -> Result<(), OpError> {
        self.writable()?;
        let inner = &self.store.inner;
        self.rec.batches.inc();
        self.rec.upserts.add(pairs.len() as u64);
        let mut hashes: Vec<KeyHash> = Vec::with_capacity(pairs.len());
        for (key, _) in pairs {
            let h = hash_key(key);
            inner.index.prefetch_bucket(h);
            hashes.push(h);
        }
        for (i, (key, value)) in pairs.iter().enumerate() {
            self.upsert_internal(key, hashes[i], value);
        }
        self.batch_tick(pairs.len());
        Ok(())
    }

    /// RMWs a batch of key/input pairs, returning one result per op in
    /// order. Equivalent to calling [`Session::rmw`] per pair; pending
    /// results complete through [`Session::complete_pending`]. On a
    /// read-only store every slot is `Err(ReadOnly)`.
    pub fn rmw_batch(&self, ops: &[(K, F::Input)]) -> Vec<OpResult<F::Output>> {
        if let Err(e) = self.writable() {
            return ops.iter().map(|_| Err(e.clone())).collect();
        }
        let inner = &self.store.inner;
        self.rec.batches.inc();
        self.rec.rmws.add(ops.len() as u64);
        let mut hashes: Vec<KeyHash> = Vec::with_capacity(ops.len());
        for (key, _) in ops {
            let h = hash_key(key);
            inner.index.prefetch_bucket(h);
            hashes.push(h);
        }
        let mut out = Vec::with_capacity(ops.len());
        for (i, (key, input)) in ops.iter().enumerate() {
            out.push(self.rmw_internal(key, hashes[i], input, None));
        }
        self.batch_tick(ops.len());
        out
    }

    /// Executes a heterogeneous batch, returning one [`OpResult`] per op in
    /// submission order. Equivalent to issuing each op individually: reads
    /// yield `Value`/`NotFound`/`Pending`, mutations yield `Done` (or
    /// `Pending` for an RMW that went asynchronous). On a read-only store
    /// the reads still execute; every mutation slot is `Err(ReadOnly)` —
    /// exactly what a protocol front-end needs to keep serving GETs while
    /// SETs bounce (DESIGN.md §12/§13).
    pub fn execute_batch(&self, ops: &[BatchOp<K, V, F::Input>]) -> Vec<OpResult<F::Output>> {
        let inner = &self.store.inner;
        self.rec.batches.inc();
        // One health check per batch, applied positionally to mutations.
        let refused = self.writable().err();
        for op in ops {
            match op {
                BatchOp::Read { .. } => self.rec.reads.inc(),
                BatchOp::Upsert { .. } => self.rec.upserts.inc(),
                BatchOp::Rmw { .. } => self.rec.rmws.inc(),
                BatchOp::Delete { .. } => self.rec.deletes.inc(),
            }
        }
        let mut hashes: Vec<KeyHash> = Vec::with_capacity(ops.len());
        for op in ops {
            let h = hash_key(op.key());
            inner.index.prefetch_bucket(h);
            hashes.push(h);
        }
        let mut out = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let hash = hashes[i];
            if let Some(e) = &refused {
                if !matches!(op, BatchOp::Read { .. }) {
                    out.push(Err(e.clone()));
                    continue;
                }
            }
            out.push(match op {
                BatchOp::Read { key, input } => {
                    self.read_rc_hit.set(false);
                    let r = self.read_internal(
                        key,
                        hash,
                        input,
                        Address::INVALID,
                        None,
                        Vec::new(),
                        None,
                    );
                    self.classify_read(&r);
                    r
                }
                BatchOp::Upsert { key, value } => {
                    self.upsert_internal(key, hash, value);
                    Ok(Outcome::Done)
                }
                BatchOp::Rmw { key, input } => self.rmw_internal(key, hash, input, None),
                BatchOp::Delete { key } => {
                    self.delete_internal(key, hash);
                    Ok(Outcome::Done)
                }
            });
        }
        self.batch_tick(ops.len());
        out
    }

    /// Returns up to `limit` historical versions of `key`, newest first, by
    /// walking the record chain across memory and storage (Appendix F:
    /// "query historical values of a given key (since our record versions
    /// are linked in the log)"). Deltas are folded into their successors'
    /// running value; a tombstone ends the history. Storage hops block —
    /// this is an analytics path, not an operation path.
    pub fn read_history(&self, key: &K, limit: usize) -> Vec<V> {
        let inner = &self.store.inner;
        let hash = hash_key(key);
        let mut out = Vec::new();
        let Some(slot) = inner.index.find_tag(hash, Some(&self.guard)) else {
            return out;
        };
        let mut addr = slot.load().address();
        let mut fallbacks: Vec<Address> = Vec::new();
        while out.len() < limit {
            if is_rc(addr) {
                addr = self.chain_prev_for_new_record(addr);
                continue;
            }
            if !addr.is_valid() || addr < inner.log.begin_address() {
                match fallbacks.pop() {
                    Some(a) => {
                        addr = a;
                        continue;
                    }
                    None => break,
                }
            }
            let parsed: Option<(RecordHeader, K, V, Option<Address>)> = match inner.log.get(addr) {
                Some(p) => {
                    let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                    let second = if rec.header().is_merge() {
                        Some(unsafe { MergeRecord::second_address(p) })
                    } else {
                        None
                    };
                    Some((rec.header(), rec.key(), rec.read_value(), second))
                }
                None => {
                    // Blocking storage hop (maintenance/analytics path).
                    let (tx, rx) = std::sync::mpsc::channel();
                    inner.log.read_async(
                        addr,
                        RecordRef::<K, V>::size(),
                        Box::new(move |r| {
                            let _ = tx.send(r);
                        }),
                    );
                    match rx.recv().ok().and_then(|r| r.ok()) {
                        Some(bytes) => RecordRef::<K, V>::parse_bytes(&bytes).map(|(h, k, v)| {
                            let second = if h.is_merge() {
                                Some(Address::new(
                                    u64::from_le_bytes(bytes[8..16].try_into().expect("size"))
                                        & Address::MASK,
                                ))
                            } else {
                                None
                            };
                            (h, k, v, second)
                        }),
                        None => None,
                    }
                }
            };
            let Some((h, k, v, second)) = parsed else { break };
            if let Some(sec) = second {
                fallbacks.push(sec);
                addr = h.prev();
                continue;
            }
            if h.is_invalid() || k != *key {
                addr = h.prev();
                continue;
            }
            if h.is_tombstone() {
                break;
            }
            out.push(v);
            addr = h.prev();
        }
        out
    }

    // ============================================================ helpers

    /// The `prev` pointer a new tail record should carry when the current
    /// chain head is `head`: tagged read-cache heads are spliced out
    /// (replaced by the primary address the cache record points at), since
    /// cache addresses are volatile and must never persist in record
    /// headers (Appendix D).
    fn chain_prev_for_new_record(&self, head: Address) -> Address {
        if !is_rc(head) {
            return head;
        }
        let inner = &self.store.inner;
        if let Some(rc_log) = inner.rc.as_ref() {
            if let Some(p) = rc_log.get(rc_untag(head)) {
                let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                return rec.header().prev();
            }
        }
        // Evicted: the hook is restoring the entry; our CAS (expected = the
        // stale tagged entry) will fail and the operation retries.
        Address::INVALID
    }

    /// Copies a cache record hit outside the cache's mutable region to the
    /// cache tail (second chance), re-pointing the index entry.
    fn rc_second_chance(&self, key: &K, hash: KeyHash, rec: &RecordRef<K, V>, tagged: Address) {
        let inner = &self.store.inner;
        let Some(rc_log) = inner.rc.as_ref() else { return };
        if rc_log.classify(rc_untag(tagged)) == Region::Mutable {
            return; // young enough already
        }
        let Some(slot) = inner.index.find_tag(hash, Some(&self.guard)) else { return };
        let cur = slot.load();
        if cur.address() != tagged {
            return; // chain moved on
        }
        let addr = rc_log.allocate(RecordRef::<K, V>::size() as u32, &self.guard);
        let p = rc_log.get(addr).expect("fresh cache allocation resident");
        let new_rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        new_rec.init_header(RecordHeader::new(rec.header().prev()));
        new_rec.init_key(key);
        unsafe { *new_rec.value_mut() = rec.read_value() };
        if slot.cas_address(cur, rc_tag(addr)).is_ok() {
            inner.metrics.read_cache.promotions.inc();
        }
    }

    /// After a disk read served a key whose record is the chain head,
    /// inserts a copy into the read cache (Appendix D read path).
    fn try_cache_insert(&self, key: &K, hash: KeyHash, value: &V, primary: Address) {
        let inner = &self.store.inner;
        let Some(rc_log) = inner.rc.as_ref() else { return };
        let Some(slot) = inner.index.find_tag(hash, Some(&self.guard)) else { return };
        let cur = slot.load();
        if cur.address() != primary {
            return; // only cache chain heads: anything else would hide
                    // newer records of other keys
        }
        let addr = rc_log.allocate(RecordRef::<K, V>::size() as u32, &self.guard);
        let p = rc_log.get(addr).expect("fresh cache allocation resident");
        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        rec.init_header(RecordHeader::new(primary));
        rec.init_key(key);
        unsafe { *rec.value_mut() = *value };
        if slot.cas_address(cur, rc_tag(addr)).is_ok() {
            inner.metrics.read_cache.inserts.inc();
        }
    }

    /// Allocates and initializes a record (header + key) at the tail.
    fn write_record(&self, prev: Address, key: &K, bits: u64) -> (Address, RecordRef<K, V>) {
        let inner = &self.store.inner;
        let addr = inner.log.allocate(RecordRef::<K, V>::size() as u32, &self.guard);
        let p = inner.log.get(addr).expect("fresh tail allocation is resident");
        // Safety: exclusive until published via the index CAS.
        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
        rec.init_header(RecordHeader::new(prev).with(bits));
        rec.init_key(key);
        (addr, rec)
    }

    /// Walks the in-memory chain from `from`, returning the first record
    /// matching `key` at an address `>= floor`. Merge records are followed
    /// (both prongs are at/below the disk boundary by construction).
    fn find_in_memory_above(&self, key: &K, from: Address, floor: Address) -> Option<Address> {
        let inner = &self.store.inner;
        let mut addr = from;
        while addr.is_valid() && addr >= floor && addr >= inner.log.begin_address() {
            let p = inner.log.get(addr)?;
            let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
            let h = rec.header();
            if !h.is_invalid() && !h.is_merge() && rec.key() == *key {
                return Some(addr);
            }
            addr = h.prev();
        }
        None
    }

    /// Walks the in-memory chain and returns the first address *below*
    /// `floor` (the disk continuation), if the in-memory prefix did not
    /// already contain `key`.
    fn first_below(&self, key: &K, from: Address, floor: Address) -> Option<Address> {
        let inner = &self.store.inner;
        let begin = inner.log.begin_address();
        let mut addr = from;
        while addr.is_valid() {
            if addr < begin {
                return None; // truncated by GC: treat as chain end
            }
            if addr < floor {
                return Some(addr);
            }
            let Some(p) = inner.log.get(addr) else { return Some(addr) };
            let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
            let h = rec.header();
            debug_assert!(h.is_invalid() || h.is_merge() || rec.key() != *key);
            addr = h.prev();
        }
        None
    }

    fn queue_fuzzy_retry(&self, key: &K, hash: KeyHash, input: &F::Input, reuse: Option<u64>) -> u64 {
        let id = reuse.unwrap_or_else(|| self.fresh_id());
        self.outstanding.set(self.outstanding.get() + 1);
        self.retries.borrow_mut().push_back(PendingOp {
            id,
            key: *key,
            hash,
            input: input.clone(),
            kind: PendingKind::RmwFuzzyRetry,
            read_addr: Address::INVALID,
            entry_addr: Address::INVALID,
            acc: None,
            fallbacks: Vec::new(),
            attempts: 0,
        });
        id
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_rmw_io(
        &self,
        key: &K,
        hash: KeyHash,
        input: &F::Input,
        addr: Address,
        entry_addr: Address,
        reuse: Option<u64>,
    ) -> u64 {
        let id = reuse.unwrap_or_else(|| self.fresh_id());
        self.rec.io_issued.inc();
        self.outstanding.set(self.outstanding.get() + 1);
        self.park_and_enqueue(PendingOp {
            id,
            key: *key,
            hash,
            input: input.clone(),
            kind: PendingKind::Rmw,
            read_addr: addr,
            entry_addr,
            acc: None,
            fallbacks: Vec::new(),
            attempts: 0,
        });
        id
    }

    // ================================================== pending completion

    /// Processes completed asynchronous operations and fuzzy retries,
    /// returning finished [`Completion`]s. With `wait`, blocks until nothing
    /// is outstanding — parked on the completion ring, not spinning.
    ///
    /// Each pass: run fuzzy retries, hand every queued SQE to the device in
    /// one `submit_all` batch, reap CQEs straight off the ring, and resume
    /// each continuation by id. Continuations that hop further down a chain
    /// queue fresh SQEs, which go out before the pass parks — the device is
    /// never idle while the session waits.
    pub fn complete_pending(&self, wait: bool) -> Vec<Completion<F::Output>> {
        let mut done = std::mem::take(&mut *self.done_backlog.borrow_mut());
        if self.outstanding.get() == 0 && self.wal_notices.borrow().is_empty() {
            // Nothing outstanding: nothing queued, nothing parked, nothing
            // in flight (every counted op is one of those), and no WAL
            // durability notice waiting for its CQE. In particular `wait`
            // must not touch the ring or the epoch here.
            debug_assert!(self.sq.borrow().is_empty() && self.pending.borrow().is_empty());
            self.wal_wait_if(wait);
            return done;
        }
        loop {
            // Fuzzy retries: by the time we're called again, the offending
            // address is usually below safe-read-only and takes the RCU path.
            let n_retries = self.retries.borrow().len();
            for _ in 0..n_retries {
                let op = { self.retries.borrow_mut().pop_front() }.expect("len checked");
                self.dec_outstanding();
                match self.rmw_internal(&op.key, op.hash, &op.input, Some(op.id)) {
                    Ok(_) => done.push(Completion { id: op.id, result: Ok(Outcome::Done) }),
                    Err(_) => { /* requeued under the same id */ }
                }
            }
            // Batched doorbell, then reap whatever has completed so far.
            self.submit_queued();
            self.reap_and_run(&mut done);
            // Continuations may have queued follow-up SQEs (next chain hop,
            // transient retry): submit them before deciding to park.
            self.submit_queued();
            if !wait || self.outstanding.get() == 0 {
                break;
            }
            // Waiting on the device: refresh (epoch triggers must keep
            // firing — our own I/O may be gated behind a flush), then park
            // on the ring's condvar until a CQE lands or the bounded
            // timeout forces another maintenance pass. No backoff spinning.
            self.refresh();
            self.ring.wait_nonempty(RING_WAIT);
        }
        self.wal_wait_if(wait);
        done
    }

    /// Ack-aware completion (DESIGN.md §10): a waiting `complete_pending`
    /// also blocks until this session's WAL appends are group-commit
    /// durable. A failed WAL returns immediately (the failure is sticky —
    /// no group will ever ack again); the loss itself is surfaced through
    /// [`Session::wait_wal_durable`] / [`Session::poll_wal_durable`], which
    /// keep erroring.
    fn wal_wait_if(&self, wait: bool) {
        if wait {
            let _ = self.wait_wal_durable();
        }
    }

    /// Hands every locally queued SQE to the device in one batch, sampling
    /// the in-flight depth the batch tops up to.
    fn submit_queued(&self) {
        let mut sq = self.sq.borrow_mut();
        if sq.is_empty() {
            return;
        }
        self.hub.io_depth.record(self.outstanding.get() as u64);
        self.store.inner.log.device().submit_all(&mut sq);
    }

    /// Reaps every published CQE and resumes the continuation each one
    /// keys. Returns the number of CQEs consumed.
    fn reap_and_run(&self, done: &mut Vec<Completion<F::Output>>) -> usize {
        let mut cqes = std::mem::take(&mut *self.io_scratch.borrow_mut());
        self.ring.reap(&mut cqes);
        let reaped = cqes.len();
        for cqe in cqes.drain(..) {
            // WAL durability notices share the ring but not the continuation
            // table (they are acks, not I/O): route them to their own slot.
            if self.wal_notices.borrow_mut().remove(&cqe.id) {
                let r = cqe.result.map(|_| ());
                if let Err(e) = &r {
                    // A failed group commit is sticky: degrade, and latch the
                    // session's own error so plain waits also report it.
                    self.store.inner.health.to_read_only(HealthReason::WalFailed);
                    let mut err = self.wal_error.borrow_mut();
                    if err.is_none() {
                        *err = Some(e.clone());
                    }
                }
                self.wal_notice_results.borrow_mut().insert(cqe.id, r);
                continue;
            }
            // Scope the table borrow: continuations re-enter `park_and_enqueue`.
            let parked = self.pending.borrow_mut().remove(&cqe.id);
            let Some(Parked { mut op, issued, span }) = parked else {
                debug_assert!(false, "CQE {} has no parked continuation", cqe.id);
                continue;
            };
            self.dec_outstanding();
            self.rec.io_completed.inc();
            // The reaper owns the completed half of the hlog read identity
            // (`make_read_sqe` counted the issue).
            self.store.inner.log.metrics().reads_completed.inc();
            self.hub.io_latency.record(issued.elapsed().as_nanos() as u64);
            match cqe.result {
                Ok(bytes) => {
                    let verified = match &span {
                        Some(s) => self.store.inner.log.verify_extract(s, bytes),
                        None => Ok(bytes),
                    };
                    match verified {
                        Ok(bytes) => self.continue_io(op, bytes, done),
                        Err(err) => {
                            // Checksum mismatch (or a short read): never hand
                            // the suspect bytes to the continuation, and never
                            // answer "key absent" — the record may exist, we
                            // just cannot prove what it held.
                            self.rec.io_failed.inc();
                            done.push(Completion { id: op.id, result: Err(OpError::Io(err)) });
                        }
                    }
                }
                Err(err @ faster_storage::IoError::Corrupt { .. }) => {
                    // Quarantined page (or corruption detected at issue
                    // time): permanent, no point retrying. Surface the typed
                    // failure; the fault hook has already degraded the store.
                    self.rec.io_failed.inc();
                    done.push(Completion { id: op.id, result: Err(OpError::Io(err)) });
                }
                Err(err @ faster_storage::IoError::Failed(_)) => {
                    // Transient device error: the record may well still
                    // be durable, so answering "key absent" here would
                    // fabricate a loss (and, for RMW, reset the value).
                    // Retry the same read with bounded backoff; only
                    // when the budget is exhausted surface a *distinct*
                    // failure completion that mutates nothing.
                    if op.attempts < MAX_IO_RETRIES {
                        op.attempts += 1;
                        self.rec.io_retries.inc();
                        let mut pause = faster_util::Backoff::new();
                        for _ in 0..op.attempts {
                            pause.snooze();
                        }
                        self.reissue_io(op);
                    } else {
                        self.rec.io_failed.inc();
                        done.push(Completion { id: op.id, result: Err(OpError::Io(err)) });
                    }
                }
                Err(_) => {
                    // Truncated (log GC) or out-of-range: the record is
                    // genuinely gone — key absent along this path.
                    match op.kind {
                        PendingKind::Read => {
                            let result = self.finish_read(&op.key, &op.input, op.acc.take());
                            done.push(Completion { id: op.id, result });
                        }
                        PendingKind::Rmw => {
                            if let Some(id) = self.rmw_complete(op, None) {
                                done.push(Completion { id, result: Ok(Outcome::Done) });
                            }
                        }
                        PendingKind::RmwFuzzyRetry => unreachable!("no I/O for fuzzy"),
                    }
                }
            }
        }
        // Hand the drain buffer back for reuse, shrinking a burst-sized
        // buffer so one deep drain doesn't pin its high-water capacity.
        if cqes.capacity() > IO_SCRATCH_MAX {
            cqes.shrink_to(IO_SCRATCH_MAX);
        }
        *self.io_scratch.borrow_mut() = cqes;
        reaped
    }

    /// Continues a pending op with the record bytes read from storage.
    fn continue_io(
        &self,
        mut op: PendingOp<K, V, F::Input>,
        bytes: Vec<u8>,
        done: &mut Vec<Completion<F::Output>>,
    ) {
        let parsed = RecordRef::<K, V>::parse_bytes(&bytes);
        match op.kind {
            PendingKind::Read => {
                let f = &self.store.inner.functions;
                let (next, finished): (Option<Address>, Option<OpResult<F::Output>>) = match parsed
                {
                    None => (Some(Address::INVALID), None), // padding/garbage: stop this prong
                    Some((h, k, v)) => {
                        if h.is_merge() {
                            let second = Address::new(
                                u64::from_le_bytes(bytes[8..16].try_into().expect("record size"))
                                    & Address::MASK,
                            );
                            op.fallbacks.push(second);
                            (Some(h.prev()), None)
                        } else if h.is_invalid() || k != op.key {
                            (Some(h.prev()), None)
                        } else if h.is_tombstone() {
                            let r = match op.acc.take() {
                                Some(a) => {
                                    let merged = f.merge(&f.identity(), &a);
                                    Ok(Outcome::Value(f.single_reader(&op.key, &op.input, &merged)))
                                }
                                None => Err(OpError::NotFound),
                            };
                            (None, Some(r))
                        } else if h.is_delta() {
                            op.acc = Some(match &op.acc {
                                Some(a) => f.merge(a, &v),
                                None => v,
                            });
                            (Some(h.prev()), None)
                        } else {
                            let out = match &op.acc {
                                Some(a) => {
                                    let merged = f.merge(&v, a);
                                    f.single_reader(&op.key, &op.input, &merged)
                                }
                                None => f.single_reader(&op.key, &op.input, &v),
                            };
                            if op.acc.is_none() {
                                // Appendix D: populate the read cache when
                                // the record read is still the chain head.
                                self.try_cache_insert(&op.key, op.hash, &v, op.read_addr);
                            }
                            (None, Some(Ok(Outcome::Value(out))))
                        }
                    }
                };
                if let Some(result) = finished {
                    done.push(Completion { id: op.id, result });
                    return;
                }
                let mut next_addr = next.expect("continue");
                let begin = self.store.inner.log.begin_address();
                loop {
                    if !next_addr.is_valid() || next_addr < begin {
                        match op.fallbacks.pop() {
                            Some(a) => {
                                next_addr = a;
                                continue;
                            }
                            None => {
                                let result = self.finish_read(&op.key, &op.input, op.acc);
                                done.push(Completion { id: op.id, result });
                                return;
                            }
                        }
                    }
                    break;
                }
                // Resume the walk (usually another disk hop; may also climb
                // back into memory after a merge-record fallback).
                let key = op.key;
                let hash = op.hash;
                let input = op.input.clone();
                let acc = op.acc.take();
                let fallbacks = std::mem::take(&mut op.fallbacks);
                let r =
                    self.read_internal(&key, hash, &input, next_addr, acc, fallbacks, Some(op.id));
                if !matches!(r, Err(OpError::Pending(_))) {
                    // read_internal with an id only returns these when it
                    // finished synchronously without queueing; normalize.
                    done.push(Completion { id: op.id, result: r });
                }
            }
            PendingKind::Rmw => {
                // Find the old value for this key along the disk chain.
                match parsed {
                    Some((h, k, v)) if !h.is_invalid() && k == op.key && !h.is_merge() => {
                        let old = if h.is_tombstone() { None } else { Some(v) };
                        if let Some(id) = self.rmw_complete(op, old) {
                            done.push(Completion { id, result: Ok(Outcome::Done) });
                        }
                    }
                    Some((h, _, _)) => {
                        let mut next = h.prev();
                        if h.is_merge() {
                            let second = Address::new(
                                u64::from_le_bytes(bytes[8..16].try_into().expect("size"))
                                    & Address::MASK,
                            );
                            op.fallbacks.push(second);
                        }
                        let begin = self.store.inner.log.begin_address();
                        if !next.is_valid() || next < begin {
                            next = op.fallbacks.pop().unwrap_or(Address::INVALID);
                        }
                        if !next.is_valid() || next < begin {
                            // Chain exhausted: key absent.
                            if let Some(id) = self.rmw_complete(op, None) {
                                done.push(Completion { id, result: Ok(Outcome::Done) });
                            }
                        } else {
                            // Another hop down the chain (fresh address,
                            // fresh transient-retry budget).
                            op.read_addr = next;
                            op.attempts = 0;
                            self.reissue_io(op);
                        }
                    }
                    None => {
                        if let Some(id) = self.rmw_complete(op, None) {
                            done.push(Completion { id, result: Ok(Outcome::Done) });
                        }
                    }
                }
            }
            PendingKind::RmwFuzzyRetry => unreachable!("no I/O for fuzzy retries"),
        }
    }

    /// Re-issues the record read for a pending op (next chain hop, or a
    /// bounded transient-failure retry of the same address). The op keeps
    /// its id, kind, and accumulated state. The SQE queues locally and goes
    /// out with the current `complete_pending` pass's next batch.
    fn reissue_io(&self, op: PendingOp<K, V, F::Input>) {
        self.rec.io_issued.inc();
        self.outstanding.set(self.outstanding.get() + 1);
        self.park_and_enqueue(op);
    }

    /// Applies a pending RMW's update once the old value (or its absence) is
    /// known. Returns the op id when complete, `None` if it went pending
    /// again (index changed underneath: full restart, Alg 4 line 32).
    fn rmw_complete(&self, op: PendingOp<K, V, F::Input>, old: Option<V>) -> Option<u64> {
        let inner = &self.store.inner;
        match inner.index.find_or_create_tag(op.hash, Some(&self.guard)) {
            CreateOutcome::Found(slot) => {
                let entry = slot.load();
                if entry.address() != op.entry_addr {
                    // The chain changed while we were reading: restart.
                    drop(slot);
                    return match self.rmw_internal(&op.key, op.hash, &op.input, Some(op.id)) {
                        Ok(_) => Some(op.id),
                        Err(_) => None, // requeued pending under the same id
                    };
                }
                if self.rcu_create(&slot, entry, &op.key, &op.input, old) {
                    Some(op.id)
                } else {
                    match self.rmw_internal(&op.key, op.hash, &op.input, Some(op.id)) {
                        Ok(_) => Some(op.id),
                        Err(_) => None, // requeued pending under the same id
                    }
                }
            }
            CreateOutcome::Created(created) => {
                // Entry vanished (deleted) meanwhile: fresh initial record.
                let (addr, rec) = self.write_record(Address::INVALID, &op.key, 0);
                let f = &self.store.inner.functions;
                f.initial_updater(&op.key, &op.input, unsafe { rec.value_mut() });
                created.finalize(addr);
                self.count_write(&self.rec.appends);
                let post = rec.read_value();
                self.wal_log(crate::walrec::KIND_PUT, &op.key, Some(&post));
                Some(op.id)
            }
        }
    }

    // ========================================================== WAL replay

    /// Reapplies one decoded WAL record during recovery (DESIGN.md §10).
    /// Only runs on a store whose WAL is not yet attached (recovery wires
    /// the resumed log in after the suffix is replayed), so nothing here
    /// re-appends.
    pub(crate) fn replay_wal_op(&self, op: crate::walrec::WalOp<K, V>) {
        debug_assert!(self.store.inner.wal.get().is_none(), "WAL replay with a WAL attached");
        match op {
            crate::walrec::WalOp::Put { key, value } => self.replay_put(&key, &value),
            crate::walrec::WalOp::Delete { key } => self.delete_internal(&key, hash_key(&key)),
            crate::walrec::WalOp::Delta { key, partial } => self.replay_delta(&key, &partial),
        }
        self.maybe_refresh();
    }

    /// Physical redo of a full post-image: appends a record holding exactly
    /// `value` — no writer callbacks, the bytes already are the result the
    /// original operation produced. Idempotent, so records double-covered
    /// by a fuzzy checkpoint converge to the same state.
    fn replay_put(&self, key: &K, value: &V) {
        let hash = hash_key(key);
        loop {
            let inner = &self.store.inner;
            match inner.index.find_or_create_tag(hash, Some(&self.guard)) {
                CreateOutcome::Found(slot) => {
                    let entry = slot.load();
                    let prev = self.chain_prev_for_new_record(entry.address());
                    let (addr, rec) = self.write_record(prev, key, 0);
                    unsafe { *rec.value_mut() = *value };
                    match slot.cas_address(entry, addr) {
                        Ok(()) => {
                            self.count_write(&self.rec.appends);
                            return;
                        }
                        Err(_) => {
                            rec.set_bits(INVALID_BIT);
                            continue;
                        }
                    }
                }
                CreateOutcome::Created(created) => {
                    let (addr, rec) = self.write_record(Address::INVALID, key, 0);
                    unsafe { *rec.value_mut() = *value };
                    created.finalize(addr);
                    self.count_write(&self.rec.appends);
                    return;
                }
            }
        }
    }

    /// Redo of a CRDT delta: re-appends the partial atop the key's chain,
    /// or folds it into a fresh full value when no chain exists anymore
    /// (merge with the identity is exactly the partial's contribution).
    fn replay_delta(&self, key: &K, partial: &V) {
        let hash = hash_key(key);
        loop {
            let inner = &self.store.inner;
            let f = &inner.functions;
            match inner.index.find_or_create_tag(hash, Some(&self.guard)) {
                CreateOutcome::Found(slot) => {
                    let entry = slot.load();
                    let prev = self.chain_prev_for_new_record(entry.address());
                    let (addr, rec) = self.write_record(prev, key, DELTA_BIT);
                    unsafe { *rec.value_mut() = *partial };
                    match slot.cas_address(entry, addr) {
                        Ok(()) => {
                            self.count_write(&self.rec.appends);
                            self.rec.deltas.inc();
                            return;
                        }
                        Err(_) => {
                            rec.set_bits(INVALID_BIT);
                            continue;
                        }
                    }
                }
                CreateOutcome::Created(created) => {
                    let (addr, rec) = self.write_record(Address::INVALID, key, 0);
                    let full = f.merge(&f.identity(), partial);
                    unsafe { *rec.value_mut() = full };
                    created.finalize(addr);
                    self.count_write(&self.rec.appends);
                    return;
                }
            }
        }
    }
}

impl<K: Pod, V: Pod, F: Functions<K, V>> Drop for Session<K, V, F> {
    fn drop(&mut self) {
        // Outstanding I/O callbacks only touch the Arc'd queue; results for a
        // dropped session are simply discarded. The guard's Drop releases the
        // epoch slot (§2.5 Release). The recorder folds into the hub's
        // retired accumulator so store-wide totals survive session churn.
        self.hub.retire(&self.rec);
    }
}
