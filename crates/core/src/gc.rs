//! Log garbage collection (Appendix C).
//!
//! Two mechanisms, as in the paper:
//!
//! * **Expiration** — [`FasterKv::truncate_until`] drops a log prefix
//!   outright ("data stored in cloud providers often has a maximum time to
//!   live"). Index entries and record chains pointing below the new begin
//!   address are treated as dangling and lazily removed when encountered.
//! * **Roll to tail** — [`FasterKv::compact_until`] scans a prefix and
//!   copies *live* key-values to the tail before truncating. Liveness is
//!   exact: a record is copied only if no newer record for its key exists
//!   above it, checked by tracing the chain (with blocking device reads for
//!   the cold part — compaction is a maintenance path).

use crate::record::{RecordHeader, RecordRef, DELTA_BIT, INVALID_BIT};
use crate::{hash_key, FasterKv, Functions, Session};
use faster_hlog::LogScanner;
use faster_index::CreateOutcome;
use faster_util::{Address, Pod};

impl<K: Pod + Eq, V: Pod, F: Functions<K, V>> FasterKv<K, V, F> {
    /// Expiration-based GC: invalidates everything below `addr`.
    ///
    /// When the store is checkpointed through a
    /// [`crate::ckpt_manager::CheckpointManager`], truncate through
    /// [`crate::ckpt_manager::CheckpointManager::gc_truncate`] instead: raw
    /// truncation can climb above the `begin` of a retained checkpoint
    /// generation and silently destroy its fallback replayability.
    pub fn truncate_until(&self, addr: Address) {
        self.inner.log.shift_begin_address(addr);
    }

    /// Roll-to-tail compaction: copies records in `[begin, until)` that are
    /// still live to the tail, then truncates. Returns the number of records
    /// rolled forward. Run from a maintenance thread with its own session.
    pub fn compact_until(&self, until: Address, session: &Session<K, V, F>) -> u64 {
        self.compact_until_clamped(until, until, session)
    }

    /// [`compact_until`](Self::compact_until) for checkpoint-aware callers:
    /// scans (and rolls) up to `until` but truncates only to `truncate_to`
    /// (≤ `until`). Rolling a live record to the tail is always safe;
    /// truncation is what can orphan a retained checkpoint generation, so
    /// only it takes the manager's clamp
    /// ([`crate::ckpt_manager::CheckpointManager::safe_truncation_bound`]).
    pub fn compact_until_clamped(
        &self,
        until: Address,
        truncate_to: Address,
        session: &Session<K, V, F>,
    ) -> u64 {
        let inner = &self.inner;
        let until = until.min(inner.log.safe_read_only_address());
        let rec_size = RecordRef::<K, V>::size();
        let mut rolled = 0u64;
        for page in LogScanner::new(&inner.log, inner.log.begin_address(), until) {
            let Ok(page) = page else { continue };
            let mut off = page.start_offset;
            while off + rec_size <= page.end_offset {
                let slice = &page.bytes[off..off + rec_size];
                let addr = Address::new(page.base.raw() + off as u64);
                off += rec_size;
                let Some((header, key, value)) = RecordRef::<K, V>::parse_bytes(slice) else {
                    break; // padding: rest of page is empty
                };
                if header.is_invalid() || header.is_merge() || header.is_tombstone() {
                    continue;
                }
                // Exact liveness: any newer record for this key above `addr`
                // supersedes it (deltas don't supersede their base).
                match self.newest_version_above(&key, addr, !header.is_delta(), session) {
                    Some(_) => {} // superseded
                    None => {
                        if self.copy_to_tail(&key, &value, header, session) {
                            rolled += 1;
                        }
                    }
                }
                session.refresh();
            }
        }
        self.truncate_until(truncate_to.min(until));
        rolled
    }

    /// Finds the newest record for `key` strictly above `bound`.
    /// `bases_only` ignores delta records (a delta above a base does not
    /// supersede the base). Blocking reads for the cold chain.
    fn newest_version_above(
        &self,
        key: &K,
        bound: Address,
        _bases_only: bool,
        session: &Session<K, V, F>,
    ) -> Option<Address> {
        let inner = &self.inner;
        let hash = hash_key(key);
        let slot = inner.index.find_tag(hash, Some(session.guard()))?;
        let mut addr = slot.load().address();
        let mut fallbacks: Vec<Address> = Vec::new();
        loop {
            if crate::read_cache::is_rc(addr) {
                // Read-cache head: skip to the primary record it caches.
                match inner.rc.as_ref().and_then(|rc| rc.get(crate::read_cache::rc_untag(addr))) {
                    Some(p) => {
                        let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                        addr = rec.header().prev();
                        continue;
                    }
                    None => return None, // evicted mid-scan; compaction CAS will catch changes
                }
            }
            if !addr.is_valid() || addr <= bound || addr < inner.log.begin_address() {
                match fallbacks.pop() {
                    Some(a) => {
                        addr = a;
                        continue;
                    }
                    None => return None,
                }
            }
            let (header, rec_key) = match inner.log.get(addr) {
                Some(p) => {
                    let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                    (rec.header(), Some(rec.key()))
                }
                None => match self.read_record_blocking(addr) {
                    Some((h, k, _)) => (h, Some(k)),
                    None => (RecordHeader(INVALID_BIT | crate::record::LIVE_BIT), None),
                },
            };
            if header.is_merge() {
                if let Some(p) = inner.log.get(addr) {
                    fallbacks.push(unsafe { crate::record::MergeRecord::second_address(p) });
                }
                addr = header.prev();
                continue;
            }
            if !header.is_invalid() {
                if let Some(k) = rec_key {
                    if k == *key && !header.is_delta() {
                        return Some(addr);
                    }
                }
            }
            addr = header.prev();
        }
    }

    /// Synchronous record read (maintenance paths only).
    fn read_record_blocking(&self, addr: Address) -> Option<(RecordHeader, K, V)> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.inner.log.read_async(
            addr,
            RecordRef::<K, V>::size(),
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        );
        let bytes = rx.recv().ok()?.ok()?;
        RecordRef::<K, V>::parse_bytes(&bytes)
    }

    /// Re-appends `(key, value)` at the tail iff the entry is unchanged
    /// since the liveness check (otherwise a newer update owns the key).
    fn copy_to_tail(&self, key: &K, value: &V, header: RecordHeader, session: &Session<K, V, F>) -> bool {
        let inner = &self.inner;
        let hash = hash_key(key);
        match inner.index.find_or_create_tag(hash, Some(session.guard())) {
            CreateOutcome::Found(slot) => {
                let entry = slot.load();
                let addr = inner.log.allocate(RecordRef::<K, V>::size() as u32, session.guard());
                let p = inner.log.get(addr).expect("fresh allocation resident");
                let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                let bits = if header.is_delta() { DELTA_BIT } else { 0 };
                rec.init_header(RecordHeader::new(entry.address()).with(bits));
                rec.init_key(key);
                unsafe { *rec.value_mut() = *value };
                if slot.cas_address(entry, addr).is_ok() {
                    true
                } else {
                    rec.set_bits(INVALID_BIT);
                    inner.log.note_dead_bytes(RecordRef::<K, V>::size() as u64);
                    // Entry changed: a fresh update supersedes the old record
                    // anyway, so dropping it is correct.
                    false
                }
            }
            CreateOutcome::Created(created) => {
                let addr = inner.log.allocate(RecordRef::<K, V>::size() as u32, session.guard());
                let p = inner.log.get(addr).expect("fresh allocation resident");
                let rec = unsafe { RecordRef::<K, V>::from_raw(p) };
                let bits = if header.is_delta() { DELTA_BIT } else { 0 };
                rec.init_header(RecordHeader::new(Address::INVALID).with(bits));
                rec.init_key(key);
                unsafe { *rec.value_mut() = *value };
                created.finalize(addr);
                true
            }
        }
    }
}
