//! On-line index resizing (Appendix B).
//!
//! Resizing doubles (grow) or halves (shrink) the bucket table while
//! concurrent latch-free operations continue. The protocol:
//!
//! 1. The initiator CASes `ResizeStatus` from *stable* to **prepare-to-resize**
//!    (same active version), allocates the new table, and publishes a
//!    [`ResizeRun`] describing the migration (chunk pins, done flags).
//! 2. It bumps the epoch with a trigger that atomically flips the status to
//!    **resizing** with the *new* version active. Because the trigger fires
//!    only once the pre-bump epoch is safe, every thread is guaranteed to have
//!    seen the prepare phase — and therefore to be pinning chunks — before any
//!    chunk is frozen.
//! 3. The old table is divided into `n` contiguous chunks, each with a pin
//!    word (see *Prioritized claims* below). In the prepare phase, operations
//!    pin the chunk they touch; a migrator freezes a chunk once its pin count
//!    drains to zero. Operations that are refused a pin re-read the status
//!    and switch to the resizing path.
//! 4. In the resizing phase, an operation first ensures the chunk(s) feeding
//!    its new bucket are migrated — migrating them itself if unclaimed
//!    (threads "co-operatively grab chunks"), backing off exponentially
//!    otherwise — then proceeds on the new table.
//! 5. When the migrated-chunk count reaches `n`, the finishing thread sets
//!    the status back to *stable* and normal operation resumes.
//!
//! ## Prioritized claims (the pin word)
//!
//! The paper freezes a chunk by CASing its pin count from `0` to −∞. Taken
//! literally that rule livelocks: the CAS only succeeds at an *instant* when
//! the count is exactly zero, and under continuous traffic prepare-phase
//! pinners re-pin faster than they drain, so the instant never comes — on a
//! single-core host the spinning migrator additionally starves the pinners
//! it is waiting on, and `grow` stalls indefinitely. We therefore give
//! migration **priority over new pins**. Each chunk's pin word packs three
//! fields into one `AtomicI64`:
//!
//! ```text
//!   bit 63 (sign)   FROZEN   — chunk claimed for exclusive migration (−∞)
//!   bit 62          INTENT   — a migrator has announced a pending freeze
//!   bits 0..62      count    — active prepare-phase pins
//! ```
//!
//! * `try_pin` increments the count **only if** the word is non-negative and
//!   `INTENT` is clear; otherwise the operation re-routes.
//! * A migrator first `fetch_or`s `INTENT` (refusing all future pins), then
//!   CASes `INTENT → FROZEN`, which can only succeed once the count is zero.
//!   `INTENT` is never cleared: each chunk freezes exactly once per run.
//!
//! **Progress argument.** Once `INTENT` is set on chunk `c`: (a) no new pin
//! on `c` can succeed, so the count is non-increasing; (b) every existing pin
//! is held only across one bounded index operation (pins never span waits on
//! other chunks — an operation holds at most one pin, and the only loop that
//! runs while pinned is the two-phase-insert duplicate backoff, which waits
//! on another *pinner* of the same bucket, never on migration — so there is
//! no cycle between pin-holders and the freeze); therefore the count drains
//! to zero in a bounded number of pinner steps and the first `INTENT → FROZEN`
//! CAS thereafter succeeds. All wait loops use exponential [`Backoff`]
//! (spin → yield → capped sleep), so on a single-core host waiters' CPU
//! share decays geometrically and the pinners/migrator being waited on get
//! scheduled — the drain bound above becomes a wall-clock bound. Guardless
//! waiters additionally call [`faster_epoch::Epoch::drive`] each iteration so
//! an epoch-gated phase flip can never strand them.
//!
//! Tentative two-phase inserts interact with freezing in one more way:
//! `collect_entries` skips tentative entries, so an insert whose tentative
//! claim straddles a freeze could be dropped. Guarded (and pinned) inserters
//! are safe — the `CreatedEntry` retains the chunk pin until finalize — and
//! guardless inserters are repaired by finalize-time validation in
//! `HashIndex` (see `CreatedEntry::finalize`).
//!
//! **Record migration** walks each index entry's record chain (via
//! [`RecordAccess`]), re-derives each record's new `(offset, tag)` from its
//! key hash, regroups and relinks the chains, and installs entries in the new
//! table.
//!
//! **What migration may touch:** only records in the log's *mutable region*
//! are regrouped and relinked. Anything at or below the read-only boundary —
//! sealed, flushed, or on disk — is treated as an opaque chain tail: a
//! rewrite there would race the flush (the disk copy would keep the old
//! pointer, losing the relink on eviction). A split therefore makes both
//! destination entries point at the same tail, and a merge joins two tails
//! through a caller-allocated *meta record*
//! ([`RecordAccess::try_alloc_merge_meta`]) — exactly the Appendix B
//! treatment, with the boundary drawn at mutability rather than memory
//! residency. Meta allocation happens *inside* the walk→relink window on
//! the log's refresh-free fast path: as long as the migrator's epoch entry
//! does not advance, pages sealed during the window — by its own
//! allocations or by concurrent appenders — cannot flush or evict, so the
//! classification stays valid until every relink is written. Allocation
//! backpressure aborts and restarts the window (see `migrate_pair_shrink`).

use crate::bucket::{BucketArray, ENTRIES_PER_BUCKET};
use crate::entry::HashBucketEntry;
use crate::{HashIndex, Phase, Status};
use faster_epoch::EpochGuard;
use faster_util::{Address, Backoff, CacheAligned, KeyHash};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How the resizer reads and relinks records owned by the record allocator.
///
/// The index stores only `(tag, address)`; splitting or merging buckets
/// requires re-hashing record keys, which only the allocator layer can do.
pub trait RecordAccess: Send + Sync {
    /// The key hash of the record at `addr`, or `None` if the record must
    /// not be walked into — not resident, **or resident but outside the
    /// log's mutable region** (sealed/flushed records may not be relinked;
    /// see the module docs, "what migration may touch").
    fn record_hash(&self, addr: Address) -> Option<KeyHash>;

    /// The previous-record pointer of the record at `addr`.
    /// Called only for addresses where `record_hash` returned `Some`.
    fn record_prev(&self, addr: Address) -> Address;

    /// Rewrites the previous-record pointer of the mutable record at
    /// `addr`. The resizer has exclusive structural access to the chain
    /// (its chunk is frozen), so this is a plain store on the header word.
    fn set_record_prev(&self, addr: Address, prev: Address);

    /// Attempts to allocate one *merge meta-record* (shrink only) on the
    /// record allocator's **refresh-free fast path**, returning `None` on
    /// allocation backpressure.
    ///
    /// The refresh-free contract is the point: a successful call must not
    /// advance the calling thread's epoch entry, because the resizer calls
    /// this inside the walk→relink window whose safety depends on that
    /// entry staying put (see `migrate_pair_shrink`). Sealing a log page on
    /// the way is fine — the seal's flush/evict triggers cannot fire past
    /// the pinned entry. On `None` the *caller* relieves the backpressure
    /// (refresh or drive, with backoff) and restarts its window; it must
    /// not be relieved here, since a refresh invalidates the caller's chain
    /// classification. (An implementation that instead blocked on a second
    /// guard would also self-deadlock: the caller's stale entry gates the
    /// very page-close trigger the spin waits on — observed in grow→shrink
    /// round trips with a full mutable region.)
    ///
    /// The meta is initialized pointing nowhere; the resizer aims it with
    /// [`RecordAccess::set_merge_meta`]. A meta abandoned un-aimed must be
    /// inert log garbage.
    fn try_alloc_merge_meta(&self, guard: Option<&EpochGuard>) -> Option<Address>;

    /// Points the merge meta-record at `meta` at the two chains `a` and `b`,
    /// so a single index entry can reach both prior linked lists. Called in
    /// the same refresh-free window that allocated `meta`, so the meta is
    /// necessarily still resident and not yet flushed.
    fn set_merge_meta(&self, meta: Address, a: Address, b: Address);
}

/// Sentinel pin value marking a frozen chunk (the paper's −∞).
const FROZEN: i64 = i64::MIN;
/// Claim-intent bit: a migrator has announced a pending freeze; `try_pin`
/// must refuse. Positive, so `word < 0` still means exactly "frozen".
const INTENT: i64 = 1 << 62;

/// The per-chunk pin/claim words implementing the prioritized-claim protocol
/// (see the module docs for the word layout and progress argument).
///
/// Public so the deterministic stress harness (`faster-stress`) can drive the
/// exact production protocol one step at a time and replay schedules against
/// it; everything else goes through [`ResizeRun`], which wraps pins in RAII
/// [`ChunkPin`] guards.
pub struct ChunkPins {
    pins: Vec<CacheAligned<AtomicI64>>,
}

impl ChunkPins {
    /// One zeroed pin word per chunk.
    pub fn new(n_chunks: usize) -> Self {
        Self { pins: (0..n_chunks).map(|_| CacheAligned::new(AtomicI64::new(0))).collect() }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.pins.len()
    }

    /// True if there are no chunks.
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// Prepare-phase pin: increments the chunk's pin count unless the chunk
    /// is frozen **or a freeze has been announced** (claim intent). Returns
    /// false in the latter cases; the operation must re-route.
    pub fn try_pin(&self, chunk: usize) -> bool {
        let cell = &self.pins[chunk].0;
        let mut v = cell.load(Ordering::SeqCst);
        loop {
            if v < 0 || v & INTENT != 0 {
                return false;
            }
            match cell.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(cur) => v = cur,
            }
        }
    }

    /// Releases a pin obtained from [`ChunkPins::try_pin`].
    pub fn unpin(&self, chunk: usize) {
        let prev = self.pins[chunk].0.fetch_sub(1, Ordering::SeqCst);
        // A freeze can only succeed at pin count 0, so a live pin implies the
        // word was never frozen under us.
        debug_assert!(prev & !INTENT > 0, "unpin without a pin");
    }

    /// Announces claim intent on a chunk (idempotent): no `try_pin` succeeds
    /// afterwards, so the pin count can only drain. Intent is never cleared.
    pub fn announce_intent(&self, chunk: usize) {
        let cell = &self.pins[chunk].0;
        if cell.load(Ordering::SeqCst) >= 0 {
            // fetch_or on an already-FROZEN word would perturb the sentinel;
            // a frozen chunk needs no announcement. (A racing freeze between
            // the load and the fetch_or still leaves the word negative ⇒
            // still treated as frozen everywhere.)
            cell.fetch_or(INTENT, Ordering::SeqCst);
        }
    }

    /// Attempts to freeze the chunk for exclusive migration: announces
    /// intent, then CASes `INTENT → FROZEN`, which succeeds iff the pin
    /// count has drained to zero. At most one caller ever wins a chunk.
    pub fn try_freeze(&self, chunk: usize) -> bool {
        let cell = &self.pins[chunk].0;
        if cell.load(Ordering::SeqCst) < 0 {
            return false; // already frozen
        }
        self.announce_intent(chunk);
        cell.compare_exchange(INTENT, FROZEN, Ordering::SeqCst, Ordering::SeqCst).is_ok()
    }

    /// True once the chunk has been frozen for migration.
    pub fn is_frozen(&self, chunk: usize) -> bool {
        self.pins[chunk].0.load(Ordering::SeqCst) < 0
    }

    /// True once a migrator has announced (or completed) a freeze.
    pub fn has_intent(&self, chunk: usize) -> bool {
        let v = self.pins[chunk].0.load(Ordering::SeqCst);
        v < 0 || v & INTENT != 0
    }

    /// Current pin count (diagnostics; 0 for a frozen chunk).
    pub fn pin_count(&self, chunk: usize) -> i64 {
        let v = self.pins[chunk].0.load(Ordering::SeqCst);
        if v < 0 {
            0
        } else {
            v & !INTENT
        }
    }
}

impl Default for ChunkPins {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Shared state of one resize operation.
pub(crate) struct ResizeRun {
    pub grow: bool,
    pub old_version: usize,
    pub new_version: usize,
    #[allow(dead_code)]
    pub old_k: u8,
    pub new_k: u8,
    pub chunk_size: usize,
    pub n_chunks: usize,
    pins: ChunkPins,
    done: Vec<AtomicBool>,
    chunks_done: AtomicUsize,
    access: Arc<dyn RecordAccess>,
}

impl ResizeRun {
    fn new(
        grow: bool,
        old_version: usize,
        old_k: u8,
        max_chunks: usize,
        access: Arc<dyn RecordAccess>,
    ) -> Self {
        let old_len = 1usize << old_k;
        // For shrink, migration operates on *pairs* of old buckets, so a
        // chunk must contain at least two buckets and be pair-aligned.
        let cap = if grow { old_len } else { old_len / 2 };
        let n_chunks = max_chunks.next_power_of_two().min(cap.max(1));
        let chunk_size = old_len / n_chunks;
        Self {
            grow,
            old_version,
            new_version: 1 - old_version,
            old_k,
            new_k: if grow { old_k + 1 } else { old_k - 1 },
            chunk_size,
            n_chunks,
            pins: ChunkPins::new(n_chunks),
            done: (0..n_chunks).map(|_| AtomicBool::new(false)).collect(),
            chunks_done: AtomicUsize::new(0),
            access,
        }
    }

    /// The migration chunk containing old-table bucket `old_bucket`.
    #[inline]
    pub fn chunk_of(&self, old_bucket: usize) -> usize {
        old_bucket / self.chunk_size
    }

    /// Prepare-phase pin: increments the chunk's pin count unless the chunk
    /// is frozen or a migrator has announced claim intent. Returns `None` in
    /// the latter cases (the operation re-routes — migration has priority).
    pub fn try_pin(self: &Arc<Self>, chunk: usize) -> Option<ChunkPin> {
        if self.pins.try_pin(chunk) {
            Some(ChunkPin { run: self.clone(), chunk })
        } else {
            None
        }
    }

    /// Attempts to freeze an unmigrated chunk for exclusive migration:
    /// announces intent (refusing new pins from then on), then freezes once
    /// the existing pins drain.
    fn try_claim(&self, chunk: usize) -> bool {
        !self.done[chunk].load(Ordering::SeqCst) && self.pins.try_freeze(chunk)
    }

    fn is_done(&self, chunk: usize) -> bool {
        self.done[chunk].load(Ordering::SeqCst)
    }
}

/// An operation's pin on a migration chunk during the prepare phase.
/// Dropping it decrements the pin count, releasing the chunk to migrators.
pub(crate) struct ChunkPin {
    run: Arc<ResizeRun>,
    chunk: usize,
}

impl Drop for ChunkPin {
    fn drop(&mut self) {
        self.run.pins.unpin(self.chunk);
    }
}

/// Validates that `run` matches the current status (guards against reading a
/// previous resize's leftover run).
pub(crate) fn run_matches(run: &ResizeRun, s: Status) -> bool {
    match s.phase {
        Phase::Prepare => run.old_version == s.version,
        Phase::Resizing => run.new_version == s.version,
        Phase::Stable => false,
    }
}

/// Full resize driver (grow or shrink). Returns false if the index was not
/// in the stable phase (a resize is already running) or cannot shrink
/// further.
pub(crate) fn resize(
    index: &HashIndex,
    access: Arc<dyn RecordAccess>,
    guard: Option<&EpochGuard>,
    grow: bool,
) -> bool {
    let s = index.status();
    if s.phase != Phase::Stable {
        return false;
    }
    let old_arr = unsafe { &*index.versions_ptr(s.version).load(Ordering::SeqCst) };
    let old_k = old_arr.k_bits();
    if !grow && old_k <= 1 {
        return false;
    }

    // Step 1: claim the resize by entering prepare (same version active).
    let prepare = HashIndex::encode(Status { phase: Phase::Prepare, version: s.version });
    if index
        .status_cell()
        .compare_exchange(HashIndex::encode(s), prepare, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return false;
    }

    // A resizer without a session must still drive the epoch: the phase
    // flips below are bump_with triggers, and triggers only fire when some
    // guard refreshes (or another bump lands). If every session exits after
    // the bump, no thread would ever drain the trigger and the wait loops
    // below would spin forever. A temporary guard of our own closes that
    // hole — its refresh() both advances past the bump and drains.
    let own_guard = if guard.is_none() { Some(index.epoch().acquire()) } else { None };
    let guard = guard.or(own_guard.as_ref());

    // Step 2: allocate the new table and publish the run.
    let run = Arc::new(ResizeRun::new(grow, s.version, old_k, index.max_resize_chunks(), access));
    let new_arr = Box::into_raw(Box::new(BucketArray::new(run.new_k)));
    index.versions_ptr(run.new_version).store(new_arr, Ordering::SeqCst);
    *index.run_cell().write() = Some(run.clone());

    // Step 3: trigger the prepare -> resizing flip once the epoch is safe.
    let status_cell = index.status_cell_arc();
    let resizing = HashIndex::encode(Status { phase: Phase::Resizing, version: run.new_version });
    index.epoch().bump_with(move || status_cell.store(resizing, Ordering::SeqCst));

    // Step 4: wait for the flip (refreshing our own guard so the trigger can
    // fire), then participate in migration. The *whole* migration can come
    // and go between two observations of the status — operation threads see
    // the flip first, cooperatively migrate every chunk, and flip back to
    // stable while this thread sleeps in its backoff — so completion of the
    // run, not the Resizing phase, is the exit condition; waiting on the
    // phase alone misses the window and spins forever.
    let mut backoff = Backoff::new();
    loop {
        let s = index.status();
        if s.phase == Phase::Resizing && s.version == run.new_version {
            participate(index, &run, guard);
            break;
        }
        if run.chunks_done.load(Ordering::SeqCst) == run.n_chunks {
            break;
        }
        wait_step(index, guard, &mut backoff);
    }

    // Step 5: wait for stability, then retire the old table.
    backoff.reset();
    while index.status().phase != Phase::Stable {
        wait_step(index, guard, &mut backoff);
    }
    let old_ptr = index.versions_ptr(run.old_version).swap(std::ptr::null_mut(), Ordering::SeqCst);
    index.retire_array(old_ptr);
    true
}

/// One iteration of a wait loop: keep the epoch moving (guarded waiters
/// refresh their entry; guardless waiters drive the drain list directly so an
/// epoch-gated transition cannot strand them), then back off exponentially so
/// the wait does not starve the thread being waited on.
fn wait_step(index: &HashIndex, guard: Option<&EpochGuard>, backoff: &mut Backoff) {
    index.metrics().resize_backoffs.inc();
    match guard {
        Some(g) => g.refresh(),
        None => index.epoch().drive(),
    }
    backoff.snooze();
}

/// Claims and migrates chunks until all are done.
fn participate(index: &HashIndex, run: &Arc<ResizeRun>, guard: Option<&EpochGuard>) {
    let mut backoff = Backoff::new();
    loop {
        let mut all_done = true;
        let mut progressed = false;
        for c in 0..run.n_chunks {
            if run.is_done(c) {
                continue;
            }
            all_done = false;
            if run.try_claim(c) {
                index.metrics().resize_chunk_claims.inc();
                migrate_chunk(index, run, c, guard);
                finish_chunk(index, run, c);
                progressed = true;
            }
        }
        if all_done || run.chunks_done.load(Ordering::SeqCst) == run.n_chunks {
            return;
        }
        if progressed {
            backoff.reset();
        }
        // Waiting must not stall the epoch (see wait_step), and it must not
        // hot-spin: the remaining chunks are either pinned by prepare-phase
        // stragglers (which our announced intent will drain — but only if
        // they get CPU time) or being migrated by another thread.
        wait_step(index, guard, &mut backoff);
    }
}

/// Operation-path hook: make sure the source chunks feeding `hash`'s new
/// bucket are migrated, cooperatively migrating unclaimed ones.
pub(crate) fn ensure_migrated_for(
    index: &HashIndex,
    run: &Arc<ResizeRun>,
    _new_array: &BucketArray,
    hash: KeyHash,
    guard: Option<&EpochGuard>,
) {
    let nb = hash.bucket_index(run.new_k);
    // Source old buckets feeding new bucket `nb`.
    let (src_a, src_b) = if run.grow { (nb >> 1, nb >> 1) } else { (nb * 2, nb * 2 + 1) };
    // For shrink, both sources share a chunk (chunks are pair-aligned).
    debug_assert!(run.grow || run.chunk_of(src_a) == run.chunk_of(src_b));
    let chunk = run.chunk_of(src_a);
    let mut backoff = Backoff::new();
    loop {
        if run.is_done(chunk) {
            return;
        }
        if run.try_claim(chunk) {
            index.metrics().resize_chunk_claims.inc();
            migrate_chunk(index, run, chunk, guard);
            finish_chunk(index, run, chunk);
            return;
        }
        // Claim failed: either pinned by prepare-phase stragglers (try_claim
        // announced intent, so the pins can only drain) or being migrated by
        // someone else. Help on another chunk, then re-check.
        let mut helped = false;
        for c in 0..run.n_chunks {
            if c != chunk && run.try_claim(c) {
                index.metrics().resize_chunk_claims.inc();
                migrate_chunk(index, run, c, guard);
                finish_chunk(index, run, c);
                helped = true;
                break;
            }
        }
        if helped {
            backoff.reset();
        }
        // Keep our own epoch fresh: pinned stragglers may be blocked inside
        // allocation backpressure whose flush/evict triggers require *this*
        // thread to advance past the epoch bump (deadlock otherwise). And
        // back off: hot-spinning here is exactly what starved single-core
        // hosts before the prioritized-claim protocol.
        wait_step(index, guard, &mut backoff);
    }
}

fn finish_chunk(index: &HashIndex, run: &Arc<ResizeRun>, chunk: usize) {
    run.done[chunk].store(true, Ordering::SeqCst);
    let done = run.chunks_done.fetch_add(1, Ordering::SeqCst) + 1;
    if done == run.n_chunks {
        // Last chunk: return to stable on the new version.
        let stable = HashIndex::encode(Status { phase: Phase::Stable, version: run.new_version });
        index.status_cell().store(stable, Ordering::SeqCst);
    }
}

/// Migrates every old bucket in `chunk` into the new table. `guard` is the
/// migrator's epoch guard, threaded through to [`RecordAccess`] calls that
/// may allocate (see [`RecordAccess::try_alloc_merge_meta`]).
fn migrate_chunk(index: &HashIndex, run: &Arc<ResizeRun>, chunk: usize, guard: Option<&EpochGuard>) {
    let old_arr = unsafe { &*index.versions_ptr(run.old_version).load(Ordering::SeqCst) };
    let new_arr = unsafe { &*index.versions_ptr(run.new_version).load(Ordering::SeqCst) };
    let start = chunk * run.chunk_size;
    let end = start + run.chunk_size;
    if run.grow {
        for ob in start..end {
            migrate_bucket_grow(index, run, old_arr, new_arr, ob);
        }
    } else {
        let mut ob = start;
        while ob < end {
            migrate_pair_shrink(index, run, old_arr, new_arr, ob, guard);
            ob += 2;
        }
    }
}

/// Collects `(tag, address)` pairs from an old bucket's chain.
fn collect_entries(arr: &BucketArray, bucket_idx: usize) -> Vec<(u16, Address)> {
    let mut out = Vec::new();
    let mut bucket = Some(arr.bucket(bucket_idx));
    while let Some(b) = bucket {
        for i in 0..ENTRIES_PER_BUCKET {
            let e = b.load_entry(i);
            if !e.is_empty() && !e.is_tentative() && e.address().is_valid() {
                out.push((e.tag(), e.address()));
            }
        }
        bucket = b.overflow();
    }
    out
}

/// Walks the relinkable prefix of a record chain. Returns the records the
/// access layer reports as walkable (newest first, with their hashes) and
/// the first opaque address — the chain tail: sealed, flushed, or on disk;
/// `INVALID` if the chain ends within the walkable prefix.
fn walk_chain(access: &dyn RecordAccess, head: Address) -> (Vec<(Address, KeyHash)>, Address) {
    let mut mem = Vec::new();
    let mut cur = head;
    while cur.is_valid() {
        match access.record_hash(cur) {
            Some(h) => {
                mem.push((cur, h));
                cur = access.record_prev(cur);
            }
            None => break,
        }
    }
    (mem, cur)
}

/// Installs `(tag, addr)` into new-table bucket `bucket_idx`. The migrator
/// owns the destination bucket exclusively (operations wait for the chunk),
/// but CAS is used for defense in depth.
fn insert_entry(index: &HashIndex, arr: &BucketArray, bucket_idx: usize, tag: u16, addr: Address) {
    let mut bucket = arr.bucket(bucket_idx);
    let e = HashBucketEntry::new(addr, tag, false);
    loop {
        for i in 0..ENTRIES_PER_BUCKET {
            let word = bucket.entry(i);
            if word.load(Ordering::SeqCst) == 0
                && word.compare_exchange(0, e.0, Ordering::SeqCst, Ordering::SeqCst).is_ok()
            {
                return;
            }
        }
        match bucket.overflow() {
            Some(next) => bucket = next,
            None => {
                let fresh = index.overflow_pool().alloc();
                bucket = bucket.install_overflow(fresh);
            }
        }
    }
}

/// Splits one old bucket into its two child buckets (grow).
fn migrate_bucket_grow(
    index: &HashIndex,
    run: &Arc<ResizeRun>,
    old_arr: &BucketArray,
    new_arr: &BucketArray,
    ob: usize,
) {
    let tag_bits = index.tag_bits();
    let mask: u16 = if tag_bits == 0 { 0 } else { (1u16 << tag_bits) - 1 };
    for (tag, head) in collect_entries(old_arr, ob) {
        let (mem, disk_tail) = walk_chain(run.access.as_ref(), head);

        // Group resident records by exact new (bucket, tag), preserving
        // newest-first order within each group.
        let mut groups: Vec<((usize, u16), Vec<Address>)> = Vec::new();
        for &(addr, h) in &mem {
            let key = (h.bucket_index(run.new_k), h.tag(run.new_k, tag_bits));
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(addr),
                None => groups.push((key, vec![addr])),
            }
        }

        // Candidate destinations that must reach the disk tail even without
        // resident records ("both new hash entries point to the same disk
        // record").
        let candidates: Vec<(usize, u16)> = if tag_bits == 0 {
            vec![(ob * 2, 0), (ob * 2 + 1, 0)]
        } else {
            let db = ob * 2 + ((tag >> (tag_bits - 1)) & 1) as usize;
            let t0 = (tag << 1) & mask;
            vec![(db, t0), (db, t0 | 1)]
        };

        // Relink and install each resident group.
        for ((db, nt), list) in &groups {
            for w in list.windows(2) {
                run.access.set_record_prev(w[0], w[1]);
            }
            run.access.set_record_prev(*list.last().expect("nonempty group"), disk_tail);
            insert_entry(index, new_arr, *db, *nt, list[0]);
        }

        // Candidates not covered by a resident group still need an entry if
        // there is a disk tail.
        if disk_tail.is_valid() {
            for cand in candidates {
                if !groups.iter().any(|(k, _)| *k == cand) {
                    insert_entry(index, new_arr, cand.0, cand.1, disk_tail);
                }
            }
        }
    }
}

/// Merges one pair of old buckets into their parent bucket (shrink).
///
/// Each destination is migrated inside one **refresh-free window**: walk the
/// source chains (classifying records against the live mutable boundary),
/// allocate any needed merge metas on the allocator's no-refresh fast path,
/// aim them, and relink. Nothing in the window advances this thread's epoch
/// entry, so pages sealed meanwhile — by the window's own allocations or by
/// concurrent appenders — cannot flush or evict until the window closes:
/// every record classified walkable stays resident, and its rewritten
/// pointer lands before any flush can capture the page. When the fast path
/// reports backpressure the window is abandoned — relieving backpressure
/// refreshes the epoch, which invalidates the classification — and the
/// destination is re-walked from scratch; metas allocated in an abandoned
/// window are inert log garbage (never aimed, never published).
///
/// (An earlier design pre-allocated every meta up front and re-checked
/// mutability in a fixpoint loop. Under saturated concurrent appends the
/// mutable region is smaller than the set of metas that must stay inside
/// it, so that fixpoint never converges — observed as a livelock in
/// `shrink_during_concurrent_traffic`.)
fn migrate_pair_shrink(
    index: &HashIndex,
    run: &Arc<ResizeRun>,
    old_arr: &BucketArray,
    new_arr: &BucketArray,
    ob_even: usize,
    guard: Option<&EpochGuard>,
) {
    let tag_bits = index.tag_bits();
    let nb = ob_even / 2;
    // Phase 1: group source entries by destination tag. The new tag is fully
    // determined by (beta, old tag) — the records in one entry all share hash
    // bits [0, k+tag_bits) — so the destination set is independent of record
    // residency and stable across the allocations below.
    let mut dests: Vec<(u16, Vec<Address>)> = Vec::new();
    for beta in 0..2usize {
        for (tag, head) in collect_entries(old_arr, ob_even + beta) {
            let nt: u16 = if tag_bits == 0 {
                0
            } else {
                ((beta as u16) << (tag_bits - 1)) | (tag >> 1)
            };
            match dests.iter_mut().find(|(t, _)| *t == nt) {
                Some((_, heads)) => heads.push(head),
                None => dests.push((nt, vec![head])),
            }
        }
    }

    // Phase 2: migrate each destination inside its own refresh-free window
    // (walk → fast-path meta allocation → aim → relink), restarting the
    // window whenever allocation backpressure forces an epoch refresh.
    let mut backoff = Backoff::new();
    for (nt, heads) in dests {
        'window: loop {
            // Classify: walk every source chain feeding this destination.
            let mut chain: Vec<Address> = Vec::new();
            let mut tails: Vec<Address> = Vec::new();
            for &head in &heads {
                let (mem, tail) = walk_chain(run.access.as_ref(), head);
                chain.extend(mem.iter().map(|&(a, _)| a));
                if tail.is_valid() {
                    tails.push(tail);
                }
            }
            // Merge tails: one stays as-is; more are folded through metas,
            // each aimed immediately after its refresh-free allocation.
            let mut tail = Address::INVALID;
            if let Some((&first, rest)) = tails.split_first() {
                tail = first;
                for &d in rest {
                    let Some(meta) = run.access.try_alloc_merge_meta(guard) else {
                        // Log backpressure. Relieving it refreshes the epoch
                        // (letting sealed pages flush), which invalidates
                        // this window's classification — start over. Metas
                        // already folded into `tail` are abandoned garbage.
                        wait_step(index, guard, &mut backoff);
                        continue 'window;
                    };
                    run.access.set_merge_meta(meta, tail, d);
                    tail = meta;
                }
            }
            if chain.is_empty() {
                if tail.is_valid() {
                    insert_entry(index, new_arr, nb, nt, tail);
                }
            } else {
                for w in chain.windows(2) {
                    run.access.set_record_prev(w[0], w[1]);
                }
                run.access.set_record_prev(*chain.last().expect("nonempty"), tail);
                insert_entry(index, new_arr, nb, nt, chain[0]);
            }
            backoff.reset();
            break;
        }
    }
}
