//! On-line index resizing (Appendix B).
//!
//! Resizing doubles (grow) or halves (shrink) the bucket table while
//! concurrent latch-free operations continue. The protocol:
//!
//! 1. The initiator CASes `ResizeStatus` from *stable* to **prepare-to-resize**
//!    (same active version), allocates the new table, and publishes a
//!    [`ResizeRun`] describing the migration (chunk pins, done flags).
//! 2. It bumps the epoch with a trigger that atomically flips the status to
//!    **resizing** with the *new* version active. Because the trigger fires
//!    only once the pre-bump epoch is safe, every thread is guaranteed to have
//!    seen the prepare phase — and therefore to be pinning chunks — before any
//!    chunk is frozen.
//! 3. The old table is divided into `n` contiguous chunks. In the prepare
//!    phase, operations pin the chunk they touch (`fetch-and-increment` if
//!    non-negative); a migrator freezes a chunk by CASing its pin count from
//!    `0` to −∞. Operations that observe a negative pin count re-read the
//!    status and switch to the resizing path.
//! 4. In the resizing phase, an operation first ensures the chunk(s) feeding
//!    its new bucket are migrated — migrating them itself if unclaimed
//!    (threads "co-operatively grab chunks"), spinning briefly otherwise —
//!    then proceeds on the new table.
//! 5. When the migrated-chunk count reaches `n`, the finishing thread sets
//!    the status back to *stable* and normal operation resumes.
//!
//! **Record migration** walks each index entry's in-memory record chain (via
//! [`RecordAccess`]), re-derives each record's new `(offset, tag)` from its
//! key hash, regroups and relinks the chains, and installs entries in the new
//! table. Records on disk are left untouched: a split makes both destination
//! entries point at the same disk record, and a merge links two disk chains
//! through a caller-allocated *meta record* (`link_disk_tails`) — exactly the
//! Appendix B treatment.

use crate::bucket::{BucketArray, ENTRIES_PER_BUCKET};
use crate::entry::HashBucketEntry;
use crate::{HashIndex, Phase, Status};
use faster_epoch::EpochGuard;
use faster_util::{Address, CacheAligned, KeyHash};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How the resizer reads and relinks records owned by the record allocator.
///
/// The index stores only `(tag, address)`; splitting or merging buckets
/// requires re-hashing record keys, which only the allocator layer can do.
pub trait RecordAccess: Send + Sync {
    /// The key hash of the record at `addr`, or `None` if the record is not
    /// resident in memory (i.e. the address is at or below the log's head).
    fn record_hash(&self, addr: Address) -> Option<KeyHash>;

    /// The previous-record pointer of the in-memory record at `addr`.
    /// Called only for addresses where `record_hash` returned `Some`.
    fn record_prev(&self, addr: Address) -> Address;

    /// Rewrites the previous-record pointer of the in-memory record at
    /// `addr`. The resizer has exclusive structural access to the chain
    /// (its chunk is frozen), so this is a plain store on the header word.
    fn set_record_prev(&self, addr: Address, prev: Address);

    /// Merges two disk-resident chains (shrink only): allocates a *meta
    /// record* that points at both `a` and `b` and returns its address, so a
    /// single index entry can reach both prior linked lists.
    fn link_disk_tails(&self, a: Address, b: Address) -> Address;
}

/// Sentinel pin value marking a frozen chunk (the paper's −∞).
const FROZEN: i64 = i64::MIN;

/// Shared state of one resize operation.
pub(crate) struct ResizeRun {
    pub grow: bool,
    pub old_version: usize,
    pub new_version: usize,
    #[allow(dead_code)]
    pub old_k: u8,
    pub new_k: u8,
    pub chunk_size: usize,
    pub n_chunks: usize,
    pins: Vec<CacheAligned<AtomicI64>>,
    done: Vec<AtomicBool>,
    chunks_done: AtomicUsize,
    access: Arc<dyn RecordAccess>,
}

impl ResizeRun {
    fn new(
        grow: bool,
        old_version: usize,
        old_k: u8,
        max_chunks: usize,
        access: Arc<dyn RecordAccess>,
    ) -> Self {
        let old_len = 1usize << old_k;
        // For shrink, migration operates on *pairs* of old buckets, so a
        // chunk must contain at least two buckets and be pair-aligned.
        let cap = if grow { old_len } else { old_len / 2 };
        let n_chunks = max_chunks.next_power_of_two().min(cap.max(1));
        let chunk_size = old_len / n_chunks;
        Self {
            grow,
            old_version,
            new_version: 1 - old_version,
            old_k,
            new_k: if grow { old_k + 1 } else { old_k - 1 },
            chunk_size,
            n_chunks,
            pins: (0..n_chunks).map(|_| CacheAligned::new(AtomicI64::new(0))).collect(),
            done: (0..n_chunks).map(|_| AtomicBool::new(false)).collect(),
            chunks_done: AtomicUsize::new(0),
            access,
        }
    }

    /// The migration chunk containing old-table bucket `old_bucket`.
    #[inline]
    pub fn chunk_of(&self, old_bucket: usize) -> usize {
        old_bucket / self.chunk_size
    }

    /// Prepare-phase pin: increments the chunk's pin count if non-negative.
    /// Returns `None` if the chunk is frozen (resizing has begun).
    pub fn try_pin(self: &Arc<Self>, chunk: usize) -> Option<ChunkPin> {
        let cell = &self.pins[chunk].0;
        let mut v = cell.load(Ordering::SeqCst);
        loop {
            if v < 0 {
                return None;
            }
            match cell.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Some(ChunkPin { run: self.clone(), chunk }),
                Err(cur) => v = cur,
            }
        }
    }

    /// Attempts to freeze an unmigrated chunk for exclusive migration.
    fn try_claim(&self, chunk: usize) -> bool {
        !self.done[chunk].load(Ordering::SeqCst)
            && self.pins[chunk]
                .0
                .compare_exchange(0, FROZEN, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
    }

    fn is_done(&self, chunk: usize) -> bool {
        self.done[chunk].load(Ordering::SeqCst)
    }
}

/// An operation's pin on a migration chunk during the prepare phase.
/// Dropping it decrements the pin count, releasing the chunk to migrators.
pub(crate) struct ChunkPin {
    run: Arc<ResizeRun>,
    chunk: usize,
}

impl Drop for ChunkPin {
    fn drop(&mut self) {
        self.run.pins[self.chunk].0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Validates that `run` matches the current status (guards against reading a
/// previous resize's leftover run).
pub(crate) fn run_matches(run: &ResizeRun, s: Status) -> bool {
    match s.phase {
        Phase::Prepare => run.old_version == s.version,
        Phase::Resizing => run.new_version == s.version,
        Phase::Stable => false,
    }
}

/// Full resize driver (grow or shrink). Returns false if the index was not
/// in the stable phase (a resize is already running) or cannot shrink
/// further.
pub(crate) fn resize(
    index: &HashIndex,
    access: Arc<dyn RecordAccess>,
    guard: Option<&EpochGuard>,
    grow: bool,
) -> bool {
    let s = index.status();
    if s.phase != Phase::Stable {
        return false;
    }
    let old_arr = unsafe { &*index.versions_ptr(s.version).load(Ordering::SeqCst) };
    let old_k = old_arr.k_bits();
    if !grow && old_k <= 1 {
        return false;
    }

    // Step 1: claim the resize by entering prepare (same version active).
    let prepare = HashIndex::encode(Status { phase: Phase::Prepare, version: s.version });
    if index
        .status_cell()
        .compare_exchange(HashIndex::encode(s), prepare, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return false;
    }

    // A resizer without a session must still drive the epoch: the phase
    // flips below are bump_with triggers, and triggers only fire when some
    // guard refreshes (or another bump lands). If every session exits after
    // the bump, no thread would ever drain the trigger and the wait loops
    // below would spin forever. A temporary guard of our own closes that
    // hole — its refresh() both advances past the bump and drains.
    let own_guard = if guard.is_none() { Some(index.epoch().acquire()) } else { None };
    let guard = guard.or(own_guard.as_ref());

    // Step 2: allocate the new table and publish the run.
    let run = Arc::new(ResizeRun::new(grow, s.version, old_k, index.max_resize_chunks(), access));
    let new_arr = Box::into_raw(Box::new(BucketArray::new(run.new_k)));
    index.versions_ptr(run.new_version).store(new_arr, Ordering::SeqCst);
    *index.run_cell().write() = Some(run.clone());

    // Step 3: trigger the prepare -> resizing flip once the epoch is safe.
    let status_cell = index.status_cell_arc();
    let resizing = HashIndex::encode(Status { phase: Phase::Resizing, version: run.new_version });
    index.epoch().bump_with(move || status_cell.store(resizing, Ordering::SeqCst));

    // Step 4: wait for the flip (refreshing our own guard so the trigger can
    // fire), then participate in migration.
    while index.status().phase != Phase::Resizing {
        if let Some(g) = guard {
            g.refresh();
        }
        std::thread::yield_now();
    }
    participate(index, &run, guard);

    // Step 5: wait for stability, then retire the old table.
    while index.status().phase != Phase::Stable {
        if let Some(g) = guard {
            g.refresh();
        }
        std::thread::yield_now();
    }
    let old_ptr = index.versions_ptr(run.old_version).swap(std::ptr::null_mut(), Ordering::SeqCst);
    index.retire_array(old_ptr);
    true
}

/// Claims and migrates chunks until all are done.
fn participate(index: &HashIndex, run: &Arc<ResizeRun>, guard: Option<&EpochGuard>) {
    loop {
        let mut all_done = true;
        for c in 0..run.n_chunks {
            if run.is_done(c) {
                continue;
            }
            all_done = false;
            if run.try_claim(c) {
                migrate_chunk(index, run, c);
                finish_chunk(index, run, c);
            }
        }
        if all_done || run.chunks_done.load(Ordering::SeqCst) == run.n_chunks {
            return;
        }
        // See ensure_migrated_for: waiting must not stall the epoch.
        if let Some(g) = guard {
            g.refresh();
        }
        std::thread::yield_now();
    }
}

/// Operation-path hook: make sure the source chunks feeding `hash`'s new
/// bucket are migrated, cooperatively migrating unclaimed ones.
pub(crate) fn ensure_migrated_for(
    index: &HashIndex,
    run: &Arc<ResizeRun>,
    _new_array: &BucketArray,
    hash: KeyHash,
    guard: Option<&EpochGuard>,
) {
    let nb = hash.bucket_index(run.new_k);
    // Source old buckets feeding new bucket `nb`.
    let (src_a, src_b) = if run.grow { (nb >> 1, nb >> 1) } else { (nb * 2, nb * 2 + 1) };
    // For shrink, both sources share a chunk (chunks are pair-aligned).
    debug_assert!(run.grow || run.chunk_of(src_a) == run.chunk_of(src_b));
    let chunk = run.chunk_of(src_a);
    loop {
        if run.is_done(chunk) {
            return;
        }
        if run.try_claim(chunk) {
            migrate_chunk(index, run, chunk);
            finish_chunk(index, run, chunk);
            return;
        }
        // Claim failed: either pinned by prepare-phase stragglers or being
        // migrated by someone else. Help on another chunk, then re-check.
        for c in 0..run.n_chunks {
            if c != chunk && run.try_claim(c) {
                migrate_chunk(index, run, c);
                finish_chunk(index, run, c);
                break;
            }
        }
        // Keep our own epoch fresh: pinned stragglers may be blocked inside
        // allocation backpressure whose flush/evict triggers require *this*
        // thread to advance past the epoch bump (deadlock otherwise).
        if let Some(g) = guard {
            g.refresh();
        }
        std::thread::yield_now();
    }
}

fn finish_chunk(index: &HashIndex, run: &Arc<ResizeRun>, chunk: usize) {
    run.done[chunk].store(true, Ordering::SeqCst);
    let done = run.chunks_done.fetch_add(1, Ordering::SeqCst) + 1;
    if done == run.n_chunks {
        // Last chunk: return to stable on the new version.
        let stable = HashIndex::encode(Status { phase: Phase::Stable, version: run.new_version });
        index.status_cell().store(stable, Ordering::SeqCst);
    }
}

/// Migrates every old bucket in `chunk` into the new table.
fn migrate_chunk(index: &HashIndex, run: &Arc<ResizeRun>, chunk: usize) {
    let old_arr = unsafe { &*index.versions_ptr(run.old_version).load(Ordering::SeqCst) };
    let new_arr = unsafe { &*index.versions_ptr(run.new_version).load(Ordering::SeqCst) };
    let start = chunk * run.chunk_size;
    let end = start + run.chunk_size;
    if run.grow {
        for ob in start..end {
            migrate_bucket_grow(index, run, old_arr, new_arr, ob);
        }
    } else {
        let mut ob = start;
        while ob < end {
            migrate_pair_shrink(index, run, old_arr, new_arr, ob);
            ob += 2;
        }
    }
}

/// Collects `(tag, address)` pairs from an old bucket's chain.
fn collect_entries(arr: &BucketArray, bucket_idx: usize) -> Vec<(u16, Address)> {
    let mut out = Vec::new();
    let mut bucket = Some(arr.bucket(bucket_idx));
    while let Some(b) = bucket {
        for i in 0..ENTRIES_PER_BUCKET {
            let e = b.load_entry(i);
            if !e.is_empty() && !e.is_tentative() && e.address().is_valid() {
                out.push((e.tag(), e.address()));
            }
        }
        bucket = b.overflow();
    }
    out
}

/// Walks the in-memory prefix of a record chain. Returns the resident
/// records (newest first, with their hashes) and the first non-resident
/// address (the disk tail; `INVALID` if the chain ends in memory).
fn walk_chain(access: &dyn RecordAccess, head: Address) -> (Vec<(Address, KeyHash)>, Address) {
    let mut mem = Vec::new();
    let mut cur = head;
    while cur.is_valid() {
        match access.record_hash(cur) {
            Some(h) => {
                mem.push((cur, h));
                cur = access.record_prev(cur);
            }
            None => break,
        }
    }
    (mem, cur)
}

/// Installs `(tag, addr)` into new-table bucket `bucket_idx`. The migrator
/// owns the destination bucket exclusively (operations wait for the chunk),
/// but CAS is used for defense in depth.
fn insert_entry(index: &HashIndex, arr: &BucketArray, bucket_idx: usize, tag: u16, addr: Address) {
    let mut bucket = arr.bucket(bucket_idx);
    let e = HashBucketEntry::new(addr, tag, false);
    loop {
        for i in 0..ENTRIES_PER_BUCKET {
            let word = bucket.entry(i);
            if word.load(Ordering::SeqCst) == 0
                && word.compare_exchange(0, e.0, Ordering::SeqCst, Ordering::SeqCst).is_ok()
            {
                return;
            }
        }
        match bucket.overflow() {
            Some(next) => bucket = next,
            None => {
                let fresh = index.overflow_pool().alloc();
                bucket = bucket.install_overflow(fresh);
            }
        }
    }
}

/// Splits one old bucket into its two child buckets (grow).
fn migrate_bucket_grow(
    index: &HashIndex,
    run: &Arc<ResizeRun>,
    old_arr: &BucketArray,
    new_arr: &BucketArray,
    ob: usize,
) {
    let tag_bits = index.tag_bits();
    let mask: u16 = if tag_bits == 0 { 0 } else { (1u16 << tag_bits) - 1 };
    for (tag, head) in collect_entries(old_arr, ob) {
        let (mem, disk_tail) = walk_chain(run.access.as_ref(), head);

        // Group resident records by exact new (bucket, tag), preserving
        // newest-first order within each group.
        let mut groups: Vec<((usize, u16), Vec<Address>)> = Vec::new();
        for &(addr, h) in &mem {
            let key = (h.bucket_index(run.new_k), h.tag(run.new_k, tag_bits));
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(addr),
                None => groups.push((key, vec![addr])),
            }
        }

        // Candidate destinations that must reach the disk tail even without
        // resident records ("both new hash entries point to the same disk
        // record").
        let candidates: Vec<(usize, u16)> = if tag_bits == 0 {
            vec![(ob * 2, 0), (ob * 2 + 1, 0)]
        } else {
            let db = ob * 2 + ((tag >> (tag_bits - 1)) & 1) as usize;
            let t0 = (tag << 1) & mask;
            vec![(db, t0), (db, t0 | 1)]
        };

        // Relink and install each resident group.
        for ((db, nt), list) in &groups {
            for w in list.windows(2) {
                run.access.set_record_prev(w[0], w[1]);
            }
            run.access.set_record_prev(*list.last().expect("nonempty group"), disk_tail);
            insert_entry(index, new_arr, *db, *nt, list[0]);
        }

        // Candidates not covered by a resident group still need an entry if
        // there is a disk tail.
        if disk_tail.is_valid() {
            for cand in candidates {
                if !groups.iter().any(|(k, _)| *k == cand) {
                    insert_entry(index, new_arr, cand.0, cand.1, disk_tail);
                }
            }
        }
    }
}

/// Merges one pair of old buckets into their parent bucket (shrink).
fn migrate_pair_shrink(
    index: &HashIndex,
    run: &Arc<ResizeRun>,
    old_arr: &BucketArray,
    new_arr: &BucketArray,
    ob_even: usize,
) {
    let tag_bits = index.tag_bits();
    let nb = ob_even / 2;
    // Destination tag -> (concatenated resident chain, disk tails).
    let mut dests: Vec<(u16, Vec<Address>, Vec<Address>)> = Vec::new();
    for beta in 0..2usize {
        for (tag, head) in collect_entries(old_arr, ob_even + beta) {
            let (mem, disk_tail) = walk_chain(run.access.as_ref(), head);
            // New tag is fully determined by (beta, old tag): the records in
            // one entry all share hash bits [0, k+tag_bits).
            let nt: u16 = if tag_bits == 0 {
                0
            } else {
                ((beta as u16) << (tag_bits - 1)) | (tag >> 1)
            };
            let slot = match dests.iter_mut().find(|(t, _, _)| *t == nt) {
                Some(s) => s,
                None => {
                    dests.push((nt, Vec::new(), Vec::new()));
                    dests.last_mut().expect("just pushed")
                }
            };
            slot.1.extend(mem.iter().map(|&(a, _)| a));
            if disk_tail.is_valid() {
                slot.2.push(disk_tail);
            }
        }
    }

    for (nt, chain, disk_tails) in dests {
        // Merge disk tails: one stays as-is; two are joined via a meta record.
        let tail = match disk_tails.len() {
            0 => Address::INVALID,
            1 => disk_tails[0],
            2 => run.access.link_disk_tails(disk_tails[0], disk_tails[1]),
            n => {
                // More than two cannot arise from a single pair merge, but
                // fold defensively.
                let mut t = disk_tails[0];
                for &d in &disk_tails[1..] {
                    t = run.access.link_disk_tails(t, d);
                }
                debug_assert!(n <= 2, "pair merge yielded {n} disk tails");
                t
            }
        };
        if chain.is_empty() {
            if tail.is_valid() {
                insert_entry(index, new_arr, nb, nt, tail);
            }
            continue;
        }
        for w in chain.windows(2) {
            run.access.set_record_prev(w[0], w[1]);
        }
        run.access.set_record_prev(*chain.last().expect("nonempty"), tail);
        insert_entry(index, new_arr, nb, nt, chain[0]);
    }
}
