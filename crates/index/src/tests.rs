//! Unit, concurrency, and invariant tests for the hash index.

use super::*;
use faster_util::Address;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc as StdArc, Barrier};

fn small_index() -> HashIndex {
    HashIndex::new(
        IndexConfig { k_bits: 4, tag_bits: 15, max_resize_chunks: 4 },
        Epoch::new(32),
    )
}

fn insert(index: &HashIndex, hash: KeyHash, addr: Address) {
    match index.find_or_create_tag(hash, None) {
        CreateOutcome::Created(c) => {
            c.finalize(addr);
        }
        CreateOutcome::Found(slot) => {
            let cur = slot.load();
            slot.cas_address(cur, addr).expect("single-threaded update");
        }
    }
}

fn lookup(index: &HashIndex, hash: KeyHash) -> Option<Address> {
    index.find_tag(hash, None).map(|s| s.load().address())
}

#[test]
fn insert_find_delete() {
    let index = small_index();
    let h = KeyHash::of_u64(42);
    assert!(lookup(&index, h).is_none());
    insert(&index, h, Address::new(4096));
    assert_eq!(lookup(&index, h), Some(Address::new(4096)));
    let slot = index.find_tag(h, None).unwrap();
    let e = slot.load();
    slot.cas_delete(e).unwrap();
    assert!(lookup(&index, h).is_none());
    assert_eq!(index.count_entries(), 0);
}

#[test]
fn update_address_via_cas() {
    let index = small_index();
    let h = KeyHash::of_u64(7);
    insert(&index, h, Address::new(100));
    let slot = index.find_tag(h, None).unwrap();
    let old = slot.load();
    slot.cas_address(old, Address::new(200)).unwrap();
    assert_eq!(lookup(&index, h), Some(Address::new(200)));
    // Stale CAS fails and reports the current entry.
    let err = slot.cas_address(old, Address::new(300)).unwrap_err();
    assert_eq!(err.address(), Address::new(200));
}

#[test]
fn created_entry_drop_releases_slot() {
    let index = small_index();
    let h = KeyHash::of_u64(9);
    match index.find_or_create_tag(h, None) {
        CreateOutcome::Created(c) => drop(c), // abandon
        CreateOutcome::Found(_) => panic!("fresh index"),
    }
    assert!(lookup(&index, h).is_none());
    assert_eq!(index.count_entries(), 0);
    // The slot is reusable.
    insert(&index, h, Address::new(128));
    assert_eq!(lookup(&index, h), Some(Address::new(128)));
}

#[test]
fn many_keys_overflow_buckets() {
    // k_bits = 1 forces heavy per-bucket load and overflow allocation.
    let index = HashIndex::new(
        IndexConfig { k_bits: 1, tag_bits: 15, max_resize_chunks: 1 },
        Epoch::new(8),
    );
    let mut expect = HashMap::new();
    for k in 0..200u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 8);
        insert(&index, h, addr);
        expect.insert(k, addr);
    }
    // NOTE: distinct keys can share (offset, tag); later inserts overwrite in
    // this raw-index test (no key comparison layer). Verify via tag identity.
    let mut tags: HashMap<(usize, u16), Address> = HashMap::new();
    for k in 0..200u64 {
        let h = KeyHash::of_u64(k);
        tags.insert((h.bucket_index(1), h.tag(1, 15)), expect[&k]);
    }
    for k in 0..200u64 {
        let h = KeyHash::of_u64(k);
        let want = tags[&(h.bucket_index(1), h.tag(1, 15))];
        assert_eq!(lookup(&index, h), Some(want), "key {k}");
    }
    assert!(!index.overflow_pool().is_empty(), "200 tags in 2 buckets must overflow");
    assert_eq!(index.count_entries(), tags.len());
}

#[test]
fn tag_zero_key_survives() {
    // Regression: an entry whose tag is 0 must not be confused with an
    // empty slot at any point in its lifecycle.
    let index = small_index();
    // Find a hash with tag 0 for k_bits=4.
    let key = (0u64..).find(|&k| KeyHash::of_u64(k).tag(4, 15) == 0).unwrap();
    let h = KeyHash::of_u64(key);
    insert(&index, h, Address::new(640));
    assert_eq!(lookup(&index, h), Some(Address::new(640)));
    assert_eq!(index.count_entries(), 1);
}

#[test]
fn unique_tag_invariant_under_concurrent_inserts() {
    // Hammer one bucket from many threads inserting the same small tag set;
    // afterwards each (offset, tag) must appear exactly once (§3.2).
    let index = StdArc::new(HashIndex::new(
        IndexConfig { k_bits: 1, tag_bits: 4, max_resize_chunks: 1 },
        Epoch::new(64),
    ));
    let threads = 8;
    let barrier = StdArc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for t in 0..threads {
        let index = index.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for k in 0..512u64 {
                let h = KeyHash::of_u64(k);
                match index.find_or_create_tag(h, None) {
                    CreateOutcome::Created(c) => {
                        c.finalize(Address::new(64 + t as u64));
                    }
                    CreateOutcome::Found(slot) => {
                        let cur = slot.load();
                        // racing updates are fine; ignore failures
                        let _ = slot.cas_address(cur, Address::new(64 + t as u64));
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Verify invariant: scan raw buckets for duplicate (bucket, tag).
    let mut seen = std::collections::HashSet::new();
    let arr = index.active_array();
    for i in 0..arr.len() {
        let mut bucket = Some(arr.bucket(i));
        while let Some(b) = bucket {
            for j in 0..ENTRIES_PER_BUCKET {
                let e = b.load_entry(j);
                if !e.is_empty() {
                    assert!(!e.is_tentative(), "no tentative entries after quiescence");
                    assert!(seen.insert((i, e.tag())), "duplicate (bucket {i}, tag {})", e.tag());
                }
            }
            bucket = b.overflow();
        }
    }
}

#[test]
fn concurrent_insert_delete_churn_keeps_invariant() {
    // The Fig 3a scenario generalized: concurrent deletes + inserts of
    // colliding tags must never produce duplicate visible tags.
    let index = StdArc::new(HashIndex::new(
        IndexConfig { k_bits: 1, tag_bits: 2, max_resize_chunks: 1 },
        Epoch::new(64),
    ));
    let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..6 {
        let index = index.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = faster_util::XorShift64::new(t + 1);
            while !stop.load(StdOrdering::Relaxed) {
                let k = rng.next_below(64);
                let h = KeyHash::of_u64(k);
                if rng.next_below(2) == 0 {
                    match index.find_or_create_tag(h, None) {
                        CreateOutcome::Created(c) => {
                            c.finalize(Address::new(64 + k));
                        }
                        CreateOutcome::Found(slot) => {
                            let cur = slot.load();
                            let _ = slot.cas_address(cur, Address::new(64 + k));
                        }
                    }
                } else if let Some(slot) = index.find_tag(h, None) {
                    let cur = slot.load();
                    let _ = slot.cas_delete(cur);
                }
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, StdOrdering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let mut seen = std::collections::HashSet::new();
    let arr = index.active_array();
    for i in 0..arr.len() {
        let mut bucket = Some(arr.bucket(i));
        while let Some(b) = bucket {
            for j in 0..ENTRIES_PER_BUCKET {
                let e = b.load_entry(j);
                if !e.is_empty() && !e.is_tentative() {
                    assert!(seen.insert((i, e.tag())), "duplicate (bucket {i}, tag {})", e.tag());
                }
            }
            bucket = b.overflow();
        }
    }
}

// ---------------------------------------------------------------- resize --

/// Mock record store: addr -> (hash, prev). Lets resize tests run without a
/// log allocator.
#[derive(Default)]
struct MockRecords {
    // Keyed by raw address.
    recs: parking_lot::RwLock<HashMap<u64, (KeyHash, StdArc<StdAtomicU64>)>>,
    next_meta: StdAtomicU64,
    metas: parking_lot::RwLock<Vec<(Address, Address)>>,
}

impl MockRecords {
    fn new() -> StdArc<Self> {
        StdArc::new(Self {
            next_meta: StdAtomicU64::new(1 << 40),
            ..Default::default()
        })
    }
    fn add(&self, addr: Address, hash: KeyHash, prev: Address) {
        self.recs
            .write()
            .insert(addr.raw(), (hash, StdArc::new(StdAtomicU64::new(prev.raw()))));
    }
}

impl RecordAccess for MockRecords {
    fn record_hash(&self, addr: Address) -> Option<KeyHash> {
        self.recs.read().get(&addr.raw()).map(|(h, _)| *h)
    }
    fn record_prev(&self, addr: Address) -> Address {
        Address::new(self.recs.read()[&addr.raw()].1.load(StdOrdering::SeqCst))
    }
    fn set_record_prev(&self, addr: Address, prev: Address) {
        self.recs.read()[&addr.raw()].1.store(prev.raw(), StdOrdering::SeqCst);
    }
    fn try_alloc_merge_meta(&self, _guard: Option<&faster_epoch::EpochGuard>) -> Option<Address> {
        Some(Address::new(self.next_meta.fetch_add(64, StdOrdering::SeqCst)))
    }
    fn set_merge_meta(&self, _meta: Address, a: Address, b: Address) {
        self.metas.write().push((a, b));
    }
}

fn chain_addresses(index: &HashIndex, access: &MockRecords, hash: KeyHash) -> Vec<Address> {
    let mut out = Vec::new();
    if let Some(slot) = index.find_tag(hash, None) {
        let mut cur = slot.load().address();
        while cur.is_valid() {
            out.push(cur);
            match access.record_hash(cur) {
                Some(_) => cur = access.record_prev(cur),
                None => break,
            }
        }
    }
    out
}

#[test]
fn grow_preserves_reachability() {
    let epoch = Epoch::new(16);
    let index = HashIndex::new(
        IndexConfig { k_bits: 3, tag_bits: 15, max_resize_chunks: 2 },
        epoch,
    );
    let access = MockRecords::new();
    // Insert 64 keys, each a single in-memory record.
    for k in 0..64u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        access.add(addr, h, Address::INVALID);
        insert(&index, h, addr);
    }
    assert!(index.grow(access.clone(), None));
    assert_eq!(index.k_bits(), 4);
    assert_eq!(index.status().phase, Phase::Stable);
    for k in 0..64u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        let chain = chain_addresses(&index, &access, h);
        assert!(chain.contains(&addr), "key {k} unreachable after grow");
    }
}

#[test]
fn grow_splits_shared_chains() {
    // Keys engineered to share an (offset, tag) at k=1 split correctly at k=2.
    let epoch = Epoch::new(16);
    let index = HashIndex::new(
        IndexConfig { k_bits: 1, tag_bits: 4, max_resize_chunks: 1 },
        epoch,
    );
    let access = MockRecords::new();
    // Build chains through the real insert path: link new record to current.
    let keys: Vec<u64> = (0..128).collect();
    for (i, &k) in keys.iter().enumerate() {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + (i as u64) * 64);
        match index.find_or_create_tag(h, None) {
            CreateOutcome::Created(c) => {
                access.add(addr, h, Address::INVALID);
                c.finalize(addr);
            }
            CreateOutcome::Found(slot) => {
                let cur = slot.load();
                access.add(addr, h, cur.address());
                slot.cas_address(cur, addr).unwrap();
            }
        }
    }
    assert!(index.grow(access.clone(), None));
    // Every key must be reachable from its new entry.
    for (i, &k) in keys.iter().enumerate() {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + (i as u64) * 64);
        let chain = chain_addresses(&index, &access, h);
        assert!(chain.contains(&addr), "key {k} lost in split");
        // And the whole chain must belong to the same new (offset, tag).
        let nb = h.bucket_index(index.k_bits());
        let nt = h.tag(index.k_bits(), index.tag_bits());
        for &a in &chain {
            let rh = access.record_hash(a).unwrap();
            assert_eq!(rh.bucket_index(index.k_bits()), nb);
            assert_eq!(rh.tag(index.k_bits(), index.tag_bits()), nt);
        }
    }
}

#[test]
fn grow_disk_tail_reachable_from_both_children() {
    let epoch = Epoch::new(16);
    let index = HashIndex::new(
        IndexConfig { k_bits: 2, tag_bits: 15, max_resize_chunks: 1 },
        epoch,
    );
    let access = MockRecords::new();
    // A single entry whose whole chain lives on disk (no in-memory records).
    let h = KeyHash::of_u64(777);
    let disk_addr = Address::new(4096); // not registered in MockRecords = "on disk"
    insert(&index, h, disk_addr);
    assert!(index.grow(access.clone(), None));
    // The true child entry must reach the disk record.
    let slot = index.find_tag(h, None).expect("entry after grow");
    assert_eq!(slot.load().address(), disk_addr);
}

#[test]
fn shrink_merges_and_preserves_reachability() {
    let epoch = Epoch::new(16);
    let index = HashIndex::new(
        IndexConfig { k_bits: 4, tag_bits: 15, max_resize_chunks: 2 },
        epoch,
    );
    let access = MockRecords::new();
    for k in 0..96u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        access.add(addr, h, Address::INVALID);
        insert(&index, h, addr);
    }
    assert!(index.shrink(access.clone(), None));
    assert_eq!(index.k_bits(), 3);
    for k in 0..96u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        let chain = chain_addresses(&index, &access, h);
        assert!(chain.contains(&addr), "key {k} unreachable after shrink");
    }
}

#[test]
fn shrink_links_disk_tails_via_meta_record() {
    let epoch = Epoch::new(16);
    let index = HashIndex::new(
        IndexConfig { k_bits: 2, tag_bits: 15, max_resize_chunks: 1 },
        epoch,
    );
    let access = MockRecords::new();
    // Two disk-only entries that merge under shrink: bucket 2b and 2b+1 with
    // tags that collapse to the same new tag. Construct hashes directly.
    // k=2: offset bits = top 2; tag = next 15.
    // old A: offset 0b10, tag t; old B: offset 0b11, tag t' where
    // new (k=1) tag of A = (0 << 14) | (t >> 1); of B = (1 << 14) | (t' >> 1).
    // They merge only if equal -> impossible across beta; so merge within one
    // bucket: tags t and t^1 in the SAME old bucket.
    let h1 = KeyHash::new(0b10_000000000000010u64 << 47); // offset 2, tag 2
    let h2 = KeyHash::new(0b10_000000000000011u64 << 47); // offset 2, tag 3
    assert_eq!(h1.bucket_index(2), h2.bucket_index(2));
    assert_ne!(h1.tag(2, 15), h2.tag(2, 15));
    insert(&index, h1, Address::new(1 << 20)); // unregistered = on disk
    insert(&index, h2, Address::new(2 << 20));
    assert!(index.shrink(access.clone(), None));
    assert_eq!(access.metas.read().len(), 1, "one meta record links the two disk chains");
    // The merged entry exists under the new tag.
    assert!(index.find_tag(h1, None).is_some());
    assert!(index.find_tag(h2, None).is_some());
}

#[test]
fn grow_then_shrink_round_trip() {
    let epoch = Epoch::new(16);
    let index = HashIndex::new(
        IndexConfig { k_bits: 3, tag_bits: 15, max_resize_chunks: 2 },
        epoch,
    );
    let access = MockRecords::new();
    for k in 0..48u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        access.add(addr, h, Address::INVALID);
        insert(&index, h, addr);
    }
    assert!(index.grow(access.clone(), None));
    assert!(index.grow(access.clone(), None));
    assert_eq!(index.k_bits(), 5);
    assert!(index.shrink(access.clone(), None));
    assert_eq!(index.k_bits(), 4);
    for k in 0..48u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        assert!(
            chain_addresses(&index, &access, h).contains(&addr),
            "key {k} lost across grow/grow/shrink"
        );
    }
}

#[test]
fn grow_under_concurrent_operations() {
    let epoch = Epoch::new(64);
    let index = StdArc::new(HashIndex::new(
        IndexConfig { k_bits: 4, tag_bits: 15, max_resize_chunks: 4 },
        epoch.clone(),
    ));
    let access = MockRecords::new();
    for k in 0..256u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        access.add(addr, h, Address::INVALID);
        insert(&index, h, addr);
    }
    let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let index = index.clone();
        let stop = stop.clone();
        let epoch = epoch.clone();
        handles.push(std::thread::spawn(move || {
            let guard = epoch.acquire();
            let mut rng = faster_util::XorShift64::new(t + 99);
            let mut ops = 0u64;
            while !stop.load(StdOrdering::Relaxed) {
                let k = rng.next_below(256);
                let h = KeyHash::of_u64(k);
                // Pass our guard: resize-phase waits inside the index must
                // be able to refresh it (see find_tag docs).
                let _ = index.find_tag(h, Some(&guard));
                ops += 1;
                if ops.is_multiple_of(64) {
                    guard.refresh();
                }
            }
            drop(guard);
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(index.grow(access.clone(), None));
    stop.store(true, StdOrdering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(index.k_bits(), 5);
    for k in 0..256u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        assert!(chain_addresses(&index, &access, h).contains(&addr), "key {k}");
    }
}

// ------------------------------------------------------------ checkpoint --

#[test]
fn checkpoint_restore_round_trip() {
    let index = small_index();
    for k in 0..100u64 {
        insert(&index, KeyHash::of_u64(k), Address::new(64 + k * 8));
    }
    let ckpt = index.checkpoint();
    let bytes = ckpt.to_bytes();
    let parsed = IndexCheckpoint::from_bytes(&bytes).unwrap();
    let restored = HashIndex::restore(&parsed, 4, Epoch::new(8));
    assert_eq!(restored.k_bits(), index.k_bits());
    assert_eq!(restored.count_entries(), index.count_entries());
    for k in 0..100u64 {
        let h = KeyHash::of_u64(k);
        assert_eq!(lookup(&restored, h), lookup(&index, h), "key {k}");
    }
}

#[test]
fn status_encoding_round_trip() {
    for phase in [Phase::Stable, Phase::Prepare, Phase::Resizing] {
        for version in [0usize, 1] {
            let s = Status { phase, version };
            assert_eq!(decode_status(encode_status(s)), s);
        }
    }
}

#[test]
fn small_tag_configurations_work() {
    for tag_bits in [0u8, 1, 4, 15] {
        let index = HashIndex::new(
            IndexConfig { k_bits: 6, tag_bits, max_resize_chunks: 2 },
            Epoch::new(8),
        );
        // Insert distinct (offset, tag) classes and verify lookup.
        let mut class_addr: HashMap<(usize, u16), Address> = HashMap::new();
        for k in 0..500u64 {
            let h = KeyHash::of_u64(k);
            let addr = Address::new(64 + k * 8);
            insert(&index, h, addr);
            class_addr.insert((h.bucket_index(6), h.tag(6, tag_bits)), addr);
        }
        for k in 0..500u64 {
            let h = KeyHash::of_u64(k);
            let want = class_addr[&(h.bucket_index(6), h.tag(6, tag_bits))];
            assert_eq!(lookup(&index, h), Some(want), "tag_bits={tag_bits} key={k}");
        }
        assert_eq!(index.count_entries(), class_addr.len(), "tag_bits={tag_bits}");
    }
}

#[test]
fn stats_reflect_occupancy() {
    let index = HashIndex::new(
        IndexConfig { k_bits: 2, tag_bits: 15, max_resize_chunks: 1 },
        Epoch::new(4),
    );
    let s0 = index.stats();
    assert_eq!(s0.buckets, 4);
    assert_eq!(s0.entries, 0);
    assert_eq!(s0.max_chain, 1);
    for k in 0..100u64 {
        insert(&index, KeyHash::of_u64(k), Address::new(64 + k * 8));
    }
    let s = index.stats();
    assert_eq!(s.entries, index.count_entries());
    assert!(s.overflow_buckets > 0, "100 tags in 4 buckets must overflow");
    assert!(s.max_chain > 1);
    assert_eq!(s.tentative_entries, 0);
}

#[test]
fn find_tags_matches_scalar_probes() {
    let index = small_index();
    for k in 0..200u64 {
        insert(&index, KeyHash::of_u64(k), Address::new(64 + k * 8));
    }
    // Mix of present and absent hashes; prefetch_bucket must be a pure hint.
    let hashes: Vec<KeyHash> = (0..400u64).map(KeyHash::of_u64).collect();
    for &h in &hashes {
        index.prefetch_bucket(h);
    }
    let mut slots = Vec::new();
    index.find_tags(&hashes, None, &mut slots);
    assert_eq!(slots.len(), hashes.len());
    for (h, slot) in hashes.iter().zip(&slots) {
        let got = slot.as_ref().map(|s| s.load().address());
        assert_eq!(got, lookup(&index, *h));
    }
}

#[test]
fn claim_intent_refuses_new_pins_and_freeze_waits_for_drain() {
    // The prioritized-claim pin word (resize module docs): announcing intent
    // makes the pin count non-increasing; the freeze lands exactly when it
    // drains to zero; a frozen chunk stays frozen.
    let pins = ChunkPins::new(2);
    assert!(pins.try_pin(0));
    assert!(pins.try_pin(0));
    assert!(!pins.try_freeze(0), "two pins outstanding");
    assert!(pins.has_intent(0) && !pins.is_frozen(0));
    assert!(!pins.try_pin(0), "intent refuses new pins");
    assert!(pins.try_pin(1), "other chunks unaffected");
    pins.unpin(0);
    assert!(!pins.try_freeze(0), "one pin outstanding");
    pins.unpin(0);
    assert_eq!(pins.pin_count(0), 0);
    assert!(pins.try_freeze(0));
    assert!(pins.is_frozen(0));
    assert!(!pins.try_freeze(0), "a chunk is won at most once");
    assert!(!pins.try_pin(0));
}

#[test]
fn guardless_tentative_straddling_resizes_is_republished() {
    // A guardless two-phase insert claims its tentative slot in the stable
    // phase; a full grow + shrink then completes before the finalize.
    // Migration skips tentative entries, and after the round trip the active
    // version number equals the claim-time one again (version ABA) while the
    // table is a different allocation — finalize-time validation must catch
    // the displacement by array identity and republish through the routed
    // path, or the key would be silently lost (the collect_entries audit).
    let epoch = Epoch::new(16);
    let index = HashIndex::new(
        IndexConfig { k_bits: 3, tag_bits: 15, max_resize_chunks: 2 },
        epoch,
    );
    let access = MockRecords::new();
    for k in 0..24u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        access.add(addr, h, Address::INVALID);
        insert(&index, h, addr);
    }
    let key = (1000u64..)
        .find(|&k| match index.find_or_create_tag(KeyHash::of_u64(k), None) {
            CreateOutcome::Created(c) => {
                drop(c); // abandon the probe claim
                true
            }
            CreateOutcome::Found(_) => false,
        })
        .expect("some fresh (offset, tag)");
    let hash = KeyHash::of_u64(key);
    let claim_version = index.status().version;
    let created = match index.find_or_create_tag(hash, None) {
        CreateOutcome::Created(c) => c,
        CreateOutcome::Found(_) => unreachable!("probed above"),
    };

    assert!(index.grow(access.clone(), None));
    assert!(index.shrink(access.clone(), None));
    assert_eq!(index.k_bits(), 3);
    assert_eq!(index.status().version, claim_version, "version ABA is the hard case");

    let addr = Address::new(1 << 20);
    access.add(addr, hash, Address::INVALID);
    let slot = created.finalize(addr);
    assert_eq!(slot.load().address(), addr, "republished slot reflects the record");
    drop(slot);
    assert!(
        chain_addresses(&index, &access, hash).contains(&addr),
        "straddling tentative insert must survive the resize round trip"
    );
    // And nothing else was lost or duplicated.
    for k in 0..24u64 {
        let h = KeyHash::of_u64(k);
        assert!(
            chain_addresses(&index, &access, h).contains(&Address::new(64 + k * 64)),
            "preloaded key {k} lost"
        );
    }
}

#[test]
fn prepare_phase_pin_blocks_freeze_until_insert_completes() {
    // A pinned (prepare-phase) two-phase insert needs no finalize-time
    // repair: its chunk pin blocks the freeze, so migration waits for the
    // insert. Verified end to end: with the single migration chunk pinned by
    // an in-flight insert, grow cannot finish; releasing the slot lets the
    // announced freeze land and the grow completes with the key migrated.
    let epoch = Epoch::new(16);
    let index = HashIndex::new(
        IndexConfig { k_bits: 3, tag_bits: 15, max_resize_chunks: 1 },
        epoch.clone(),
    );
    let access = MockRecords::new();
    for k in 0..8u64 {
        let h = KeyHash::of_u64(k);
        let addr = Address::new(64 + k * 64);
        access.add(addr, h, Address::INVALID);
        insert(&index, h, addr);
    }
    // A stale guard holds the prepare->resizing flip until we refresh it.
    let gate = epoch.acquire();
    let grow_done = StdArc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        let gd = grow_done.clone();
        let (index_ref, grow_access) = (&index, access.clone());
        let grower = s.spawn(move || {
            assert!(index_ref.grow(grow_access, None));
            gd.store(true, StdOrdering::SeqCst);
        });
        while index.status().phase != Phase::Prepare {
            std::thread::yield_now();
        }
        // Claim a tentative entry during prepare: the claim pins the (only)
        // migration chunk.
        let hash = KeyHash::of_u64(4242);
        let created = match index.find_or_create_tag(hash, None) {
            CreateOutcome::Created(c) => c,
            CreateOutcome::Found(_) => panic!("fresh key"),
        };
        // Unblock the flip and wait for the resizing phase.
        gate.refresh();
        while index.status().phase != Phase::Resizing {
            gate.refresh();
            std::thread::yield_now();
        }
        // The freeze is announced but cannot land while our pin is held.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!grow_done.load(StdOrdering::SeqCst), "grow must wait for the pinned insert");
        assert_eq!(index.status().phase, Phase::Resizing);
        // Publish and release: the pin drains, the freeze lands, grow finishes.
        let addr = Address::new(1 << 21);
        access.add(addr, hash, Address::INVALID);
        drop(created.finalize(addr));
        grower.join().unwrap();
        assert_eq!(index.status().phase, Phase::Stable);
        assert_eq!(index.k_bits(), 4);
        assert!(chain_addresses(&index, &access, hash).contains(&addr));
    });
}
