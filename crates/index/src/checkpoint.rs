//! Fuzzy index checkpointing (§3.3, §6.5).
//!
//! "All operations on the FASTER index are performed using atomic
//! compare-and-swap instructions. So, the checkpointing thread can read the
//! index asynchronously without acquiring any read locks." The snapshot is
//! *fuzzy* — concurrent updates may or may not be captured — and is made
//! consistent at recovery time by replaying the HybridLog records between
//! the checkpoint's begin/end tail offsets (implemented in `faster-core`).
//!
//! The on-disk format is a small custom binary layout (no external
//! serialization dependency on this hot-adjacent path):
//!
//! ```text
//! magic (8) | k_bits (1) | tag_bits (1) | pad (6) | count (8)
//! then count * { bucket_idx (8) | entry (8) }
//! ```

use crate::bucket::ENTRIES_PER_BUCKET;
use crate::entry::HashBucketEntry;
use crate::{HashIndex, IndexConfig, Phase};
use faster_epoch::Epoch;
use std::sync::atomic::Ordering;

const MAGIC: u64 = 0x4641_5354_4552_4958; // "FASTERIX"

/// A fuzzy snapshot of every (bucket, entry) pair in the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexCheckpoint {
    pub k_bits: u8,
    pub tag_bits: u8,
    /// `(bucket index, raw entry)` pairs for every non-tentative entry.
    pub entries: Vec<(u64, u64)>,
}

impl IndexCheckpoint {
    /// Serializes to the binary layout documented at module level.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.entries.len() * 16);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.k_bits);
        out.push(self.tag_bits);
        out.extend_from_slice(&[0u8; 6]);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for &(idx, entry) in &self.entries {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&entry.to_le_bytes());
        }
        out
    }

    /// Parses the binary layout; returns `None` on any structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 24 {
            return None;
        }
        let magic = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        if magic != MAGIC {
            return None;
        }
        let k_bits = bytes[8];
        let tag_bits = bytes[9];
        let count = u64::from_le_bytes(bytes[16..24].try_into().ok()?) as usize;
        if bytes.len() != 24 + count * 16 {
            return None;
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let base = 24 + i * 16;
            let idx = u64::from_le_bytes(bytes[base..base + 8].try_into().ok()?);
            let entry = u64::from_le_bytes(bytes[base + 8..base + 16].try_into().ok()?);
            entries.push((idx, entry));
        }
        Some(Self { k_bits, tag_bits, entries })
    }
}

/// Captures a fuzzy checkpoint of the active table.
///
/// # Panics
///
/// Panics if a resize is in progress (callers serialize checkpoints against
/// resizes; both are rare maintenance operations).
pub(crate) fn capture(index: &HashIndex) -> IndexCheckpoint {
    let s = index.status();
    assert_eq!(s.phase, Phase::Stable, "checkpoint during resize is unsupported");
    let arr = index.active_array();
    let mut entries = Vec::new();
    for i in 0..arr.len() {
        let mut bucket = Some(arr.bucket(i));
        while let Some(b) = bucket {
            for j in 0..ENTRIES_PER_BUCKET {
                let e = b.load_entry(j);
                // Tentative entries are invisible by definition; skip them.
                if !e.is_empty() && !e.is_tentative() {
                    entries.push((i as u64, e.0));
                }
            }
            bucket = b.overflow();
        }
    }
    IndexCheckpoint { k_bits: arr.k_bits(), tag_bits: index.tag_bits(), entries }
}

/// Rebuilds an index from a checkpoint (single-threaded).
pub(crate) fn restore(
    ckpt: &IndexCheckpoint,
    max_resize_chunks: usize,
    epoch: Epoch,
    metrics: std::sync::Arc<faster_metrics::IndexMetrics>,
) -> HashIndex {
    let index = HashIndex::with_metrics(
        IndexConfig { k_bits: ckpt.k_bits, tag_bits: ckpt.tag_bits, max_resize_chunks },
        epoch,
        metrics,
    );
    let arr = index.active_array();
    for &(bucket_idx, raw) in &ckpt.entries {
        let e = HashBucketEntry(raw);
        debug_assert!(!e.is_tentative());
        // Place directly: single-threaded restore owns the table.
        let mut bucket = arr.bucket(bucket_idx as usize);
        'placed: loop {
            for j in 0..ENTRIES_PER_BUCKET {
                let word = bucket.entry(j);
                if word.load(Ordering::SeqCst) == 0 {
                    word.store(raw, Ordering::SeqCst);
                    break 'placed;
                }
            }
            bucket = match bucket.overflow() {
                Some(next) => next,
                None => bucket.install_overflow(index.overflow_pool().alloc()),
            };
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let c = IndexCheckpoint {
            k_bits: 12,
            tag_bits: 15,
            entries: vec![(0, 0xABCD), (17, u64::MAX), (4095, 1)],
        };
        let bytes = c.to_bytes();
        assert_eq!(IndexCheckpoint::from_bytes(&bytes).unwrap(), c);
    }

    #[test]
    fn rejects_garbage() {
        assert!(IndexCheckpoint::from_bytes(&[]).is_none());
        assert!(IndexCheckpoint::from_bytes(&[0u8; 24]).is_none());
        let mut ok = IndexCheckpoint { k_bits: 4, tag_bits: 15, entries: vec![] }.to_bytes();
        ok.push(0); // trailing junk
        assert!(IndexCheckpoint::from_bytes(&ok).is_none());
    }

    #[test]
    fn empty_checkpoint_round_trip() {
        let c = IndexCheckpoint { k_bits: 4, tag_bits: 0, entries: vec![] };
        assert_eq!(IndexCheckpoint::from_bytes(&c.to_bytes()).unwrap(), c);
    }
}
