//! The 8-byte hash-bucket entry (Fig 2).
//!
//! ```text
//!   63           49   48   47                          0
//!  ┌───────────────┬─────┬──────────────────────────────┐
//!  │   tag (15)    │tent.│         address (48)         │
//!  └───────────────┴─────┴──────────────────────────────┘
//! ```
//!
//! An all-zero word is an **empty slot**. This is unambiguous because log
//! allocators never hand out addresses below [`Address::FIRST_VALID`], and an
//! owned-but-unpopulated slot always carries the tentative bit (nonzero).
//!
//! "The choice of 8-byte entries is critical, as it allows us to operate
//! latch-free on the entries using 64-bit atomic compare-and-swap" (§3.1).

use faster_util::Address;

const ADDRESS_MASK: u64 = Address::MASK; // low 48 bits
const TENTATIVE_BIT: u64 = 1 << 48;
const TAG_SHIFT: u32 = 49;
/// Maximum width of the tag field in bits.
pub const MAX_TAG_BITS: u8 = 15;
const TAG_MASK: u64 = ((1 << MAX_TAG_BITS) - 1) << TAG_SHIFT;

/// A decoded/encodable hash-bucket entry.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HashBucketEntry(pub u64);

impl HashBucketEntry {
    /// The empty slot.
    pub const EMPTY: HashBucketEntry = HashBucketEntry(0);

    /// Builds an entry from its parts.
    #[inline]
    pub fn new(address: Address, tag: u16, tentative: bool) -> Self {
        debug_assert!(tag < (1 << MAX_TAG_BITS));
        let mut v = address.raw() & ADDRESS_MASK;
        v |= (tag as u64) << TAG_SHIFT;
        if tentative {
            v |= TENTATIVE_BIT;
        }
        HashBucketEntry(v)
    }

    /// True if this is the empty slot.
    #[inline(always)]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The 48-bit record address.
    #[inline(always)]
    pub fn address(self) -> Address {
        Address::new(self.0 & ADDRESS_MASK)
    }

    /// The tag stored in the entry.
    #[inline(always)]
    pub fn tag(self) -> u16 {
        ((self.0 & TAG_MASK) >> TAG_SHIFT) as u16
    }

    /// Whether the tentative (invisible) bit is set (§3.2).
    #[inline(always)]
    pub fn is_tentative(self) -> bool {
        self.0 & TENTATIVE_BIT != 0
    }

    /// This entry with the tentative bit cleared.
    #[inline]
    pub fn finalized(self) -> Self {
        HashBucketEntry(self.0 & !TENTATIVE_BIT)
    }

    /// This entry with a different address (tag preserved, tentative cleared).
    #[inline]
    pub fn with_address(self, address: Address) -> Self {
        HashBucketEntry::new(address, self.tag(), false)
    }
}

impl std::fmt::Debug for HashBucketEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "Entry(EMPTY)");
        }
        write!(
            f,
            "Entry(tag={:#x}, tentative={}, addr={})",
            self.tag(),
            self.is_tentative(),
            self.address()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(HashBucketEntry::EMPTY.0, 0);
        assert!(HashBucketEntry::EMPTY.is_empty());
        assert!(!HashBucketEntry::EMPTY.is_tentative());
        assert_eq!(HashBucketEntry::EMPTY.address(), Address::INVALID);
    }

    #[test]
    fn round_trip_all_fields() {
        for tag in [0u16, 1, 0x7FFF] {
            for addr in [Address::FIRST_VALID, Address::new(0xDEAD_BEEF), Address::MAX] {
                for tentative in [false, true] {
                    let e = HashBucketEntry::new(addr, tag, tentative);
                    assert_eq!(e.address(), addr);
                    assert_eq!(e.tag(), tag);
                    assert_eq!(e.is_tentative(), tentative);
                }
            }
        }
    }

    #[test]
    fn tentative_with_invalid_address_is_nonzero() {
        // The owned-but-unpopulated state must never alias the empty slot,
        // even for tag 0 (the worst case).
        let e = HashBucketEntry::new(Address::INVALID, 0, true);
        assert!(!e.is_empty());
        assert!(e.is_tentative());
    }

    #[test]
    fn finalize_clears_only_tentative() {
        let e = HashBucketEntry::new(Address::new(4096), 0x1234, true);
        let f = e.finalized();
        assert!(!f.is_tentative());
        assert_eq!(f.tag(), 0x1234);
        assert_eq!(f.address(), Address::new(4096));
    }

    #[test]
    fn with_address_preserves_tag() {
        let e = HashBucketEntry::new(Address::new(100), 77, false);
        let e2 = e.with_address(Address::new(200));
        assert_eq!(e2.tag(), 77);
        assert_eq!(e2.address(), Address::new(200));
        assert!(!e2.is_tentative());
    }

    #[test]
    fn fields_do_not_overlap() {
        let e = HashBucketEntry::new(Address::MAX, 0x7FFF, true);
        assert_eq!(e.0, u64::MAX, "all bits used exactly once");
    }
}
