//! # faster-index
//!
//! The FASTER hash index (§3): a concurrent, latch-free, scalable and
//! resizable hash-based index mapping `(offset, tag)` pairs to record
//! addresses supplied by a record allocator.
//!
//! ## Shape (Fig 2)
//!
//! The index is a cache-aligned array of `2^k` 64-byte buckets; each bucket
//! holds seven 8-byte entries plus an overflow-bucket pointer. An entry packs
//! a 15-bit *tag* (extra hash resolution), a *tentative* bit, and a 48-bit
//! address. All entry manipulation is done with 64-bit compare-and-swap —
//! there are no latches anywhere on the operation path.
//!
//! ## Invariant (§3.2)
//!
//! Each `(offset, tag)` has at most one non-tentative index entry. Lookups
//! and deletes are plain CAS operations; *inserts* preserve the invariant
//! with the latch-free **two-phase insert**: claim an empty slot with the
//! tentative bit set (invisible to readers), re-scan the bucket for a
//! duplicate tag, then either back off (duplicate found) or finalize. Fig 3b
//! shows why no interleaving of two such inserters can produce duplicate
//! visible tags.
//!
//! ## Resizing (Appendix B) and checkpointing (§3.3)
//!
//! [`HashIndex::grow`] / [`HashIndex::shrink`] double or halve the table
//! on-line, coordinated by the epoch framework and a chunked cooperative
//! migration — see the resize module. [`HashIndex::checkpoint`] takes a
//! fuzzy, lock-free snapshot of all entries; recovery makes it consistent by
//! replaying the log tail (handled in `faster-core`).

mod bucket;
mod checkpoint;
mod entry;
mod resize;

pub use bucket::{BucketArray, HashBucket, OverflowPool, ENTRIES_PER_BUCKET};
pub use checkpoint::IndexCheckpoint;
pub use entry::{HashBucketEntry, MAX_TAG_BITS};
pub use resize::{ChunkPins, RecordAccess};

use faster_epoch::{Epoch, EpochGuard};
use faster_metrics::IndexMetrics;
use faster_util::{Address, KeyHash, XorShift64};
use parking_lot::{Mutex, RwLock};
use resize::ResizeRun;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for a [`HashIndex`].
#[derive(Debug, Clone, Copy)]
pub struct IndexConfig {
    /// Initial table size: `2^k_bits` buckets.
    pub k_bits: u8,
    /// Tag width in bits (0–15). §7.2.2 shows throughput degrades < 14 %
    /// even with a 1-bit tag; 15 is the paper default.
    pub tag_bits: u8,
    /// Upper bound on the number of migration chunks during resizing
    /// ("the smaller of the maximum concurrency and the number of hash
    /// buckets", Appendix B).
    pub max_resize_chunks: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self { k_bits: 16, tag_bits: MAX_TAG_BITS, max_resize_chunks: 64 }
    }
}

/// Resize phase (Appendix B): stable / prepare-to-resize / resizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Stable,
    Prepare,
    Resizing,
}

/// Decoded `ResizeStatus`: the phase and the active table version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    pub phase: Phase,
    pub version: usize,
}

fn encode_status(s: Status) -> u64 {
    let p = match s.phase {
        Phase::Stable => 0u64,
        Phase::Prepare => 1,
        Phase::Resizing => 2,
    };
    p | ((s.version as u64) << 2)
}

fn decode_status(v: u64) -> Status {
    let phase = match v & 3 {
        0 => Phase::Stable,
        1 => Phase::Prepare,
        2 => Phase::Resizing,
        _ => unreachable!("invalid phase bits"),
    };
    Status { phase, version: ((v >> 2) & 1) as usize }
}

/// The FASTER hash index.
pub struct HashIndex {
    tag_bits: u8,
    max_resize_chunks: usize,
    epoch: Epoch,
    /// Packed [`Status`]: the single byte the paper calls `ResizeStatus`.
    /// Arc'd so the prepare->resizing epoch trigger can outlive borrows.
    status: Arc<AtomicU64>,
    /// The two logical table versions (Appendix B). Only `status.version`
    /// is active in the stable phase; both are live mid-resize.
    versions: [AtomicPtr<BucketArray>; 2],
    /// Retired tables; freed when the index drops. Operations may still hold
    /// `EntrySlot` references into a retired table for the remainder of
    /// their current operation, so retirement must not free.
    // Boxed so retired-table addresses survive Vec reallocation.
    #[allow(clippy::vec_box)]
    graveyard: Mutex<Vec<Box<BucketArray>>>,
    overflow: OverflowPool,
    /// State of the in-progress (or most recent) resize.
    run: RwLock<Option<Arc<ResizeRun>>>,
    metrics: Arc<IndexMetrics>,
}

// Safety: all interior state is atomics, locks, or pool-owned allocations.
unsafe impl Send for HashIndex {}
unsafe impl Sync for HashIndex {}

/// A reference to one live index entry, used to CAS record addresses in and
/// out. While the slot is held during the *prepare-to-resize* phase it also
/// pins its migration chunk, so the resizer cannot pull the bucket out from
/// under the caller's CAS (Appendix B pin array).
pub struct EntrySlot<'a> {
    word: &'a AtomicU64,
    tag: u16,
    _pin: Option<resize::ChunkPin>,
}

impl<'a> EntrySlot<'a> {
    /// Current entry value.
    #[inline]
    pub fn load(&self) -> HashBucketEntry {
        HashBucketEntry(self.word.load(Ordering::SeqCst))
    }

    /// The tag this slot was located under.
    #[inline]
    pub fn tag(&self) -> u16 {
        self.tag
    }

    /// Atomically replaces `expected` with `new`; on failure returns the
    /// entry found instead.
    #[inline]
    pub fn cas(&self, expected: HashBucketEntry, new: HashBucketEntry) -> Result<(), HashBucketEntry> {
        self.word
            .compare_exchange(expected.0, new.0, Ordering::SeqCst, Ordering::SeqCst)
            .map(|_| ())
            .map_err(HashBucketEntry)
    }

    /// CAS the slot to point at `addr` (tag preserved), expecting `expected`.
    #[inline]
    pub fn cas_address(&self, expected: HashBucketEntry, addr: Address) -> Result<(), HashBucketEntry> {
        self.cas(expected, HashBucketEntry::new(addr, self.tag, false))
    }

    /// Deletes the entry (CAS to the empty slot), as in §3.2 "Finding and
    /// Deleting an Entry".
    #[inline]
    pub fn cas_delete(&self, expected: HashBucketEntry) -> Result<(), HashBucketEntry> {
        self.cas(expected, HashBucketEntry::EMPTY)
    }
}

/// A freshly claimed, still-tentative entry produced by the two-phase insert.
///
/// The entry is invisible to every other thread until [`CreatedEntry::finalize`]
/// stores the record address and clears the tentative bit. Dropping the guard
/// without finalizing releases the slot (used when record allocation fails).
pub struct CreatedEntry<'a> {
    slot: Option<EntrySlot<'a>>,
    index: &'a HashIndex,
    /// The table the tentative slot was claimed in, captured for finalize-time
    /// displacement detection (pointer identity is ABA-safe: retired tables go
    /// to the graveyard and are never freed while the index lives, so no later
    /// allocation can reuse this address).
    array: *const BucketArray,
    hash: KeyHash,
}

impl<'a> CreatedEntry<'a> {
    /// Publishes the entry with `addr` and returns the now-visible slot.
    ///
    /// Migration skips tentative entries (`collect_entries`), so a tentative
    /// claim that straddles a resize could be published into an
    /// already-retired table and silently lost. Claims made while *pinned*
    /// (prepare phase) or under an epoch guard cannot straddle — the pin
    /// blocks the freeze and the guard blocks the phase flip until the
    /// operation completes. A **guardless** claim in the stable phase has
    /// neither shield, so after publishing we re-check that our table is
    /// still the active one and, if not, re-publish through the current
    /// routing state (see `republish_displaced`).
    pub fn finalize(mut self, addr: Address) -> EntrySlot<'a> {
        let slot = self.slot.take().expect("finalize called once");
        debug_assert!(addr.is_valid());
        slot.word
            .store(HashBucketEntry::new(addr, slot.tag, false).0, Ordering::SeqCst);
        if slot._pin.is_some() || std::ptr::eq(self.index.active_array_ptr(), self.array) {
            // Safe: either no resize moved the table since the claim, or the
            // claim holds a chunk pin — then the chunk cannot freeze until
            // the slot (and with it the pin) is dropped, at which point the
            // now-visible entry is migrated like any other.
            return slot;
        }
        self.index.republish_displaced(self.hash, addr, slot)
    }
}

impl Drop for CreatedEntry<'_> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            // Abandon: release the tentative claim.
            slot.word.store(HashBucketEntry::EMPTY.0, Ordering::SeqCst);
        }
    }
}

/// Index occupancy snapshot (see [`HashIndex::stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Primary buckets in the active table.
    pub buckets: usize,
    /// Visible entries.
    pub entries: usize,
    /// Mid-insert tentative entries.
    pub tentative_entries: usize,
    /// Allocated overflow buckets currently linked.
    pub overflow_buckets: usize,
    /// Longest bucket chain (primary + overflow).
    pub max_chain: usize,
}

/// Outcome of [`HashIndex::find_or_create_tag`].
pub enum CreateOutcome<'a> {
    /// An entry for this `(offset, tag)` already existed.
    Found(EntrySlot<'a>),
    /// A fresh tentative entry was claimed for the caller.
    Created(CreatedEntry<'a>),
}

impl HashIndex {
    /// Creates an index with `2^k_bits` buckets and a private metrics group.
    pub fn new(config: IndexConfig, epoch: Epoch) -> Self {
        Self::with_metrics(config, epoch, Arc::new(IndexMetrics::default()))
    }

    /// Like [`HashIndex::new`], but events are recorded into the caller's
    /// shared metrics group (the store's registry).
    pub fn with_metrics(config: IndexConfig, epoch: Epoch, metrics: Arc<IndexMetrics>) -> Self {
        assert!(config.tag_bits <= MAX_TAG_BITS);
        assert!(config.k_bits >= 1);
        assert!(config.max_resize_chunks >= 1);
        let initial = Box::into_raw(Box::new(BucketArray::new(config.k_bits)));
        Self {
            tag_bits: config.tag_bits,
            max_resize_chunks: config.max_resize_chunks,
            epoch,
            status: Arc::new(AtomicU64::new(encode_status(Status {
                phase: Phase::Stable,
                version: 0,
            }))),
            versions: [AtomicPtr::new(initial), AtomicPtr::new(std::ptr::null_mut())],
            graveyard: Mutex::new(Vec::new()),
            overflow: OverflowPool::new(),
            run: RwLock::new(None),
            metrics,
        }
    }

    /// The metrics group this index records into.
    pub fn metrics(&self) -> &Arc<IndexMetrics> {
        &self.metrics
    }

    /// Current resize status.
    #[inline]
    pub fn status(&self) -> Status {
        decode_status(self.status.load(Ordering::SeqCst))
    }

    /// Configured tag width.
    #[inline]
    pub fn tag_bits(&self) -> u8 {
        self.tag_bits
    }

    /// `k` of the active table (`2^k` buckets).
    pub fn k_bits(&self) -> u8 {
        self.active_array().k_bits()
    }

    /// Number of primary buckets in the active table.
    pub fn num_buckets(&self) -> usize {
        self.active_array().len()
    }

    /// The epoch framework this index coordinates with.
    pub fn epoch(&self) -> &Epoch {
        &self.epoch
    }

    /// Configured chunk-count cap for resizing.
    pub fn max_resize_chunks(&self) -> usize {
        self.max_resize_chunks
    }

    /// The table pointer for `version`, or `None` if the slot is empty. A
    /// `None` means the status the caller routed on went stale between its
    /// status and pointer loads — a resize completed in the gap and retired
    /// that version (resizers null the old slot when they retire it) — so
    /// the caller must reread the status and retry. A *non-null* pointer is
    /// always safe to dereference: tables are only ever retired to the
    /// graveyard (alive until Drop), never freed while the index lives.
    #[inline]
    fn try_array(&self, version: usize) -> Option<&BucketArray> {
        let p = self.versions[version].load(Ordering::SeqCst);
        if p.is_null() {
            return None;
        }
        Some(unsafe { &*p })
    }

    /// The active table, revalidated: retries until a status/pointer pair
    /// agrees, so a concurrent resize can neither hand out a null slot nor
    /// the next run's still-unmigrated table.
    #[inline]
    pub(crate) fn active_array(&self) -> &BucketArray {
        loop {
            let s = self.status();
            if let Some(arr) = self.try_array(s.version) {
                if self.status() == s {
                    return arr;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Finds the non-tentative entry for `hash`'s `(offset, tag)`, if any
    /// (§3.2 "Finding and Deleting an Entry").
    ///
    /// `guard`: the calling thread's epoch guard, if it holds one. During a
    /// resize, waits inside the routing state machine refresh it so the
    /// caller's own stale epoch cannot stall the epoch-gated phase changes
    /// it is waiting on (cooperative progress, Appendix B).
    pub fn find_tag(&self, hash: KeyHash, guard: Option<&EpochGuard>) -> Option<EntrySlot<'_>> {
        loop {
            match self.route(hash, guard) {
                Route::Table { array, pin } => return self.find_in(array, hash, pin),
                Route::Retry => continue,
            }
        }
    }

    /// Issues a software prefetch for the primary bucket `hash` routes to in
    /// the active table. Stage one of the batched pipeline (DESIGN.md §3):
    /// the caller hashes a whole batch, prefetches every target bucket, and
    /// only then starts probing, so the independent bucket misses overlap.
    /// Purely a hint — a concurrent resize can swap tables between hint and
    /// probe, costing nothing but the wasted prefetch.
    #[inline]
    pub fn prefetch_bucket(&self, hash: KeyHash) {
        let arr = self.active_array();
        let bucket = arr.bucket(hash.bucket_index(arr.k_bits()));
        faster_util::prefetch_read(bucket as *const _);
    }

    /// Multi-probe entry point: prefetches every target bucket up front, then
    /// probes each hash in order, appending one slot (or `None`) per hash to
    /// `out` (cleared first). Equivalent to `find_tag` per element — results
    /// are identical, only the miss timing changes.
    pub fn find_tags<'s>(
        &'s self,
        hashes: &[KeyHash],
        guard: Option<&EpochGuard>,
        out: &mut Vec<Option<EntrySlot<'s>>>,
    ) {
        for &h in hashes {
            self.prefetch_bucket(h);
        }
        out.clear();
        out.reserve(hashes.len());
        out.extend(hashes.iter().map(|&h| self.find_tag(h, guard)));
    }

    /// Finds the entry for `(offset, tag)` or claims a fresh tentative one
    /// via the two-phase insert algorithm (§3.2, Fig 3b). See
    /// [`HashIndex::find_tag`] for the `guard` parameter.
    pub fn find_or_create_tag(
        &self,
        hash: KeyHash,
        guard: Option<&EpochGuard>,
    ) -> CreateOutcome<'_> {
        loop {
            match self.route(hash, guard) {
                Route::Table { array, pin } => return self.find_or_create_in(array, hash, pin),
                Route::Retry => continue,
            }
        }
    }

    /// Occupancy statistics of the active table (diagnostics; approximate
    /// under concurrency).
    pub fn stats(&self) -> IndexStats {
        let arr = self.active_array();
        let mut s = IndexStats { buckets: arr.len(), ..Default::default() };
        for i in 0..arr.len() {
            let mut chain_len = 0usize;
            let mut bucket = Some(arr.bucket(i));
            while let Some(b) = bucket {
                chain_len += 1;
                for j in 0..ENTRIES_PER_BUCKET {
                    let e = b.load_entry(j);
                    if !e.is_empty() {
                        if e.is_tentative() {
                            s.tentative_entries += 1;
                        } else {
                            s.entries += 1;
                        }
                    }
                }
                bucket = b.overflow();
            }
            s.overflow_buckets += chain_len - 1;
            s.max_chain = s.max_chain.max(chain_len);
        }
        s
    }

    /// Total non-tentative entries across all buckets (test/diagnostic aid;
    /// approximate under concurrency).
    pub fn count_entries(&self) -> usize {
        let arr = self.active_array();
        let mut n = 0;
        for i in 0..arr.len() {
            let mut bucket = Some(arr.bucket(i));
            while let Some(b) = bucket {
                for j in 0..ENTRIES_PER_BUCKET {
                    let e = b.load_entry(j);
                    if !e.is_empty() && !e.is_tentative() {
                        n += 1;
                    }
                }
                bucket = b.overflow();
            }
        }
        n
    }

    /// Routes an operation to the correct table version per the resize state
    /// machine, pinning its chunk in the prepare phase (Appendix B).
    fn route(&self, hash: KeyHash, guard: Option<&EpochGuard>) -> Route<'_> {
        let s = self.status();
        match s.phase {
            Phase::Stable => {
                // The status may go stale between its load and the pointer
                // load: a guardless caller (no epoch to gate the flips) can
                // observe a whole resize complete in the gap, leaving the
                // slot null — or, one run later, holding the *next* run's
                // still-unmigrated table. Revalidate the pair; the graveyard
                // keeps a stale-but-revalidated array dereferenceable.
                let Some(array) = self.try_array(s.version) else {
                    return Route::Retry;
                };
                if self.status() != s {
                    return Route::Retry;
                }
                Route::Table { array, pin: None }
            }
            Phase::Prepare => {
                // Version is still the old table; pin its chunk so migration
                // cannot freeze it mid-operation.
                let Some(array) = self.try_array(s.version) else {
                    return Route::Retry;
                };
                let run = self.run.read().clone();
                let Some(run) = run else {
                    // Run not yet published; transient - retry.
                    return Route::Retry;
                };
                if !resize::run_matches(&run, s) {
                    // Leftover run from a previous resize; the new one is
                    // not yet published.
                    return Route::Retry;
                }
                let chunk = run.chunk_of(hash.bucket_index(array.k_bits()));
                match run.try_pin(chunk) {
                    Some(pin) => Route::Table { array, pin: Some(pin) },
                    // Chunk frozen: resizing has begun; reread status.
                    None => Route::Retry,
                }
            }
            Phase::Resizing => {
                // Version already points at the new table; make sure the
                // source chunks feeding our bucket have been migrated,
                // cooperatively migrating if needed.
                let Some(new_array) = self.try_array(s.version) else {
                    return Route::Retry;
                };
                let run = self.run.read().clone();
                let Some(run) = run else { return Route::Retry };
                if !resize::run_matches(&run, s) {
                    return Route::Retry;
                }
                resize::ensure_migrated_for(self, &run, new_array, hash, guard);
                Route::Table { array: new_array, pin: None }
            }
        }
    }

    fn find_in<'a>(
        &'a self,
        array: &'a BucketArray,
        hash: KeyHash,
        pin: Option<resize::ChunkPin>,
    ) -> Option<EntrySlot<'a>> {
        let k = array.k_bits();
        let tag = hash.tag(k, self.tag_bits);
        let mut bucket = array.bucket(hash.bucket_index(k));
        let mut steps = 0u64;
        loop {
            for i in 0..ENTRIES_PER_BUCKET {
                let word = bucket.entry(i);
                let e = HashBucketEntry(word.load(Ordering::SeqCst));
                steps += 1;
                if !e.is_empty() && !e.is_tentative() && e.tag() == tag {
                    // Single shard lookup for the pair: this is the read
                    // hot path, where two separate adds measurably cost.
                    self.metrics.probes.add_two(1, &self.metrics.probe_steps, steps);
                    return Some(EntrySlot { word, tag, _pin: pin });
                }
            }
            match bucket.overflow() {
                Some(next) => bucket = next,
                None => {
                    self.metrics.probes.add_two(1, &self.metrics.probe_steps, steps);
                    return None;
                }
            }
        }
    }

    fn find_or_create_in<'a>(
        &'a self,
        array: &'a BucketArray,
        hash: KeyHash,
        pin: Option<resize::ChunkPin>,
    ) -> CreateOutcome<'a> {
        let k = array.k_bits();
        let tag = hash.tag(k, self.tag_bits);
        let first = array.bucket(hash.bucket_index(k));
        let mut jitter = XorShift64::new(hash.0 | 1);
        // Shared pin across retries: moved into the eventual result.
        let mut pin = pin;
        self.metrics.probes.inc();
        'retry: loop {
            // ---- Phase 1: scan the chain for the tag, noting a free slot.
            let mut free_word: Option<&AtomicU64> = None;
            let mut bucket = first;
            let mut steps = 0u64;
            let last = loop {
                for i in 0..ENTRIES_PER_BUCKET {
                    let word = bucket.entry(i);
                    let e = HashBucketEntry(word.load(Ordering::SeqCst));
                    steps += 1;
                    if e.is_empty() {
                        if free_word.is_none() {
                            free_word = Some(word);
                        }
                        continue;
                    }
                    if e.tag() == tag {
                        if e.is_tentative() {
                            // Another thread mid-insert of this tag: back off
                            // and retry (§3.2).
                            self.metrics.probe_steps.add(steps);
                            self.metrics.tentative_restarts.inc();
                            backoff(&mut jitter);
                            continue 'retry;
                        }
                        self.metrics.probe_steps.add(steps);
                        return CreateOutcome::Found(EntrySlot { word, tag, _pin: pin });
                    }
                }
                match bucket.overflow() {
                    Some(next) => bucket = next,
                    None => break bucket,
                }
            };

            self.metrics.probe_steps.add(steps);

            // ---- Phase 2: claim an empty slot tentatively.
            let Some(word) = free_word else {
                // Chain exhausted: extend it with an overflow bucket and retry
                // (the new bucket has seven empty slots).
                let fresh = self.overflow.alloc();
                self.metrics.overflow_allocs.inc();
                last.install_overflow(fresh);
                continue 'retry;
            };
            let tentative = HashBucketEntry::new(Address::INVALID, tag, true);
            if word
                .compare_exchange(0, tentative.0, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                self.metrics.tentative_restarts.inc();
                continue 'retry;
            }

            // ---- Phase 3: re-scan for a duplicate (possibly tentative) tag.
            let mut bucket = first;
            loop {
                for i in 0..ENTRIES_PER_BUCKET {
                    let other = bucket.entry(i);
                    if std::ptr::eq(other, word) {
                        continue;
                    }
                    let e = HashBucketEntry(other.load(Ordering::SeqCst));
                    if !e.is_empty() && e.tag() == tag {
                        // Duplicate: release our claim, back off, retry.
                        word.store(HashBucketEntry::EMPTY.0, Ordering::SeqCst);
                        self.metrics.tentative_restarts.inc();
                        backoff(&mut jitter);
                        continue 'retry;
                    }
                }
                match bucket.overflow() {
                    Some(next) => bucket = next,
                    None => break,
                }
            }

            // No duplicate: the claim stands. The caller finalizes with the
            // record address (clearing the tentative bit), or drops to abort.
            return CreateOutcome::Created(CreatedEntry {
                slot: Some(EntrySlot { word, tag, _pin: pin.take() }),
                index: self,
                array,
                hash,
            });
        }
    }

    /// Grows the index to `2^(k+1)` buckets on-line (Appendix B).
    ///
    /// Pass the caller's epoch guard if it holds one, so the wait loop can
    /// keep refreshing (otherwise the phase trigger could never fire).
    /// Returns false if another resize was already in progress.
    pub fn grow(&self, access: Arc<dyn RecordAccess>, guard: Option<&EpochGuard>) -> bool {
        resize::resize(self, access, guard, true)
    }

    /// Shrinks the index to `2^(k-1)` buckets on-line (Appendix B).
    pub fn shrink(&self, access: Arc<dyn RecordAccess>, guard: Option<&EpochGuard>) -> bool {
        resize::resize(self, access, guard, false)
    }

    /// Takes a fuzzy checkpoint of the index (§3.3, §6.5): a lock-free scan
    /// of every entry, with no quiescing of concurrent operations.
    pub fn checkpoint(&self) -> IndexCheckpoint {
        checkpoint::capture(self)
    }

    /// Rebuilds an index from a checkpoint (single-threaded recovery path).
    pub fn restore(ckpt: &IndexCheckpoint, max_resize_chunks: usize, epoch: Epoch) -> Self {
        checkpoint::restore(ckpt, max_resize_chunks, epoch, Arc::new(IndexMetrics::default()))
    }

    /// [`HashIndex::restore`] recording into an existing metrics group.
    pub fn restore_with_metrics(
        ckpt: &IndexCheckpoint,
        max_resize_chunks: usize,
        epoch: Epoch,
        metrics: Arc<IndexMetrics>,
    ) -> Self {
        checkpoint::restore(ckpt, max_resize_chunks, epoch, metrics)
    }

    /// Raw pointer to the active table (comparison only — may be stale, or
    /// even null if a full resize retires the observed version mid-read;
    /// never dereference).
    #[inline]
    fn active_array_ptr(&self) -> *const BucketArray {
        self.versions[self.status().version].load(Ordering::SeqCst)
    }

    /// Slow path of [`CreatedEntry::finalize`]: the tentative claim was made
    /// guardless and unpinned in a table that a concurrent resize has since
    /// displaced, so the published entry may sit in a retired table (and may
    /// or may not have been copied by migration, depending on whether the
    /// migrator scanned the bucket before or after the publish). Make the
    /// publish stick in the *current* table:
    ///
    /// 1. Retract the entry from the displaced table. After this, a migrator
    ///    that has not yet scanned the bucket can never copy it — so step 2
    ///    cannot produce a duplicate.
    /// 2. Re-run the routed insert. `Found` means migration did copy our
    ///    entry (it carries our address); `Created` means it was skipped —
    ///    finalize again (recursively validating, in case yet another resize
    ///    lands).
    fn republish_displaced<'a>(
        &'a self,
        hash: KeyHash,
        addr: Address,
        displaced: EntrySlot<'a>,
    ) -> EntrySlot<'a> {
        debug_assert!(displaced._pin.is_none(), "pinned claims are never displaced");
        displaced.word.store(HashBucketEntry::EMPTY.0, Ordering::SeqCst);
        drop(displaced);
        loop {
            match self.find_or_create_tag(hash, None) {
                CreateOutcome::Found(slot) => {
                    let cur = slot.load();
                    if cur.address() == addr {
                        return slot;
                    }
                    // Another guardless inserter of the same (offset, tag)
                    // raced the same displacement window and published first.
                    // Mirror record-layer upsert semantics (last writer wins):
                    // point the entry at our record. The loser's record stays
                    // allocated but unreachable as a chain head — acceptable
                    // for the supported guardless users (single-threaded
                    // recovery/restore paths), documented in DESIGN.md.
                    if slot.cas(cur, HashBucketEntry::new(addr, slot.tag(), false)).is_ok() {
                        return slot;
                    }
                }
                CreateOutcome::Created(created) => return created.finalize(addr),
            }
        }
    }

    pub(crate) fn retire_array(&self, ptr: *mut BucketArray) {
        if !ptr.is_null() {
            // Safety: the pointer came from Box::into_raw and is no longer an
            // active version; the graveyard keeps the allocation alive so any
            // straggling EntrySlot borrows stay valid until index drop.
            self.graveyard.lock().push(unsafe { Box::from_raw(ptr) });
        }
    }

    pub(crate) fn versions_ptr(&self, version: usize) -> &AtomicPtr<BucketArray> {
        &self.versions[version]
    }

    pub(crate) fn status_cell(&self) -> &AtomicU64 {
        &self.status
    }

    pub(crate) fn status_cell_arc(&self) -> Arc<AtomicU64> {
        self.status.clone()
    }

    pub(crate) fn run_cell(&self) -> &RwLock<Option<Arc<ResizeRun>>> {
        &self.run
    }

    pub(crate) fn overflow_pool(&self) -> &OverflowPool {
        &self.overflow
    }

    pub(crate) fn encode(s: Status) -> u64 {
        encode_status(s)
    }
}

enum Route<'a> {
    Table { array: &'a BucketArray, pin: Option<resize::ChunkPin> },
    Retry,
}

#[cold]
fn backoff(jitter: &mut XorShift64) {
    for _ in 0..(jitter.next_below(64) + 1) {
        std::hint::spin_loop();
    }
}

impl Drop for HashIndex {
    fn drop(&mut self) {
        for v in &self.versions {
            let p = v.swap(std::ptr::null_mut(), Ordering::SeqCst);
            if !p.is_null() {
                // Safety: exclusive access in Drop; pointer came from Box::into_raw.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        // graveyard and overflow pool free themselves.
    }
}

#[cfg(test)]
mod tests;
