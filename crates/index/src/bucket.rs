//! Cache-line hash buckets and the overflow-bucket pool (§3.1).
//!
//! A bucket is exactly one 64-byte cache line: seven 8-byte entries plus one
//! 8-byte overflow pointer. Overflow buckets "have the size and alignment of
//! a cache line as well, and are allocated on demand using an in-memory
//! allocator" — here a pool that owns every overflow bucket it hands out, so
//! bucket references stay valid for the lifetime of the index (freed only
//! when the pool drops).

use crate::entry::HashBucketEntry;
use faster_util::CACHE_LINE_SIZE;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Entries per bucket (the eighth word is the overflow pointer).
pub const ENTRIES_PER_BUCKET: usize = 7;

/// One cache-line bucket: 7 entries + overflow pointer.
#[repr(align(64))]
pub struct HashBucket {
    /// `entries[0..7]` hold [`HashBucketEntry`] words; `entries[7]` holds the
    /// overflow pointer (a raw `*const HashBucket` into the pool, or 0).
    words: [AtomicU64; 8],
}

const _: () = assert!(core::mem::size_of::<HashBucket>() == CACHE_LINE_SIZE);

impl HashBucket {
    pub fn new() -> Self {
        Self { words: Default::default() }
    }

    /// The seven entry words.
    #[inline]
    pub fn entries(&self) -> &[AtomicU64] {
        &self.words[..ENTRIES_PER_BUCKET]
    }

    /// Entry word `i` (`i < 7`).
    #[inline]
    pub fn entry(&self, i: usize) -> &AtomicU64 {
        debug_assert!(i < ENTRIES_PER_BUCKET);
        &self.words[i]
    }

    /// Decoded entry `i`.
    #[inline]
    pub fn load_entry(&self, i: usize) -> HashBucketEntry {
        HashBucketEntry(self.entry(i).load(Ordering::SeqCst))
    }

    /// The next overflow bucket in the chain, if any.
    ///
    /// # Safety contract (internal)
    ///
    /// The pointer stored in the overflow word always originates from
    /// [`OverflowPool::alloc`] of the pool owned by the same index, which
    /// keeps the allocation alive until the index drops.
    #[inline]
    pub fn overflow(&self) -> Option<&HashBucket> {
        let p = self.words[7].load(Ordering::SeqCst);
        if p == 0 {
            None
        } else {
            Some(unsafe { &*(p as *const HashBucket) })
        }
    }

    /// Installs `next` as this bucket's overflow bucket if none is present.
    /// Returns the bucket now in place (ours or a concurrent winner's).
    pub fn install_overflow<'a>(&self, next: &'a HashBucket) -> &'a HashBucket
    where
        Self: 'a,
    {
        let p = next as *const HashBucket as u64;
        debug_assert!(p < (1 << 48), "pointer exceeds 48 bits");
        match self.words[7].compare_exchange(0, p, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => next,
            Err(winner) => unsafe { &*(winner as *const HashBucket) },
        }
    }

    /// Clears every word (single-threaded contexts: restore / tests).
    pub fn reset(&self) {
        for w in &self.words {
            w.store(0, Ordering::SeqCst);
        }
    }
}

impl Default for HashBucket {
    fn default() -> Self {
        Self::new()
    }
}

/// Owns all overflow buckets for one index.
///
/// Allocation takes a short mutex — overflow allocation is rare (it means a
/// bucket's 7 slots plus its chain are full) and never on the per-operation
/// fast path. Boxes are stable in memory, so `&HashBucket` references handed
/// out remain valid until the pool is dropped with the index.
#[derive(Default)]
pub struct OverflowPool {
    // The Box is the point: bucket addresses must survive Vec reallocation.
    #[allow(clippy::vec_box)]
    buckets: Mutex<Vec<Box<HashBucket>>>,
}

impl OverflowPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh overflow bucket; the reference lives as long as the
    /// pool.
    pub fn alloc(&self) -> &HashBucket {
        let mut guard = self.buckets.lock();
        guard.push(Box::new(HashBucket::new()));
        let r: &HashBucket = guard.last().expect("just pushed");
        // Safety: the Box's heap allocation is never moved or freed until the
        // pool drops; extending the borrow to the pool's lifetime is sound.
        unsafe { &*(r as *const HashBucket) }
    }

    /// Number of overflow buckets allocated so far.
    pub fn len(&self) -> usize {
        self.buckets.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One version of the bucket table: `2^k_bits` primary buckets.
pub struct BucketArray {
    k_bits: u8,
    buckets: Box<[HashBucket]>,
}

impl BucketArray {
    pub fn new(k_bits: u8) -> Self {
        assert!(k_bits as usize <= 40, "index size cap");
        let n = 1usize << k_bits;
        let buckets = (0..n).map(|_| HashBucket::new()).collect::<Vec<_>>().into_boxed_slice();
        Self { k_bits, buckets }
    }

    #[inline]
    pub fn k_bits(&self) -> u8 {
        self.k_bits
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    pub fn bucket(&self, idx: usize) -> &HashBucket {
        &self.buckets[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faster_util::Address;

    #[test]
    fn bucket_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<HashBucket>(), 64);
        assert_eq!(std::mem::align_of::<HashBucket>(), 64);
    }

    #[test]
    fn entry_store_load() {
        let b = HashBucket::new();
        let e = HashBucketEntry::new(Address::new(4096), 42, false);
        b.entry(3).store(e.0, Ordering::SeqCst);
        assert_eq!(b.load_entry(3), e);
        assert!(b.load_entry(0).is_empty());
    }

    #[test]
    fn overflow_chain() {
        let pool = OverflowPool::new();
        let b = HashBucket::new();
        assert!(b.overflow().is_none());
        let o1 = pool.alloc();
        let installed = b.install_overflow(o1);
        assert!(std::ptr::eq(installed, o1));
        assert!(std::ptr::eq(b.overflow().unwrap(), o1));
        // Second install loses and returns the winner.
        let o2 = pool.alloc();
        let winner = b.install_overflow(o2);
        assert!(std::ptr::eq(winner, o1));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn concurrent_overflow_install_single_winner() {
        use std::sync::Arc;
        let pool = Arc::new(OverflowPool::new());
        let b = Arc::new(HashBucket::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let mine = pool.alloc();
                b.install_overflow(mine) as *const HashBucket as usize
            }));
        }
        let results: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]), "all threads agree on the winner");
    }

    #[test]
    fn bucket_array_shape() {
        let a = BucketArray::new(4);
        assert_eq!(a.len(), 16);
        assert_eq!(a.k_bits(), 4);
        let _ = a.bucket(15);
    }
}
