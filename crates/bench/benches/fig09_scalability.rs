//! Figure 9: thread scalability, dataset in memory, Zipfian distribution.
//!
//! 9a: 100 % RMW, 8-byte payloads — paper: FASTER scales near-linearly;
//! Intel TBB falls over around 20 cross-socket threads; Masstree scales but
//! low; RocksDB flat and lowest.
//! 9b: 0:100 blind updates, 100-byte payloads — linear until memory
//! bandwidth saturates.
//!
//! NOTE: on a single-core host this measures contention overhead rather than
//! parallel speedup; the relative ordering of systems is the reproducible
//! shape.

use faster_bench::*;
use faster_core::BlindKv;
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, Mix, WorkloadConfig};

fn main() {
    let keys = default_keys();
    let dur = run_duration();
    let sweep = thread_sweep();
    println!("# Fig 9a: 100% RMW, 8-byte payloads, Zipf; threads {sweep:?}");
    if batch_size() > 1 {
        println!(
            "# issue mode: batched (FASTER store-side, baselines generation-only), \
             FASTER_BENCH_BATCH={}",
            batch_size()
        );
    }
    let wl = WorkloadConfig::new(keys, Mix::rmw_only(), Distribution::zipf_default());
    for &t in &sweep {
        let store = build_faster(keys, in_memory_log(keys, 24, 0.9), SumStore, MemDevice::new(2));
        let r = run_faster_counts(&store, &wl, t, dur, true);
        println!("fig9a threads={t:2} FASTER   {:8.2} Mops", r.mops);
        emit("fig9a", "FASTER", t, format!("{:.3}", r.mops));
        let m = run_shard_map(&wl, t, dur);
        println!("fig9a threads={t:2} ShardMap {m:8.2} Mops");
        emit("fig9a", "IntelTBB-standin", t, format!("{m:.3}"));
        let o = run_ordered(&wl, t, dur);
        println!("fig9a threads={t:2} Ordered  {o:8.2} Mops");
        emit("fig9a", "Masstree-standin", t, format!("{o:.3}"));
        let l = run_lsm(&wl, t, dur);
        println!("fig9a threads={t:2} MiniLsm  {l:8.2} Mops");
        emit("fig9a", "RocksDB-standin", t, format!("{l:.3}"));
    }

    println!("# Fig 9b: 0:100 blind updates, 100-byte payloads, Zipf");
    let wl = WorkloadConfig::new(keys, Mix::r_bu(0, 100), Distribution::zipf_default());
    for &t in &sweep {
        let store: faster_core::FasterKv<u64, Payload100, BlindKv<Payload100>> =
            build_faster(keys, in_memory_log(keys, 120, 0.9), BlindKv::new(), MemDevice::new(2));
        let r = run_faster_bytes(&store, &wl, t, dur, true);
        println!("fig9b threads={t:2} FASTER   {:8.2} Mops", r.mops);
        emit("fig9b", "FASTER-100B", t, format!("{:.3}", r.mops));
    }
}
