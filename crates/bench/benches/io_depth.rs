//! Disk-resident read throughput vs. I/O depth — the headline measurement
//! for the completion-ring async I/O path (DESIGN.md §9).
//!
//! Fig 10 memory-budget setup shrunk to its cold extreme: the HybridLog
//! buffer holds a small fraction of the dataset, so uniform random reads
//! almost always miss memory and go pending against the device (MemDevice
//! with the NVMe latency model: ~20 µs per read). A single session issues
//! `depth` reads back-to-back, then drains with `complete_pending`; with
//! the completion ring the whole window overlaps in flight, so throughput
//! should scale nearly linearly with depth until submission overhead
//! dominates. Prints human-readable rows, `csv,io_depth,...` rows, and one
//! `json,...` line per depth that `scripts/bench_smoke.sh` collects into
//! `BENCH_io.json` (with a depth-64 : depth-1 ratio gate).
//!
//! Knobs: `FASTER_BENCH_IO_KEYS` (default 200 K), `FASTER_BENCH_IO_SECS`
//! (seconds per depth, default 1.0).

use faster_bench::SumStore;
use faster_core::{FasterKv, FasterKvConfig, OpError};
use faster_hlog::HLogConfig;
use faster_storage::{LatencyModel, MemDevice};
use faster_util::XorShift64;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let keys = env_u64("FASTER_BENCH_IO_KEYS", 200_000);
    let dur = Duration::from_secs_f64(env_f64("FASTER_BENCH_IO_SECS", 1.0).clamp(0.1, 30.0));

    // ~4.8 MB of 24-byte records against a 512 KB buffer: ~90% of uniform
    // reads fall below the head address and must hit the device.
    let log = HLogConfig { page_bits: 16, buffer_pages: 8, mutable_pages: 0, io_threads: 4 }
        .with_mutable_fraction(0.5);
    let store: FasterKv<u64, u64, SumStore> = FasterKv::new(
        FasterKvConfig::for_keys(keys).with_log(log),
        SumStore,
        MemDevice::with_latency(4, LatencyModel::nvme()),
    );
    let session = store.start_session();
    for k in 0..keys {
        session.upsert(&k, &k).unwrap();
    }
    session.complete_pending(true);
    store.log().flush_barrier().unwrap();

    println!("# io_depth: {keys} keys disk-resident, NVMe latency model, {:.1}s/depth", dur.as_secs_f64());

    let mut results: Vec<(usize, f64)> = Vec::new();
    for depth in [1usize, 4, 16, 64] {
        // Warm the index and the retained-buffer paths at this depth.
        let mut rng = XorShift64::new(0x10DE47 ^ depth as u64);
        for _ in 0..16 {
            let mut pending = false;
            for _ in 0..depth {
                let k = rng.next_below(keys);
                if matches!(session.read(&k, &0), Err(OpError::Pending(_))) {
                    pending = true;
                }
            }
            session.complete_pending(pending);
        }

        let start = Instant::now();
        let mut ops = 0u64;
        let mut io_pending = 0u64;
        while start.elapsed() < dur {
            let mut pending = false;
            for _ in 0..depth {
                let k = rng.next_below(keys);
                if matches!(session.read(&k, &0), Err(OpError::Pending(_))) {
                    pending = true;
                    io_pending += 1;
                }
            }
            session.complete_pending(pending);
            ops += depth as u64;
        }
        let secs = start.elapsed().as_secs_f64();
        let mops = ops as f64 / secs / 1e6;
        let pending_pct = io_pending as f64 / ops as f64 * 100.0;
        println!("io_depth depth={depth:<3} {mops:>8.4} Mops ({pending_pct:.0}% pending)");
        faster_bench::emit("io_depth", "FASTER-disk-read", depth, format!("{mops:.4}"));
        println!(
            "json,{{\"bench\":\"io_depth\",\"depth\":{depth},\"ops\":{ops},\"secs\":{secs:.4},\
             \"mops\":{mops:.4},\"pending_pct\":{pending_pct:.1}}}"
        );
        results.push((depth, mops));
    }

    if let (Some(&(_, d1)), Some(&(_, d64))) = (
        results.iter().find(|(d, _)| *d == 1),
        results.iter().find(|(d, _)| *d == 64),
    ) {
        println!("speedup: depth64/depth1 {:.2}x", d64 / d1);
    }

    // Store-wide snapshot so BENCH_io.json carries the io_depth/io_latency
    // histograms and the drained io_inflight gauge alongside the sweep.
    println!(
        "json,{{\"bench\":\"io_depth\",\"mode\":\"metrics_snapshot\",\"metrics\":{}}}",
        store.metrics().to_json()
    );
}
