//! Batched vs scalar issue on a single thread — the headline measurement
//! for the software-prefetch pipeline (DESIGN.md §3).
//!
//! Uniform random point reads (and in-place RMWs) over a key space sized
//! well past the last-level cache, on a fully in-memory HybridLog, so each
//! scalar op pays the serial hash-bucket-then-record DRAM miss chain that
//! batching overlaps. Prints human-readable rows, `csv,batch,...` rows in
//! the harness's common format, and one `json,...` line per mode that
//! `scripts/bench_smoke.sh` collects into `BENCH_batch.json`.
//!
//! Knobs: `FASTER_BENCH_KEYS` (default 2 M), `FASTER_BENCH_BATCH`
//! (default 64), `FASTER_BENCH_OPS` (default 4 M per mode).

use faster_bench::{in_memory_log, SumStore};
use faster_core::{FasterKv, FasterKvConfig, Outcome};
use faster_storage::MemDevice;
use faster_util::XorShift64;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn mops(ops: u64, secs: f64) -> f64 {
    ops as f64 / secs / 1e6
}

fn report(mode: &str, batch: usize, ops: u64, secs: f64) -> f64 {
    let m = mops(ops, secs);
    println!("{mode:<24} batch={batch:<4} {m:>8.3} Mops");
    faster_bench::emit("batch", mode, batch, format!("{m:.4}"));
    println!(
        "json,{{\"bench\":\"batch_vs_scalar\",\"mode\":\"{mode}\",\"batch\":{batch},\
         \"ops\":{ops},\"secs\":{secs:.4},\"mops\":{m:.4}}}"
    );
    m
}

fn main() {
    let keys = env_u64("FASTER_BENCH_KEYS", 2_000_000);
    let batch = env_u64("FASTER_BENCH_BATCH", 64).max(2) as usize;
    let total_ops = env_u64("FASTER_BENCH_OPS", 4_000_000);

    // In-memory layout: 24-byte records (header + u64 key + u64 value),
    // everything mutable so reads never go pending.
    let store: FasterKv<u64, u64, SumStore> = FasterKv::new(
        FasterKvConfig::for_keys(keys).with_log(in_memory_log(keys, 24, 0.9)),
        SumStore,
        MemDevice::new(2),
    );
    let session = store.start_session();
    for k in 0..keys {
        session.upsert(&k, &k).unwrap();
    }
    session.complete_pending(true);

    // One uniform random key stream, replayed identically by every mode so
    // scalar and batched touch the same cache-hostile sequence.
    let mut rng = XorShift64::new(0xFA57E);
    let stream: Vec<u64> = (0..total_ops).map(|_| rng.next_below(keys)).collect();

    // Warm the index/log resident sets once.
    for chunk in stream[..stream.len().min(1 << 16)].chunks(batch) {
        std::hint::black_box(session.read_batch(chunk, &0));
    }

    println!("# batch_vs_scalar: {keys} keys, {total_ops} ops/mode, batch={batch}");

    let t = Instant::now();
    let mut found = 0u64;
    for k in &stream {
        if let Ok(Outcome::Value(v)) = session.read(k, &0) {
            found += std::hint::black_box(v) & 1;
        }
    }
    let scalar_read = report("scalar_read", 1, total_ops, t.elapsed().as_secs_f64());

    let t = Instant::now();
    for chunk in stream.chunks(batch) {
        for r in session.read_batch(chunk, &0) {
            if let Ok(Outcome::Value(v)) = r {
                found += std::hint::black_box(v) & 1;
            }
        }
    }
    let batched_read = report("batched_read", batch, total_ops, t.elapsed().as_secs_f64());

    let t = Instant::now();
    for k in &stream {
        std::hint::black_box(session.rmw(k, &1)).unwrap();
    }
    let scalar_rmw = report("scalar_rmw", 1, total_ops, t.elapsed().as_secs_f64());

    let t = Instant::now();
    let mut rmw_buf: Vec<(u64, u64)> = Vec::with_capacity(batch);
    for chunk in stream.chunks(batch) {
        rmw_buf.clear();
        rmw_buf.extend(chunk.iter().map(|&k| (k, 1u64)));
        std::hint::black_box(session.rmw_batch(&rmw_buf));
    }
    let batched_rmw = report("batched_rmw", batch, total_ops, t.elapsed().as_secs_f64());

    std::hint::black_box(found);
    println!(
        "speedup: read {:.2}x  rmw {:.2}x",
        batched_read / scalar_read,
        batched_rmw / scalar_rmw
    );

    // Store-wide observability snapshot, tagged with the metrics build so
    // `scripts/bench_smoke.sh` can pair default vs `metrics-off` runs when
    // computing the counter-overhead delta for BENCH_metrics.json.
    let build = if cfg!(feature = "metrics-off") {
        "off"
    } else if cfg!(feature = "metrics-timing") {
        "timing"
    } else {
        "default"
    };
    println!(
        "json,{{\"bench\":\"batch_vs_scalar\",\"mode\":\"metrics_snapshot\",\
         \"metrics_build\":\"{build}\",\"metrics\":{}}}",
        store.metrics().to_json()
    );
}
