//! §7.2.4: Redis-style single-threaded store with client pipelining vs
//! single-threaded FASTER.
//!
//! Paper result: ~1.1 M sets/s and ~1.4 M gets/s pipelined on a small key
//! space (0.7 M / 0.9 M at 250 M keys) — far below single-threaded FASTER.

use faster_bench::*;
use faster_baselines::RedisLike;
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, Mix, WorkloadConfig};
use std::time::Instant;

fn main() {
    let keys = ((1_000_000.0 * scale()) as u64).max(10_000);
    let total_ops: u64 = ((2_000_000.0 * scale()) as u64).max(100_000);
    println!("# Redis comparison: {keys} keys, {total_ops} ops per cell");

    // redis-benchmark-style: 10 clients, varying pipeline depth, 50% get/set.
    for pipeline in [1usize, 10, 50, 200] {
        let server = RedisLike::start();
        let clients = 10;
        let per_client = total_ops / clients as u64;
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = server.client();
                std::thread::spawn(move || {
                    let mut rng = faster_util::XorShift64::new(c as u64 + 1);
                    let mut done = 0u64;
                    while done < per_client {
                        let batch = pipeline.min((per_client - done) as usize);
                        let keys_batch: Vec<u64> =
                            (0..batch).map(|_| rng.next_below(keys)).collect();
                        let sets: Vec<bool> =
                            (0..batch).map(|_| rng.next_below(2) == 0).collect();
                        client.pipeline(&keys_batch, &sets);
                        done += batch as u64;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client");
        }
        let mops = total_ops as f64 / start.elapsed().as_secs_f64() / 1e6;
        println!("redis-like pipeline={pipeline:3} {mops:8.3} Mops");
        emit("redis", "RedisLike", pipeline, format!("{mops:.4}"));
    }

    // Single-threaded FASTER on the same shape of workload.
    let wl = WorkloadConfig::new(keys, Mix::r_bu(50, 50), Distribution::Uniform);
    let store = build_faster(keys, in_memory_log(keys, 24, 0.9), SumStore, MemDevice::new(2));
    let r = run_faster_counts(&store, &wl, 1, run_duration(), true);
    println!("FASTER single-thread {:.3} Mops", r.mops);
    emit("redis", "FASTER-1thread", 0, format!("{:.4}", r.mops));
}
