//! Ablation studies for the design choices DESIGN.md calls out — not paper
//! figures, but quantifications of the mechanisms the paper argues for:
//!
//! 1. **CRDT deltas vs. pending RMWs** (§6.3): the same sum workload run
//!    with `is_mergeable() = true` (fuzzy/disk RMWs append deltas, no I/O)
//!    and `false` (fuzzy RMWs go pending, disk RMWs read first).
//! 2. **Epoch refresh interval** (§2.5): more frequent refresh shrinks the
//!    fuzzy region (fresher thread-local offsets) but costs epoch-table
//!    traffic.
//! 3. **Read cache on/off** (Appendix D) on a read-heavy, cold-heavy
//!    workload.
//! 4. **One-hop prev-chain prefetch in `read_batch`** (the ROADMAP
//!    experiment): batched reads against long resident hash chains, and
//!    against a cold dataset behind the read cache, with
//!    `prefetch_prev_chain` off vs on — reporting throughput and the
//!    cache hit rate from the new metrics counters.

use faster_bench::*;
use faster_core::{BlindKv, CountStore, FasterKv, FasterKvConfig, OpError};
use faster_hlog::HLogConfig;
use faster_storage::{Device, LatencyModel, MemDevice};
use faster_ycsb::{Distribution, Mix, WorkloadConfig};
use std::time::Instant;

fn main() {
    let keys = (default_keys() / 2).max(10_000);
    let dur = run_duration();
    let threads = max_threads();

    // ---- 1. CRDT vs pending, small IPU region to stress the fuzzy path.
    println!("# Ablation 1: mergeable (CRDT deltas) vs non-mergeable RMW, IPU 0.3");
    let wl = WorkloadConfig::new(keys, Mix::rmw_only(), Distribution::zipf_default());
    let store = build_faster(keys, in_memory_log(keys, 24, 0.3), SumStore, MemDevice::new(2));
    let plain = run_faster_counts(&store, &wl, threads, dur, true);
    drop(store);
    let store = build_faster(keys, in_memory_log(keys, 24, 0.3), CountStore, MemDevice::new(2));
    let crdt = run_faster_counts(&store, &wl, threads, dur, true);
    println!(
        "ablation-crdt plain {:.2} Mops ({} fuzzy-pending) | crdt {:.2} Mops ({} deltas, {} fuzzy-pending)",
        plain.mops, plain.stats.fuzzy_pending, crdt.mops, crdt.stats.deltas, crdt.stats.fuzzy_pending
    );
    emit("ablation_crdt", "non-mergeable", "Mops", format!("{:.3}", plain.mops));
    emit("ablation_crdt", "mergeable", "Mops", format!("{:.3}", crdt.mops));
    assert_eq!(crdt.stats.fuzzy_pending, 0, "CRDTs never take the pending path");

    // ---- 2. Refresh interval sweep.
    println!("# Ablation 2: epoch refresh interval (100% RMW zipf)");
    for interval in [16u32, 64, 256, 1024] {
        let mut cfg = FasterKvConfig::for_keys(keys).with_log(in_memory_log(keys, 24, 0.8));
        cfg.refresh_interval = interval;
        let store: FasterKv<u64, u64, SumStore> = FasterKv::new(cfg, SumStore, MemDevice::new(2));
        let r = run_faster_counts(&store, &wl, threads, dur, true);
        let fuzzy_pct = if r.stats.rmws > 0 {
            100.0 * r.stats.fuzzy_pending as f64 / r.stats.rmws as f64
        } else {
            0.0
        };
        println!("ablation-refresh interval={interval:4} {:8.2} Mops fuzzy {fuzzy_pct:.4}%", r.mops);
        emit("ablation_refresh", "Mops", interval, format!("{:.3}", r.mops));
        emit("ablation_refresh", "FuzzyPct", interval, format!("{fuzzy_pct:.4}"));
    }

    // ---- 3. Read cache on/off: cold read-mostly workload.
    println!("# Ablation 3: Appendix D read cache, 95:5 zipf reads over a cold dataset");
    let cold_keys = keys;
    let log = HLogConfig { page_bits: 14, buffer_pages: 8, mutable_pages: 6, io_threads: 4 };
    let cache = HLogConfig { page_bits: 16, buffer_pages: 32, mutable_pages: 16, io_threads: 1 };
    for enabled in [false, true] {
        let mut cfg = FasterKvConfig::for_keys(cold_keys).with_log(log);
        if enabled {
            cfg = cfg.with_read_cache(cache);
        }
        let device = MemDevice::with_latency(4, LatencyModel::nvme());
        let store: FasterKv<u64, u64, BlindKv<u64>> =
            FasterKv::new(cfg, BlindKv::new(), device.clone());
        {
            let s = store.start_session();
            for k in 0..cold_keys {
                s.upsert(&k, &k).unwrap();
            }
            store.log().flush_barrier().unwrap();
        }
        // Zipf read stream driven synchronously (complete each pending read).
        let session = store.start_session();
        let wl = WorkloadConfig::new(cold_keys, Mix::r_bu(100, 0), Distribution::zipf_default());
        let mut gen = faster_ycsb::WorkloadGenerator::new(&wl, 0);
        let start = Instant::now();
        let mut ops = 0u64;
        while start.elapsed() < dur {
            let op = gen.next_op();
            if let Err(OpError::Pending(_)) = session.read(&op.key, &0) {
                session.complete_pending(true);
            }
            ops += 1;
        }
        let mops = ops as f64 / start.elapsed().as_secs_f64() / 1e6;
        let io = store.metrics().sessions.totals.io_issued;
        println!(
            "ablation-readcache enabled={enabled:5} {mops:8.3} Mops ({io} disk reads, {} device reads)",
            device.stats().reads
        );
        emit("ablation_readcache", if enabled { "on" } else { "off" }, "Mops", format!("{mops:.4}"));
    }

    // ---- 4. read_batch one-hop prev-chain prefetch (ROADMAP experiment).
    let batch = 64usize;

    // 4a. Resident chains: few tag bits force hash-chain collisions, so
    // batched reads walk the prev-chain in memory — the case the extra
    // prefetch hop targets.
    println!("# Ablation 4a: read_batch prev-chain prefetch, resident collision chains");
    let chain_keys = keys;
    // ~8 keys per (bucket, tag) slot: 2^(k_bits + tag_bits) ≈ keys / 8.
    let tag_bits = 3u8;
    let k_bits = (63 - chain_keys.leading_zeros() as u8)
        .saturating_sub(tag_bits + 2)
        .clamp(4, 30);
    for prefetch in [false, true] {
        let cfg = FasterKvConfig::for_keys(chain_keys)
            .with_index(faster_index::IndexConfig { k_bits, tag_bits, max_resize_chunks: 64 })
            .with_log(in_memory_log(chain_keys, 24, 0.9))
            .with_prefetch_prev_chain(prefetch);
        let store: FasterKv<u64, u64, BlindKv<u64>> =
            FasterKv::new(cfg, BlindKv::new(), MemDevice::new(2));
        let session = store.start_session();
        for k in 0..chain_keys {
            session.upsert(&k, &k).unwrap();
        }
        session.complete_pending(true);
        let wl = WorkloadConfig::new(chain_keys, Mix::r_bu(100, 0), Distribution::Uniform);
        let mut gen = faster_ycsb::WorkloadGenerator::new(&wl, 7);
        let mut keys_buf: Vec<u64> = Vec::with_capacity(batch);
        let start = Instant::now();
        let mut ops = 0u64;
        while start.elapsed() < dur {
            keys_buf.clear();
            keys_buf.extend((0..batch).map(|_| gen.next_op().key));
            std::hint::black_box(session.read_batch(&keys_buf, &0));
            ops += batch as u64;
        }
        let mops = ops as f64 / start.elapsed().as_secs_f64() / 1e6;
        let probe_len = store.metrics().index.avg_probe_len();
        println!(
            "ablation-prefetch-chain prev_chain={prefetch:5} {mops:8.3} Mops (avg probe {probe_len:.2})"
        );
        emit("ablation_prefetch_chain", if prefetch { "on" } else { "off" }, "Mops", format!("{mops:.4}"));
    }

    // 4b. Cold zipf reads behind the read cache: the hit/miss counters
    // show whether the prefetch hop changes cache effectiveness or only
    // overlaps latency.
    println!("# Ablation 4b: read_batch prev-chain prefetch, cold zipf reads + read cache");
    for prefetch in [false, true] {
        let cfg = FasterKvConfig::for_keys(cold_keys)
            .with_log(log)
            .with_read_cache(cache)
            .with_prefetch_prev_chain(prefetch);
        let device = MemDevice::with_latency(4, LatencyModel::nvme());
        let store: FasterKv<u64, u64, BlindKv<u64>> =
            FasterKv::new(cfg, BlindKv::new(), device.clone());
        {
            let s = store.start_session();
            for k in 0..cold_keys {
                s.upsert(&k, &k).unwrap();
            }
            store.log().flush_barrier().unwrap();
        }
        let session = store.start_session();
        let wl = WorkloadConfig::new(cold_keys, Mix::r_bu(100, 0), Distribution::zipf_default());
        let mut gen = faster_ycsb::WorkloadGenerator::new(&wl, 11);
        let mut keys_buf: Vec<u64> = Vec::with_capacity(batch);
        let start = Instant::now();
        let mut ops = 0u64;
        while start.elapsed() < dur {
            keys_buf.clear();
            keys_buf.extend((0..batch).map(|_| gen.next_op().key));
            let rs = session.read_batch(&keys_buf, &0);
            if rs.iter().any(|r| matches!(r, Err(OpError::Pending(_)))) {
                session.complete_pending(true);
            }
            ops += batch as u64;
        }
        let mops = ops as f64 / start.elapsed().as_secs_f64() / 1e6;
        let m = store.metrics();
        let rc = m.read_cache.expect("cache configured");
        println!(
            "ablation-prefetch-cold prev_chain={prefetch:5} {mops:8.3} Mops rc_hit_rate {:.4} ({} hits / {} misses, {} inserts)",
            rc.hit_rate(),
            rc.hits,
            rc.misses,
            rc.inserts
        );
        emit("ablation_prefetch_cold", if prefetch { "on" } else { "off" }, "Mops", format!("{mops:.4}"));
        emit("ablation_prefetch_cold", if prefetch { "on" } else { "off" }, "HitRate", format!("{:.4}", rc.hit_rate()));
    }
}
