//! Figure 11: HybridLog vs the §5 append-only log allocator, YCSB-A 50:50,
//! uniform and Zipfian, thread sweep.
//!
//! Paper result: append-only is flat at ≤ 20 M ops/s (tail contention + new
//! record per update) and does not scale; HybridLog scales linearly. Zipf
//! beats uniform under HybridLog (cache/TLB locality) but *hurts* append-only
//! (CAS conflicts on hot keys).

use faster_bench::*;
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, Mix, WorkloadConfig};

fn main() {
    let keys = default_keys();
    let dur = run_duration();
    let sweep = thread_sweep();
    println!("# Fig 11: append-only (mutable fraction 0) vs HybridLog (0.9)");
    for (dname, dist) in [("uniform", Distribution::Uniform), ("zipf", Distribution::zipf_default())] {
        let wl = WorkloadConfig::new(keys, Mix::r_bu(50, 50), dist);
        for &t in &sweep {
            // HybridLog.
            let store = build_faster(keys, in_memory_log(keys, 24, 0.9), SumStore, MemDevice::new(2));
            let hl = run_faster_counts(&store, &wl, t, dur, true);
            drop(store);
            // Append-only: mutable region size zero (the §5 strawman). The
            // log grows on *every* update, so back it with a real (simulated)
            // device and an enlarged buffer; reads of evicted records take
            // the async path, exactly like the paper's append-only store.
            let mut aol_log = in_memory_log(keys, 24, 0.0);
            aol_log.buffer_pages *= 4;
            let store = build_faster(keys, aol_log, SumStore, MemDevice::new(2));
            let aol = run_faster_counts(&store, &wl, t, dur, true);
            println!(
                "fig11 {dname:7} threads={t:2} HybridLog {:8.2} Mops | AppendOnly {:8.2} Mops",
                hl.mops, aol.mops
            );
            emit("fig11", &format!("FASTER-HL ({dname})"), t, format!("{:.3}", hl.mops));
            emit("fig11", &format!("FASTER-AOL ({dname})"), t, format!("{:.3}", aol.mops));
        }
    }
}
