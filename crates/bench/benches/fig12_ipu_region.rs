//! Figure 12: effect of the in-place-update (IPU) region size.
//!
//! 12a: throughput rises and log growth falls as the IPU fraction grows;
//! Zipf saturates at lower IPU factors than uniform (hot keys concentrate in
//! the mutable tail — the log-shaping effect of §6.4).
//! 12b: the percentage of RMWs that land in the fuzzy region stays tiny —
//! paper: under 3 %, and above 0.5 % only below ~0.7 IPU factor.

use faster_bench::*;
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, Mix, WorkloadConfig};

fn main() {
    let keys = default_keys();
    let dur = run_duration();
    let threads = max_threads();
    println!("# Fig 12a/12b: 100% RMW, {threads} threads, IPU fraction sweep");
    for (dname, dist) in [("uniform", Distribution::Uniform), ("zipf", Distribution::zipf_default())] {
        for ipu in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            let wl = WorkloadConfig::new(keys, Mix::rmw_only(), dist);
            let store =
                build_faster(keys, in_memory_log(keys, 24, ipu), SumStore, MemDevice::new(2));
            let r = run_faster_counts(&store, &wl, threads, dur, true);
            let fuzzy_pct = if r.stats.rmws > 0 {
                100.0 * r.stats.fuzzy_pending as f64 / r.stats.rmws as f64
            } else {
                0.0
            };
            println!(
                "fig12 {dname:7} ipu={ipu:.1} {:8.2} Mops, log {:8.1} MB/s, fuzzy {:6.3}%",
                r.mops, r.log_growth_mb_s, fuzzy_pct
            );
            emit("fig12a", &format!("Throughput-{dname}"), format!("{ipu:.1}"), format!("{:.3}", r.mops));
            emit("fig12a", &format!("LogRate-{dname}"), format!("{ipu:.1}"), format!("{:.1}", r.log_growth_mb_s));
            if dname == "uniform" {
                emit("fig12b", "FuzzyPct-uniform", format!("{ipu:.1}"), format!("{fuzzy_pct:.4}"));
            }
        }
    }
}
