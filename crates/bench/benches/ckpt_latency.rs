//! Checkpoint commit latency and recovery cost per fallback depth.
//!
//! Measures the two prices of the atomic multi-generation commit protocol
//! (DESIGN.md §7): what a `CheckpointManager::checkpoint_store()` call costs
//! as the store grows, and what recovery costs as arbitration falls back
//! deeper into the generation chain (each newer blob corrupted in place, so
//! depth d means d checksum-failed candidates before the winner).
//!
//! Prints human-readable rows and one `json,...` line per measurement that
//! `scripts/bench_smoke.sh` collects into `BENCH_ckpt.json`.
//!
//! Knobs: `FASTER_BENCH_CKPT_KEYS` (upserts per generation, default 50 000),
//! `FASTER_BENCH_CKPT_GENS` (generations committed, default 4).

use faster_core::ckpt_manager::{self, CheckpointConfig, CheckpointManager};
use faster_core::{CountStore, FasterKv, FasterKvConfig};
use faster_storage::{Device, MemDevice};
use std::sync::Arc;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn read_raw(dev: &Arc<dyn Device>, offset: u64, len: usize) -> Vec<u8> {
    let (tx, rx) = std::sync::mpsc::channel();
    dev.read_async(offset, len, Box::new(move |r| tx.send(r).unwrap()));
    rx.recv().unwrap().unwrap()
}

fn write_raw(dev: &Arc<dyn Device>, offset: u64, data: Vec<u8>) {
    let (tx, rx) = std::sync::mpsc::channel();
    dev.write_async(offset, data, Box::new(move |r| tx.send(r).unwrap()));
    rx.recv().unwrap().unwrap();
}

fn main() {
    let keys_per_gen = env_u64("FASTER_BENCH_CKPT_KEYS", 50_000);
    let gens = env_u64("FASTER_BENCH_CKPT_GENS", 4).max(2);

    let log_dev: Arc<dyn Device> = MemDevice::new(2);
    let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
    let cfg = FasterKvConfig::for_keys(keys_per_gen * gens);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, log_dev.clone());
    let mgr = CheckpointManager::new(
        ckpt_dev.clone(),
        CheckpointConfig { retain: gens as usize, auto_prune: true },
    );

    println!("# ckpt_latency: {keys_per_gen} upserts/gen, {gens} generations");

    // Commit latency per generation: workload, then a timed atomic commit.
    for g in 0..gens {
        {
            let session = store.start_session();
            let base = g * keys_per_gen;
            for k in base..base + keys_per_gen {
                session.upsert(&k, &(k + 1)).unwrap();
            }
            session.complete_pending(true);
        }
        let t = Instant::now();
        let gen = mgr.checkpoint_store(&store).expect("fault-free commit");
        let secs = t.elapsed().as_secs_f64();
        let meta = mgr.generations().into_iter().find(|m| m.gen == gen).unwrap();
        println!(
            "commit   gen={gen:<3} {:>9.3} ms  blob={} B  t2={}",
            secs * 1e3,
            meta.blob_len,
            meta.t2
        );
        println!(
            "json,{{\"bench\":\"ckpt_latency\",\"phase\":\"commit\",\"gen\":{gen},\
             \"keys\":{},\"secs\":{secs:.6},\"blob_bytes\":{}}}",
            (g + 1) * keys_per_gen,
            meta.blob_len
        );
    }
    drop(store);
    log_dev.flush_barrier().unwrap();

    // Recovery cost per fallback depth: corrupt one more newest blob before
    // each measurement, so arbitration walks one generation deeper.
    let chain = mgr.generations();
    drop(mgr);
    for depth in 0..gens as usize {
        if depth > 0 {
            // Corrupt the blob that depth d-1 recovered to.
            let victim = chain[chain.len() - depth];
            let mut blob = read_raw(&ckpt_dev, victim.blob_offset, victim.blob_len as usize);
            let at = blob.len() / 2;
            blob[at] ^= 0x5A;
            write_raw(&ckpt_dev, victim.blob_offset, blob);
        }
        let t = Instant::now();
        let (recovered, _mgr, rec) = ckpt_manager::recover_store::<u64, u64, CountStore>(
            cfg,
            CountStore,
            log_dev.clone(),
            ckpt_dev.clone(),
            CheckpointConfig::default(),
        )
        .expect("a generation must survive");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(rec.fallbacks(), depth, "arbitration depth mismatch");
        println!(
            "recover  depth={depth:<2} gen={:<3} {:>9.3} ms ({} candidates)",
            rec.gen,
            secs * 1e3,
            rec.candidates
        );
        println!(
            "json,{{\"bench\":\"ckpt_latency\",\"phase\":\"recover\",\"depth\":{depth},\
             \"gen\":{},\"secs\":{secs:.6}}}",
            rec.gen
        );
        drop(recovered);
    }
    println!("ckpt_latency OK");
}
