//! Criterion microbenchmarks for the core primitives: hashing, epoch
//! operations, index probes and inserts, log allocation, workload
//! generation, and end-to-end single-thread operations.

use criterion::{criterion_group, criterion_main, Criterion};
use faster_bench::SumStore;
use faster_core::{FasterKv, FasterKvConfig, Outcome};
use faster_epoch::Epoch;
use faster_hlog::{HLogConfig, HybridLog};
use faster_index::{CreateOutcome, HashIndex, IndexConfig};
use faster_storage::{MemDevice, NullDevice};
use faster_util::{Address, KeyHash};
use faster_ycsb::ZipfianGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hash(c: &mut Criterion) {
    c.bench_function("hash_u64", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            std::hint::black_box(faster_util::hash_u64(k))
        })
    });
}

fn bench_epoch(c: &mut Criterion) {
    let epoch = Epoch::new(16);
    let guard = epoch.acquire();
    c.bench_function("epoch_refresh", |b| b.iter(|| guard.refresh()));
    c.bench_function("epoch_bump_with_noop", |b| {
        b.iter(|| {
            guard.bump_with(|| {});
            guard.refresh();
        })
    });
}

fn bench_index(c: &mut Criterion) {
    let epoch = Epoch::new(8);
    let index = HashIndex::new(
        IndexConfig { k_bits: 16, tag_bits: 15, max_resize_chunks: 8 },
        epoch,
    );
    // Populate 50k entries.
    for k in 0..50_000u64 {
        if let CreateOutcome::Created(cr) = index.find_or_create_tag(KeyHash::of_u64(k), None) {
            cr.finalize(Address::new(64 + k * 8));
        }
    }
    c.bench_function("index_find_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 50_000;
            std::hint::black_box(index.find_tag(KeyHash::of_u64(k), None))
        })
    });
    c.bench_function("index_find_miss", |b| {
        let mut k = 1_000_000u64;
        b.iter(|| {
            k += 1;
            std::hint::black_box(index.find_tag(KeyHash::of_u64(k), None))
        })
    });
}

fn bench_log_allocate(c: &mut Criterion) {
    let epoch = Epoch::new(8);
    let log = HybridLog::new(
        HLogConfig { page_bits: 20, buffer_pages: 32, mutable_pages: 4, io_threads: 2 },
        epoch.clone(),
        NullDevice::new(),
    );
    let guard = epoch.acquire();
    c.bench_function("hlog_allocate_24B", |b| {
        b.iter(|| std::hint::black_box(log.allocate(24, &guard)))
    });
}

fn bench_zipf(c: &mut Criterion) {
    let z = ZipfianGenerator::new(1 << 20, 0.99);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("zipf_next_rank", |b| {
        b.iter(|| std::hint::black_box(z.next_rank(&mut rng)))
    });
}

fn bench_store_ops(c: &mut Criterion) {
    let store: FasterKv<u64, u64, SumStore> = FasterKv::new(
        FasterKvConfig::for_keys(1 << 16),
        SumStore,
        MemDevice::new(2),
    );
    let session = store.start_session();
    for k in 0..(1u64 << 16) {
        session.upsert(&k, &1).unwrap();
    }
    c.bench_function("faster_read_hot", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) & 0xFFFF;
            match session.read(&k, &0) {
                Ok(Outcome::Value(v)) => std::hint::black_box(v),
                _ => 0,
            }
        })
    });
    c.bench_function("faster_read_batch32_hot", |b| {
        let mut base = 0u64;
        let mut keys = vec![0u64; 32];
        b.iter(|| {
            for (i, k) in keys.iter_mut().enumerate() {
                *k = (base + i as u64 * 97) & 0xFFFF;
            }
            base = base.wrapping_add(1);
            std::hint::black_box(session.read_batch(&keys, &0))
        })
    });
    c.bench_function("faster_rmw_in_place", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) & 0xFFFF;
            session.rmw(&k, &1)
        })
    });
    c.bench_function("faster_upsert_hot", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) & 0xFFFF;
            session.upsert(&k, &7)
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_hash, bench_epoch, bench_index, bench_log_allocate, bench_zipf, bench_store_ops
}
criterion_main!(benches);
