//! Figures 14–16: cache miss ratio of the HybridLog caching behavior (HLOG)
//! vs FIFO, LRU-1, LRU-2 and CLOCK, under uniform, Zipfian and hot-set
//! access patterns (§7.5).
//!
//! Paper result: HLOG ≈ the others under uniform; under Zipf and hot-set it
//! beats FIFO (second chance) but trails LRU/CLOCK (hot-key replication
//! halves the effective cache).

use faster_bench::*;
use faster_cachesim::*;
use faster_ycsb::{Distribution, KeyChooser};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let total_keys: u64 = ((65_536.0 * scale()) as u64).max(4_096);
    let accesses: u64 = total_keys * 30;
    println!("# Figs 14-16: {total_keys} keys, {accesses} accesses per cell");
    let dists = [
        ("fig14-uniform", Distribution::Uniform),
        ("fig15-zipf", Distribution::zipf_default()),
        ("fig16-hotset", Distribution::hot_set_default(total_keys)),
    ];
    for (fig, dist) in dists {
        for frac_inv in [2u64, 4, 8, 16] {
            let cache = (total_keys / frac_inv) as usize;
            let mut policies: Vec<Box<dyn CachePolicy>> = vec![
                Box::new(Fifo::new(cache)),
                Box::new(Lru::new(cache)),
                Box::new(LruK::new(cache, 2)),
                Box::new(Clock::new(cache)),
                Box::new(HLog::new(cache, 0.9)),
            ];
            print!("{fig} cache=1/{frac_inv:<2}");
            for p in policies.iter_mut() {
                let mut chooser = KeyChooser::new(total_keys, dist);
                let mut rng = StdRng::seed_from_u64(42);
                let trace = (0..accesses).map(|_| chooser.next_key(&mut rng));
                let miss = miss_ratio(p.as_mut(), trace);
                print!("  {}={miss:.3}", p.name());
                emit(fig, p.name(), format!("1/{frac_inv}"), format!("{miss:.4}"));
            }
            println!();
        }
    }
}
