//! Self-tuning gate for the background maintenance service (DESIGN.md §11).
//!
//! Starts a store whose index is deliberately undersized for the keyspace
//! (long probe chains, the untuned seed measured ~5.6 steps/probe at 2 M
//! keys over a 2^16-bucket index), enables the real `MaintenanceService`
//! thread, and runs a load + uniform-read workload. No manual `grow_index`
//! call anywhere: the policy alone must observe the windowed probe length
//! and resize the index until the signal drops inside its band.
//!
//! Prints one `json,...` row that `scripts/bench_smoke.sh` collects into
//! `BENCH_maint.json` and gates on: the final measurement window's average
//! probe length must come in at or under `FASTER_BENCH_MAINT_MAX_PROBE`
//! (default 2.0) with at least one policy-driven grow.
//!
//! Knobs: `FASTER_BENCH_MAINT_KEYS` (default 2 M), `FASTER_BENCH_MAINT_K_BITS`
//! (default 16), `FASTER_BENCH_MAINT_SECS` (tuning deadline, default 30).

use faster_bench::{in_memory_log, SumStore};
use faster_core::maintenance::{Policy, PolicyConfig};
use faster_core::{FasterKv, FasterKvConfig, Outcome};
use faster_index::IndexConfig;
use faster_storage::MemDevice;
use faster_util::XorShift64;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Windowed mean probe length between two metric snapshots.
fn window_probe_len(m0: &faster_metrics::StoreMetrics, m1: &faster_metrics::StoreMetrics) -> f64 {
    let probes = m1.index.probes.saturating_sub(m0.index.probes);
    let steps = m1.index.probe_steps.saturating_sub(m0.index.probe_steps);
    if probes == 0 {
        0.0
    } else {
        steps as f64 / probes as f64
    }
}

fn main() {
    let keys = env_u64("FASTER_BENCH_MAINT_KEYS", 2_000_000);
    let k_bits_start = env_u64("FASTER_BENCH_MAINT_K_BITS", 16) as u8;
    let deadline = Duration::from_secs(env_u64("FASTER_BENCH_MAINT_SECS", 30));

    let store: FasterKv<u64, u64, SumStore> = FasterKv::new(
        FasterKvConfig::for_keys(keys)
            .with_log(in_memory_log(keys, 24, 0.9))
            .with_index(IndexConfig { k_bits: k_bits_start, tag_bits: 15, max_resize_chunks: 64 }),
        SumStore,
        MemDevice::new(2),
    );

    // The service under test: default hysteresis bands, fast-but-settled
    // ticks (the post-resize window must be observed before the next grow,
    // or a mid-resize probe inflation cascades to `max_k_bits`), every
    // non-index arm disabled — this gate pins the probe-length feedback
    // loop in isolation. `max_k_bits` 22 is ~2x the keyspace's natural
    // size, so the policy has headroom but a runaway is bounded.
    let service = store.start_maintenance_with(
        None,
        Policy::new(PolicyConfig {
            resize_cooldown_ticks: 2,
            max_k_bits: 22,
            tick_interval: Duration::from_millis(10),
            compact_min_bytes: u64::MAX,
            rc_min_samples: u64::MAX,
            ckpt_growth_bytes: u64::MAX,
            ..PolicyConfig::default()
        }),
    );

    let session = store.start_session();
    let t0 = Instant::now();
    for k in 0..keys {
        session.upsert(&k, &k).unwrap();
    }
    session.complete_pending(true);
    let load_secs = t0.elapsed().as_secs_f64();

    // Baseline window: the untuned probe length right after load (the
    // service may already be resizing underneath — that's the point).
    let mut rng = XorShift64::new(0x5E1F);
    let round = (keys / 4).max(1 << 16);
    let mut m0 = store.metrics();
    for _ in 0..round {
        std::hint::black_box(session.read(&rng.next_below(keys), &0)).unwrap();
    }
    let probe_start = window_probe_len(&m0, &store.metrics());

    // Keep reading until the service has settled the signal inside its
    // band (or the deadline passes — the smoke gate then fails loudly).
    let tune0 = Instant::now();
    let mut probe_final;
    loop {
        m0 = store.metrics();
        for _ in 0..round {
            std::hint::black_box(session.read(&rng.next_below(keys), &0)).unwrap();
        }
        probe_final = window_probe_len(&m0, &store.metrics());
        if probe_final <= 1.5 || tune0.elapsed() > deadline {
            break;
        }
    }
    let tune_secs = tune0.elapsed().as_secs_f64();

    let grows = service.stats().grows.load(std::sync::atomic::Ordering::Relaxed);
    let m = store.metrics();
    let mut hits = 0u64;
    for _ in 0..1024 {
        if let Ok(Outcome::Value(_)) = session.read(&rng.next_below(keys), &0) {
            hits += 1;
        }
    }
    assert_eq!(hits, 1024, "self-tuned store lost keys");
    drop(session);
    drop(service);

    println!(
        "# maint_selftune: {keys} keys, index 2^{k_bits_start} -> 2^{} ({grows} grows), \
         probe len {probe_start:.2} -> {probe_final:.2}",
        m.index.k_bits
    );
    faster_bench::emit("maint", "probe_len_final", m.index.k_bits, format!("{probe_final:.3}"));
    println!(
        "json,{{\"bench\":\"maint_selftune\",\"keys\":{keys},\"k_bits_start\":{k_bits_start},\
         \"k_bits_final\":{},\"grows\":{grows},\"probe_len_start\":{probe_start:.3},\
         \"probe_len_final\":{probe_final:.3},\"load_secs\":{load_secs:.3},\
         \"tune_secs\":{tune_secs:.3}}}",
        m.index.k_bits
    );
}
