//! Group-commit WAL throughput vs. per-operation fsync (DESIGN.md §10).
//!
//! Both modes run against one WAL on a `MemDevice` with the NVMe latency
//! model, so every flush barrier costs a realistic ~20 µs fsync:
//!
//! - `per_op`: sessions serialize append + `wait_durable` under a mutex —
//!   the classic one-fsync-per-commit discipline of a shared log file.
//!   Aggregate throughput is pinned near `1 / fsync_latency` regardless of
//!   session count.
//! - `group`: sessions append concurrently and block on `wait_durable`;
//!   the commit thread batches everything that arrived during the previous
//!   barrier into one flush, so each fsync amortizes across the group.
//!
//! Prints one `json,...` row per configuration; `scripts/bench_smoke.sh`
//! collects them into `BENCH_wal.json` and gates on group commit at 8
//! sessions beating per-op fsync by `FASTER_BENCH_WAL_MIN_RATIO` (default
//! 3×). A second sweep varies the batch window at 8 sessions — the
//! EXPERIMENTS.md recipe for picking a window on real hardware.
//!
//! Knobs: `FASTER_BENCH_WAL_SECS` (seconds per config, default 0.5).

use faster_storage::{Device, LatencyModel, MemDevice};
use faster_wal::{Wal, WalConfig};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const PAYLOAD: [u8; 64] = [0x5A; 64];

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Run `sessions` committer threads for `dur`; returns total acked ops.
fn run(wal: &Arc<Wal>, sessions: usize, dur: Duration, serialize: Option<&Arc<Mutex<()>>>) -> u64 {
    let start_gate = Arc::new(Barrier::new(sessions + 1));
    let mut handles = Vec::new();
    for _ in 0..sessions {
        let wal = wal.clone();
        let gate = start_gate.clone();
        let lock = serialize.cloned();
        handles.push(std::thread::spawn(move || {
            gate.wait();
            let start = Instant::now();
            let mut ops = 0u64;
            while start.elapsed() < dur {
                match &lock {
                    Some(m) => {
                        let _g = m.lock().unwrap();
                        let lsn = wal.append(&PAYLOAD).expect("append");
                        wal.wait_durable(lsn).expect("durable");
                    }
                    None => {
                        let lsn = wal.append(&PAYLOAD).expect("append");
                        wal.wait_durable(lsn).expect("durable");
                    }
                }
                ops += 1;
            }
            ops
        }));
    }
    start_gate.wait();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn bench_config(mode: &str, sessions: usize, window: Duration, dur: Duration) -> f64 {
    // Fresh log per config: a big segment so the run never needs a
    // mid-flight segment roll, on an NVMe-latency device.
    let device: Arc<dyn Device> = MemDevice::with_latency(1, LatencyModel::nvme());
    let wal = Wal::new(device, WalConfig { batch_window: window, segment_size: 1 << 26 });
    let serialize = (mode == "per_op").then(|| Arc::new(Mutex::new(())));

    // Short warmup so the commit thread and device pool are hot.
    run(&wal, sessions, Duration::from_millis(50), serialize.as_ref());
    let start = Instant::now();
    let ops = run(&wal, sessions, dur, serialize.as_ref());
    let secs = start.elapsed().as_secs_f64();
    let kops = ops as f64 / secs / 1e3;
    let lat_us = sessions as f64 * secs * 1e6 / ops as f64;
    let window_us = window.as_micros();
    println!(
        "wal_latency mode={mode:<7} sessions={sessions:<2} window={window_us:>4}us \
         {kops:>9.1} Kops  {lat_us:>7.1} us/commit"
    );
    println!(
        "json,{{\"bench\":\"wal_latency\",\"mode\":\"{mode}\",\"sessions\":{sessions},\
         \"window_us\":{window_us},\"ops\":{ops},\"secs\":{secs:.4},\"kops\":{kops:.2},\
         \"lat_us\":{lat_us:.2}}}"
    );
    kops
}

fn main() {
    let dur = Duration::from_secs_f64(env_f64("FASTER_BENCH_WAL_SECS", 0.5).clamp(0.1, 30.0));
    println!(
        "# wal_latency: 64 B records, NVMe latency model (~20 us fsync), {:.1}s/config",
        dur.as_secs_f64()
    );

    let mut per_op_8 = 0.0;
    let mut group_8 = 0.0;
    for sessions in [1usize, 2, 4, 8] {
        let p = bench_config("per_op", sessions, Duration::ZERO, dur);
        let g = bench_config("group", sessions, Duration::ZERO, dur);
        if sessions == 8 {
            per_op_8 = p;
            group_8 = g;
        }
    }

    // Batch-window sweep at 8 sessions: longer windows trade commit latency
    // for bigger groups (matters once fsync is cheap relative to arrivals).
    for window_us in [50u64, 200, 1000] {
        bench_config("group", 8, Duration::from_micros(window_us), dur);
    }

    if per_op_8 > 0.0 {
        println!("speedup: group/per_op at 8 sessions {:.2}x", group_8 / per_op_8);
    }
}
