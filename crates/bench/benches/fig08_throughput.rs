//! Figure 8 (a–d): single-thread and all-thread throughput of FASTER vs the
//! baseline systems, on YCSB-A variants (0:100 RMW, 0:100, 50:50, 100:0),
//! uniform and Zipfian, dataset fitting in memory.
//!
//! Paper result: FASTER ≈ 4–6 M ops/s single-threaded (above all baselines);
//! ≈ 115 M (uniform) / 165 M (Zipf) on 56 threads; Intel TBB competitive on
//! uniform but contended under Zipf; Masstree and RocksDB far below.

use faster_bench::*;
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, WorkloadConfig};

fn main() {
    let keys = default_keys();
    let dur = run_duration();
    let dists = [("uniform", Distribution::Uniform), ("zipf", Distribution::zipf_default())];
    let threads_settings = [("1thread", 1usize), ("allthreads", max_threads())];
    println!("# Fig 8: throughput, {keys} keys, {:?} per cell", dur);
    if batch_size() > 1 {
        println!(
            "# issue mode: batched (FASTER store-side, baselines generation-only), \
             FASTER_BENCH_BATCH={}",
            batch_size()
        );
    }
    println!("# figure key: 8a=1thread/uniform 8b=1thread/zipf 8c=all/uniform 8d=all/zipf");
    for (tname, threads) in threads_settings {
        for (dname, dist) in dists.iter() {
            let fig = match (tname, *dname) {
                ("1thread", "uniform") => "fig8a",
                ("1thread", "zipf") => "fig8b",
                ("allthreads", "uniform") => "fig8c",
                _ => "fig8d",
            };
            for (mixname, mix) in fig8_mixes() {
                let wl = WorkloadConfig::new(keys, mix, *dist);
                // FASTER (8-byte payloads; RMW via non-mergeable sum).
                let store = build_faster(keys, in_memory_log(keys, 24, 0.9), SumStore, MemDevice::new(2));
                let r = run_faster_counts(&store, &wl, threads, dur, true);
                println!("{fig} {tname} {dname} {mixname:9} FASTER    {:8.2} Mops", r.mops);
                emit(fig, &format!("FASTER/{mixname}"), threads, format!("{:.3}", r.mops));
                drop(store);
                // Intel TBB stand-in.
                let m = run_shard_map(&wl, threads, dur);
                println!("{fig} {tname} {dname} {mixname:9} ShardMap  {m:8.2} Mops");
                emit(fig, &format!("IntelTBB-standin/{mixname}"), threads, format!("{m:.3}"));
                // Masstree stand-in.
                let o = run_ordered(&wl, threads, dur);
                println!("{fig} {tname} {dname} {mixname:9} Ordered   {o:8.2} Mops");
                emit(fig, &format!("Masstree-standin/{mixname}"), threads, format!("{o:.3}"));
                // RocksDB stand-in.
                let l = run_lsm(&wl, threads, dur);
                println!("{fig} {tname} {dname} {mixname:9} MiniLsm   {l:8.2} Mops");
                emit(fig, &format!("RocksDB-standin/{mixname}"), threads, format!("{l:.3}"));
            }
        }
    }
}
