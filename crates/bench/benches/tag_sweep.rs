//! §7.2.2 tag-size experiment: YCSB 50:50 uniform, all threads, varying the
//! index tag width.
//!
//! Paper result: a 1-bit tag costs < 14 % throughput and a 4-bit tag < 5 %
//! versus the full 15-bit tag — FASTER can fund larger address spaces by
//! shrinking the tag.

use faster_bench::*;
use faster_core::{FasterKv, FasterKvConfig};
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, Mix, WorkloadConfig};

fn main() {
    let keys = default_keys();
    let dur = run_duration();
    let threads = max_threads();
    let wl = WorkloadConfig::new(keys, Mix::r_bu(50, 50), Distribution::Uniform);
    println!("# Tag sweep: 50:50 uniform, {threads} threads");
    let mut base = 0.0f64;
    for tag_bits in [15u8, 4, 1, 0] {
        let cfg = FasterKvConfig::for_keys(keys)
            .with_log(in_memory_log(keys, 24, 0.9))
            .with_tag_bits(tag_bits);
        let store: FasterKv<u64, u64, SumStore> =
            FasterKv::new(cfg, SumStore, MemDevice::new(2));
        let r = run_faster_counts(&store, &wl, threads, dur, true);
        if tag_bits == 15 {
            base = r.mops;
        }
        let delta = if base > 0.0 { 100.0 * (1.0 - r.mops / base) } else { 0.0 };
        println!("tag_bits={tag_bits:2} {:8.2} Mops ({delta:+.1}% vs 15-bit)", r.mops);
        emit("tag_sweep", "FASTER", tag_bits, format!("{:.3}", r.mops));
    }
}
