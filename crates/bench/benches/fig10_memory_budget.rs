//! Figure 10 (§7.3): throughput with an increasing memory budget for a
//! dataset larger than memory, plus the sequential log-bandwidth row.
//!
//! Paper: 27 GB dataset, budgets 4..44 GB, 14 threads. FASTER falls off
//! steeply when the budget is below the dataset (random SSD reads) and
//! reaches in-memory performance once everything fits; RocksDB stays around
//! 0.5 M ops/s throughout. With 0:100 blind updates the drop is milder
//! (sequential log writes, no reads). Here the dataset and budgets scale to
//! container size; the *shape* (steep read cliff, mild write cliff,
//! LSM-flat-and-low) is the reproduction target.

use faster_bench::*;
use faster_baselines::{MiniLsm, MiniLsmConfig};
use faster_core::BlindKv;
use faster_hlog::HLogConfig;
use faster_storage::{Device, LatencyModel, MemDevice};
use faster_ycsb::{Distribution, Mix, OpKind, WorkloadConfig, WorkloadGenerator};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn run_lsm_budget(
    wl: &WorkloadConfig,
    threads: usize,
    dur: std::time::Duration,
    budget_bytes: u64,
) -> f64 {
    let device = MemDevice::with_latency(2, LatencyModel::nvme());
    let db = MiniLsm::new(
        MiniLsmConfig {
            memtable_entries: ((budget_bytes / 2 / 17) as usize).max(1024),
            level_fanout: 4,
        },
        device,
    );
    for k in 0..wl.keys {
        db.put(k, 0);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            let wl = wl.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut gen = WorkloadGenerator::new(&wl, t as u64);
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let op = gen.next_op();
                    match op.kind {
                        OpKind::Read => {
                            std::hint::black_box(db.get(op.key));
                        }
                        _ => db.put(op.key, op.input),
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(dur);
    stop.store(true, Ordering::SeqCst);
    let total: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    total as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    // Scaled dataset: ~12 MB of 120-byte records (paper: 27 GB of 100-byte).
    let keys: u64 = ((100_000.0 * scale()) as u64).max(20_000);
    let dataset_mb = keys * 120 / (1 << 20);
    let threads = (max_threads() / 2).max(1) * 2; // paper uses 14 of 28
    let dur = run_duration();
    let page_bits = 18u32; // 256 KB pages
    println!("# Fig 10: {keys} keys (~{dataset_mb} MB dataset), {threads} threads");

    for (mixname, mix) in [("50:50", Mix::r_bu(50, 50)), ("0:100", Mix::r_bu(0, 100))] {
        let wl = WorkloadConfig::new(keys, mix, Distribution::zipf_default());
        for budget_mb in [2u64, 4, 8, 16, 32] {
            let buffer_pages = (budget_mb << 20 >> page_bits).next_power_of_two().max(4);
            let log = HLogConfig { page_bits, buffer_pages, mutable_pages: 0, io_threads: 4 }
                .with_mutable_fraction(0.9);
            let device = MemDevice::with_latency(4, LatencyModel::nvme());
            let store: faster_core::FasterKv<u64, Payload100, BlindKv<Payload100>> =
                build_faster(keys, log, BlindKv::new(), device);
            let r = run_faster_bytes(&store, &wl, threads, dur, true);
            println!(
                "fig10 {mixname} budget={budget_mb:3}MB FASTER {:8.3} Mops (io_pending {})",
                r.mops, r.stats.io_pending
            );
            emit("fig10", &format!("FASTER ({mixname})"), budget_mb, format!("{:.4}", r.mops));
            if budget_mb <= 8 {
                let l = run_lsm_budget(&wl, threads, dur, budget_mb << 20);
                println!("fig10 {mixname} budget={budget_mb:3}MB MiniLsm {l:8.3} Mops");
                emit("fig10", &format!("RocksDB-standin ({mixname})"), budget_mb, format!("{l:.4}"));
            }
        }
    }

    // §7.3 sequential log write bandwidth: 0:100 uniform, 80% read-only
    // region, small budget — every update appends and the log streams out.
    let wl = WorkloadConfig::new(keys, Mix::r_bu(0, 100), Distribution::Uniform);
    let log = HLogConfig { page_bits, buffer_pages: 16, mutable_pages: 3, io_threads: 4 };
    let device = MemDevice::with_latency(4, LatencyModel::nvme());
    let dev_handle: Arc<MemDevice> = device.clone();
    let store: faster_core::FasterKv<u64, Payload100, BlindKv<Payload100>> =
        build_faster(keys, log, BlindKv::new(), device);
    let before = dev_handle.stats().bytes_written;
    let start = Instant::now();
    let r = run_faster_bytes(&store, &wl, threads, dur, true);
    store.log().flush_barrier().unwrap();
    let mbps = (dev_handle.stats().bytes_written - before) as f64
        / start.elapsed().as_secs_f64()
        / (1 << 20) as f64;
    println!("log-bandwidth: {mbps:.0} MB/s sequential write ({:.3} Mops); device model max 2048 MB/s", r.mops);
    emit("log_bandwidth", "FASTER-seq-write", "MBps", format!("{mbps:.0}"));
}
