//! Figure 13: percentage of fuzzy (pending) RMW operations as the thread
//! count grows, IPU factor fixed at 0.8, uniform keys.
//!
//! Paper result: grows with threads (stale thread-local views of the
//! read-only offset become likelier) but stays below 1 % at 56 threads.

use faster_bench::*;
use faster_storage::MemDevice;
use faster_ycsb::{Distribution, Mix, WorkloadConfig};

fn main() {
    let keys = default_keys();
    let dur = run_duration();
    println!("# Fig 13: 100% RMW uniform, IPU 0.8, thread sweep");
    let wl = WorkloadConfig::new(keys, Mix::rmw_only(), Distribution::Uniform);
    for t in thread_sweep() {
        let store = build_faster(keys, in_memory_log(keys, 24, 0.8), SumStore, MemDevice::new(2));
        let r = run_faster_counts(&store, &wl, t, dur, true);
        let fuzzy_pct = if r.stats.rmws > 0 {
            100.0 * r.stats.fuzzy_pending as f64 / r.stats.rmws as f64
        } else {
            0.0
        };
        println!("fig13 threads={t:2} fuzzy {fuzzy_pct:6.4}% ({:.2} Mops)", r.mops);
        emit("fig13", "FuzzyPct", t, format!("{fuzzy_pct:.4}"));
    }
}
