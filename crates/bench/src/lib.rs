//! # faster-bench
//!
//! Shared measurement harness for regenerating every table and figure of
//! the paper's evaluation (§7). Each `benches/figNN_*.rs` target is a
//! standalone binary (`harness = false`) that prints both a human-readable
//! table and machine-readable CSV rows:
//!
//! ```text
//! csv,<figure>,<series>,<x>,<y>
//! ```
//!
//! Scale: benchmarks default to laptop-quick parameters. Set
//! `FASTER_BENCH_SCALE` (float, default 1.0) to scale key counts and run
//! durations toward the paper's setup, and `FASTER_BENCH_THREADS` to cap the
//! thread sweep.

use faster_core::{
    BatchOp, FasterKv, FasterKvConfig, Functions, OpError, Outcome, Session,
};
use faster_hlog::HLogConfig;
use faster_storage::{Device, MemDevice};
use faster_util::Pod;
use faster_ycsb::{Mix, OpKind, WorkloadConfig, WorkloadGenerator, ZipfianGenerator};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Global scale factor from `FASTER_BENCH_SCALE`.
pub fn scale() -> f64 {
    std::env::var("FASTER_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Batch-issue size from `FASTER_BENCH_BATCH`. `0` (or unset) means scalar
/// issue; `N > 1` makes the YCSB runners submit operations through
/// [`Session::execute_batch`] in groups of `N`, with one
/// `complete_pending` per batch.
pub fn batch_size() -> usize {
    std::env::var("FASTER_BENCH_BATCH").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// Default key-space size for in-memory experiments (paper: 250 M).
pub fn default_keys() -> u64 {
    ((250_000.0 * scale()) as u64).max(10_000)
}

/// Measurement duration per cell (paper: 30 s).
pub fn run_duration() -> Duration {
    Duration::from_secs_f64((1.5 * scale()).clamp(0.5, 30.0))
}

/// Thread counts for scalability sweeps.
pub fn thread_sweep() -> Vec<usize> {
    let max: usize = std::env::var("FASTER_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get() * 4).unwrap_or(4));
    let mut v = vec![1usize];
    let mut t = 2;
    while t <= max {
        v.push(t);
        t *= 2;
    }
    v
}

/// All hardware threads (the paper's "all threads" setting, scaled to this
/// machine).
pub fn max_threads() -> usize {
    *thread_sweep().last().expect("nonempty")
}

/// Emits one machine-readable result row.
pub fn emit(figure: &str, series: &str, x: impl std::fmt::Display, y: impl std::fmt::Display) {
    println!("csv,{figure},{series},{x},{y}");
}

/// A finished measurement.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Millions of operations per second.
    pub mops: f64,
    /// Operation counters over the measurement window (store-wide registry
    /// deltas — the per-session stats shim is gone).
    pub stats: OpStats,
    /// Log growth over the measurement, MB/s (HybridLog only).
    pub log_growth_mb_s: f64,
}

/// Aggregated operation counters over one measurement, diffed from
/// [`FasterKv::metrics`] snapshots taken before and after the run.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpStats {
    pub reads: u64,
    pub upserts: u64,
    pub rmws: u64,
    pub deletes: u64,
    /// In-place updates (mutable region hits).
    pub in_place: u64,
    /// Read-copy-updates (records copied to the tail).
    pub copies: u64,
    /// RMWs deferred because the record was in the fuzzy region (§6.3).
    pub fuzzy_pending: u64,
    /// Operations that issued disk I/O.
    pub io_pending: u64,
    /// CRDT delta records created (§6.3).
    pub deltas: u64,
}

/// Counter deltas between two store snapshots.
pub fn op_stats_delta(
    before: &faster_metrics::StoreMetrics,
    after: &faster_metrics::StoreMetrics,
) -> OpStats {
    let (b, a) = (&before.sessions.totals, &after.sessions.totals);
    OpStats {
        reads: a.reads - b.reads,
        upserts: a.upserts - b.upserts,
        rmws: a.rmws - b.rmws,
        deletes: a.deletes - b.deletes,
        in_place: a.in_place - b.in_place,
        copies: a.rcu - b.rcu,
        fuzzy_pending: a.fuzzy_pending - b.fuzzy_pending,
        io_pending: a.io_issued - b.io_issued,
        deltas: a.deltas - b.deltas,
    }
}

/// Builds a FASTER store with the paper's defaults: index at #keys/2
/// entries, HybridLog with the given page layout and IPU fraction.
pub fn build_faster<V: Pod, F: Functions<u64, V>>(
    keys: u64,
    log: HLogConfig,
    functions: F,
    device: Arc<dyn Device>,
) -> FasterKv<u64, V, F> {
    let cfg = FasterKvConfig::for_keys(keys).with_log(log);
    FasterKv::new(cfg, functions, device)
}

/// In-memory log layout sized so `keys` records of `record_size` fit with
/// room to spare (the "dataset fits in memory" experiments).
pub fn in_memory_log(keys: u64, record_size: usize, mutable_fraction: f64) -> HLogConfig {
    let bytes_needed = keys * (record_size as u64) * 3 + (8 << 20);
    let page_bits = 20u32; // 1 MB pages
    let pages = (bytes_needed >> page_bits).next_power_of_two().max(8);
    HLogConfig { page_bits, buffer_pages: pages, mutable_pages: 0, io_threads: 2 }
        .with_mutable_fraction(mutable_fraction)
}

/// One YCSB operation applied to a FASTER session. Returns true if pending.
#[inline]
pub fn apply_faster_op<V: Pod, F: Functions<u64, V>>(
    session: &Session<u64, V, F>,
    kind: OpKind,
    key: u64,
    read_input: &F::Input,
    rmw_input: &F::Input,
    upsert_value: &V,
) -> bool {
    match kind {
        OpKind::Read => matches!(session.read(&key, read_input), Err(OpError::Pending(_))),
        OpKind::Upsert => {
            session.upsert(&key, upsert_value).expect("bench store is writable");
            false
        }
        OpKind::Rmw => matches!(session.rmw(&key, rmw_input), Err(OpError::Pending(_))),
    }
}

/// A whole YCSB batch applied through [`Session::execute_batch`], reusing
/// `scratch` for the translated ops. `rmw_input` / `upsert_value` map each
/// op's 8-entry-array input to the store's types. Returns true if any
/// operation went pending (the caller then drains with `complete_pending`).
#[inline]
pub fn apply_faster_batch<V, F>(
    session: &Session<u64, V, F>,
    ops: &[faster_ycsb::Op],
    scratch: &mut Vec<BatchOp<u64, V, F::Input>>,
    read_input: &F::Input,
    rmw_input: impl Fn(u64) -> F::Input,
    upsert_value: impl Fn(u64) -> V,
) -> bool
where
    V: Pod,
    F: Functions<u64, V>,
{
    scratch.clear();
    scratch.extend(ops.iter().map(|op| match op.kind {
        OpKind::Read => BatchOp::Read { key: op.key, input: read_input.clone() },
        OpKind::Upsert => BatchOp::Upsert { key: op.key, value: upsert_value(op.input) },
        OpKind::Rmw => BatchOp::Rmw { key: op.key, input: rmw_input(op.input) },
    }));
    session.execute_batch(scratch).iter().any(|outcome| matches!(outcome, Err(OpError::Pending(_))))
}

/// Non-mergeable per-key running sum: identical update logic to
/// [`faster_core::CountStore`] but *without* the CRDT declaration, so fuzzy-region RMWs
/// take the pending path of Table 2 — the behavior Figs 12b and 13 measure.
#[derive(Debug, Default, Clone)]
pub struct SumStore;

impl Functions<u64, u64> for SumStore {
    type Input = u64;
    type Output = u64;

    fn single_reader(&self, _k: &u64, _i: &u64, v: &u64) -> u64 {
        *v
    }

    fn concurrent_reader(
        &self,
        _k: &u64,
        _i: &u64,
        v: &faster_core::ValueCell<u64>,
    ) -> u64 {
        v.as_atomic_u64().load(Ordering::Relaxed)
    }

    fn initial_updater(&self, _k: &u64, i: &u64, v: &mut u64) {
        *v = *i;
    }

    fn in_place_updater(&self, _k: &u64, i: &u64, v: &faster_core::ValueCell<u64>) {
        v.as_atomic_u64().fetch_add(*i, Ordering::Relaxed);
    }

    fn copy_updater(&self, _k: &u64, i: &u64, old: &u64, new: &mut u64) {
        *new = old.wrapping_add(*i);
    }
}

/// Runs a YCSB workload against a FASTER store with 8-byte values — the
/// Fig 8/9a/12/13 configuration — for `duration` on `threads` threads.
/// `preload` inserts all keys first (the paper preloads its datasets).
pub fn run_faster_counts<F>(
    store: &FasterKv<u64, u64, F>,
    workload: &WorkloadConfig,
    threads: usize,
    duration: Duration,
    preload: bool,
) -> BenchResult
where
    F: Functions<u64, u64, Input = u64, Output = u64>,
{
    if preload {
        preload_counts(store, workload.keys);
    }
    let shared_zipf = match workload.distribution {
        faster_ycsb::Distribution::Zipfian { theta } => {
            Some(ZipfianGenerator::new(workload.keys, theta))
        }
        _ => None,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let log_bytes_before = store.log().tail_address().raw();
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = store.clone();
        let workload = workload.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        let zipf = shared_zipf.clone();
        handles.push(std::thread::spawn(move || {
            let session = store.start_session();
            let mut gen = match zipf {
                Some(z) => WorkloadGenerator::with_shared_zipf(&workload, t as u64, z),
                None => WorkloadGenerator::new(&workload, t as u64),
            };
            barrier.wait();
            let batch = batch_size();
            let mut ops = 0u64;
            if batch > 1 {
                let mut raw = Vec::with_capacity(batch);
                let mut scratch = Vec::with_capacity(batch);
                while !stop.load(Ordering::Relaxed) {
                    gen.next_batch(batch, &mut raw);
                    let pending = apply_faster_batch(
                        &session,
                        &raw,
                        &mut scratch,
                        &0,
                        |i| i,
                        |i| i,
                    );
                    session.complete_pending(pending);
                    ops += batch as u64;
                }
            } else {
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..256 {
                        let op = gen.next_op();
                        let pending = apply_faster_op(
                            &session,
                            op.kind,
                            op.key,
                            &0,
                            &op.input,
                            &op.input,
                        );
                        if pending {
                            session.complete_pending(true);
                        }
                        ops += 1;
                    }
                    session.complete_pending(false);
                }
            }
            session.complete_pending(true);
            ops
        }));
    }
    let m_before = store.metrics();
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::SeqCst);
    let mut total_ops = 0u64;
    for h in handles {
        total_ops += h.join().expect("bench worker");
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = op_stats_delta(&m_before, &store.metrics());
    let log_growth =
        (store.log().tail_address().raw() - log_bytes_before) as f64 / secs / (1 << 20) as f64;
    BenchResult { mops: total_ops as f64 / secs / 1e6, stats, log_growth_mb_s: log_growth }
}

/// Preloads `keys` sequential keys into an 8-byte-value store.
pub fn preload_counts<F: Functions<u64, u64, Input = u64, Output = u64>>(
    store: &FasterKv<u64, u64, F>,
    keys: u64,
) {
    let session = store.start_session();
    for k in 0..keys {
        session.upsert(&k, &0).expect("preload store is writable");
    }
    session.complete_pending(true);
}

/// The 100-byte-payload value type of Figs 8/9b/10 (§7.1).
pub type Payload100 = [u8; 104]; // 100 rounded to 8-byte alignment

/// Runs a YCSB workload against a FASTER store with 100-byte payloads
/// (blind-update experiments).
pub fn run_faster_bytes(
    store: &FasterKv<u64, Payload100, faster_core::BlindKv<Payload100>>,
    workload: &WorkloadConfig,
    threads: usize,
    duration: Duration,
    preload: bool,
) -> BenchResult {
    if preload {
        let session = store.start_session();
        let v: Payload100 = [7u8; 104];
        for k in 0..workload.keys {
            session.upsert(&k, &v).expect("preload store is writable");
        }
        session.complete_pending(true);
    }
    let shared_zipf = match workload.distribution {
        faster_ycsb::Distribution::Zipfian { theta } => {
            Some(ZipfianGenerator::new(workload.keys, theta))
        }
        _ => None,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let before = store.log().tail_address().raw();
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = store.clone();
        let workload = workload.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        let zipf = shared_zipf.clone();
        handles.push(std::thread::spawn(move || {
            let session = store.start_session();
            let mut gen = match zipf {
                Some(z) => WorkloadGenerator::with_shared_zipf(&workload, t as u64, z),
                None => WorkloadGenerator::new(&workload, t as u64),
            };
            let value: Payload100 = [9u8; 104];
            let zero: Payload100 = [0u8; 104];
            barrier.wait();
            let batch = batch_size();
            let mut ops = 0u64;
            if batch > 1 {
                let mut raw = Vec::with_capacity(batch);
                let mut scratch = Vec::with_capacity(batch);
                while !stop.load(Ordering::Relaxed) {
                    gen.next_batch(batch, &mut raw);
                    let pending = apply_faster_batch(
                        &session,
                        &raw,
                        &mut scratch,
                        &zero,
                        |_| value,
                        |_| value,
                    );
                    session.complete_pending(pending);
                    ops += batch as u64;
                }
            } else {
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..256 {
                        let op = gen.next_op();
                        if apply_faster_op(&session, op.kind, op.key, &zero, &value, &value) {
                            session.complete_pending(true);
                        }
                        ops += 1;
                    }
                    session.complete_pending(false);
                }
            }
            session.complete_pending(true);
            ops
        }));
    }
    let m_before = store.metrics();
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::SeqCst);
    let mut total_ops = 0u64;
    for h in handles {
        total_ops += h.join().expect("bench worker");
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = op_stats_delta(&m_before, &store.metrics());
    let growth = (store.log().tail_address().raw() - before) as f64 / secs / (1 << 20) as f64;
    BenchResult { mops: total_ops as f64 / secs / 1e6, stats, log_growth_mb_s: growth }
}

// ---------------------------------------------------------------- baselines

/// Generic duration-based runner for the in-memory baselines.
///
/// Honors `FASTER_BENCH_BATCH` the same way the FASTER runners do, so the
/// Fig 8 batched comparison is apples-to-apples: in batched mode every
/// runner amortizes workload generation over `batch` keys per issue loop.
/// The baselines get *no* store-side batch processing — they have no
/// software-prefetch pipeline to feed — so any remaining FASTER advantage
/// in batched mode is the store-side pipelining the paper measures, not a
/// harness artifact.
fn run_baseline<S, OpF>(
    state: Arc<S>,
    workload: &WorkloadConfig,
    threads: usize,
    duration: Duration,
    op: OpF,
) -> f64
where
    S: Send + Sync + 'static,
    OpF: Fn(&S, OpKind, u64, u64) + Send + Sync + Clone + 'static,
{
    let shared_zipf = match workload.distribution {
        faster_ycsb::Distribution::Zipfian { theta } => {
            Some(ZipfianGenerator::new(workload.keys, theta))
        }
        _ => None,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let state = state.clone();
        let workload = workload.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        let op = op.clone();
        let zipf = shared_zipf.clone();
        handles.push(std::thread::spawn(move || {
            let mut gen = match zipf {
                Some(z) => WorkloadGenerator::with_shared_zipf(&workload, t as u64, z),
                None => WorkloadGenerator::new(&workload, t as u64),
            };
            barrier.wait();
            let batch = batch_size();
            let mut ops = 0u64;
            if batch > 1 {
                let mut raw = Vec::with_capacity(batch);
                while !stop.load(Ordering::Relaxed) {
                    gen.next_batch(batch, &mut raw);
                    for o in &raw {
                        op(&state, o.kind, o.key, o.input);
                    }
                    ops += batch as u64;
                }
            } else {
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..256 {
                        let o = gen.next_op();
                        op(&state, o.kind, o.key, o.input);
                        ops += 1;
                    }
                }
            }
            ops
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::SeqCst);
    let total: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    total as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// Intel-TBB-stand-in throughput (Mops).
pub fn run_shard_map(workload: &WorkloadConfig, threads: usize, duration: Duration) -> f64 {
    let map: Arc<faster_baselines::ShardMap<u64, u64>> =
        Arc::new(faster_baselines::ShardMap::new(10));
    for k in 0..workload.keys {
        map.upsert(k, 0);
    }
    run_baseline(map, workload, threads, duration, |m, kind, key, input| match kind {
        OpKind::Read => {
            std::hint::black_box(m.get(&key));
        }
        OpKind::Upsert => m.upsert(key, input),
        OpKind::Rmw => m.rmw(key, |v| *v += input, || input),
    })
}

/// Masstree-stand-in throughput (Mops): the lock-coupling B+-tree.
pub fn run_ordered(workload: &WorkloadConfig, threads: usize, duration: Duration) -> f64 {
    let store: Arc<faster_baselines::BTreeIndex<u64>> =
        Arc::new(faster_baselines::BTreeIndex::new());
    for k in 0..workload.keys {
        store.upsert(k, 0);
    }
    run_baseline(store, workload, threads, duration, |s, kind, key, input| match kind {
        OpKind::Read => {
            std::hint::black_box(s.get(key));
        }
        OpKind::Upsert => s.upsert(key, input),
        OpKind::Rmw => s.rmw(key, |v| *v += input, || input),
    })
}

/// RocksDB-stand-in throughput (Mops).
pub fn run_lsm(workload: &WorkloadConfig, threads: usize, duration: Duration) -> f64 {
    let db = faster_baselines::MiniLsm::new(
        faster_baselines::MiniLsmConfig::default(),
        MemDevice::new(2),
    );
    for k in 0..workload.keys {
        db.put(k, 0);
    }
    run_baseline(db, workload, threads, duration, |db, kind, key, input| match kind {
        OpKind::Read => {
            std::hint::black_box(db.get(key));
        }
        OpKind::Upsert => db.put(key, input),
        OpKind::Rmw => db.rmw(key, input, |v| v + input),
    })
}

/// Drains completed reads (helper for figure code that reads back values).
pub fn drain_reads<V: Pod, F: Functions<u64, V>>(
    session: &Session<u64, V, F>,
) -> Vec<(u64, Option<F::Output>)> {
    session
        .complete_pending(true)
        .into_iter()
        .filter_map(|c| match c.result {
            Ok(Outcome::Value(v)) => Some((c.id, Some(v))),
            Err(OpError::NotFound) => Some((c.id, None)),
            _ => None,
        })
        .collect()
}

/// The standard workload mixes of Fig 8 (§7.2.1): 0:100 RMW, 0:100, 50:50,
/// 100:0.
pub fn fig8_mixes() -> Vec<(&'static str, Mix)> {
    vec![
        ("0:100 RMW", Mix::rmw_only()),
        ("0:100", Mix::r_bu(0, 100)),
        ("50:50", Mix::r_bu(50, 50)),
        ("100:0", Mix::r_bu(100, 0)),
    ]
}
